//! Merge-law property suite for every computing primitive (paper property
//! P2, "combinable summaries").
//!
//! These laws are what make the parallel data plane correct: FlowDB's
//! concurrent fan-out and the hierarchy pump merge partial summaries in a
//! fixed order, and the laws below are the algebra that guarantees those
//! partials combine into the same answer the sequential pass produces
//! (`tests/parallel_e2e.rs` then pins the end-to-end equivalence).
//!
//! Per primitive: associativity, commutativity where the primitive claims
//! it, identity on the empty summary, and — crucially — that capacity or
//! shape mismatches are *rejected*, never a panic or silent corruption.

use megastream::hierarchy::summaries_mergeable;
use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
use megastream_flow::addr::Ipv4Addr;
use megastream_flow::key::FeatureSet;
use megastream_flow::key::FlowKey;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::ScoreKind;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use megastream_primitives::aggregator::{Combinable, ComputingPrimitive, Granularity};
use megastream_primitives::cms::CountMinSketch;
use megastream_primitives::exact::ExactFlowTable;
use megastream_primitives::reservoir::Reservoir;
use megastream_primitives::spacesaving::SpaceSaving;
use megastream_primitives::timebin::TimeBinStats;
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------- helpers

fn record(src: u32, dst: u32, packets: u64) -> FlowRecord {
    FlowRecord::builder()
        .proto(6)
        .src(Ipv4Addr::from(src), 80)
        .dst(Ipv4Addr::from(dst), 443)
        .packets(packets.max(1))
        .build()
}

fn cms_from(stream: &[(u64, u64)], seed: u64) -> CountMinSketch {
    let mut cms = CountMinSketch::new(64, 4, seed);
    for (key, weight) in stream {
        cms.offer(key, *weight % 1000);
    }
    cms
}

fn exact_from(stream: &[(u32, u64)]) -> ExactFlowTable {
    let mut t = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
    for (src, packets) in stream {
        t.observe(&record(*src, 0x0808_0808, packets % 1000 + 1));
    }
    t
}

fn spacesaving_from(stream: &[(u64, u64)], capacity: usize) -> SpaceSaving<u64> {
    let mut ss = SpaceSaving::new(capacity);
    for (key, weight) in stream {
        ss.offer(*key, *weight % 1000 + 1);
    }
    ss
}

fn timebin_from(stream: &[(u64, u64)], seed: u64) -> TimeBinStats {
    let mut tb = TimeBinStats::new(TimeDelta::from_secs(1), seed);
    for (ts, value) in stream {
        // Integer-valued samples keep the f64 sums exact, so associativity
        // can be asserted with `==` rather than a tolerance.
        tb.ingest(
            &((value % 100) as f64),
            Timestamp::from_micros(ts % 10_000_000),
        );
    }
    tb
}

fn tree_from(stream: &[(u32, u32)], capacity: usize) -> Flowtree {
    let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(capacity));
    for (src, dst) in stream {
        tree.observe(&record(*src, *dst, 1));
    }
    tree
}

fn window(start: u64) -> TimeWindow {
    TimeWindow::starting_at(Timestamp::from_secs(start), TimeDelta::from_secs(60))
}

// --------------------------------------------------------- count-min sketch

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cms_combine_is_associative(
        a in vec((any::<u64>(), any::<u64>()), 0..40),
        b in vec((any::<u64>(), any::<u64>()), 0..40),
        c in vec((any::<u64>(), any::<u64>()), 0..40),
    ) {
        let (sa, sb, sc) = (cms_from(&a, 7), cms_from(&b, 7), cms_from(&c, 7));
        // (a ∘ b) ∘ c
        let mut left = sa.clone();
        left.combine(&sb);
        left.combine(&sc);
        // a ∘ (b ∘ c)
        let mut bc = sb.clone();
        bc.combine(&sc);
        let mut right = sa.clone();
        right.combine(&bc);
        prop_assert_eq!(left.total(), right.total());
        for (key, _) in a.iter().chain(&b).chain(&c) {
            prop_assert_eq!(left.estimate(key), right.estimate(key));
        }
    }

    #[test]
    fn cms_combine_is_commutative(
        a in vec((any::<u64>(), any::<u64>()), 0..40),
        b in vec((any::<u64>(), any::<u64>()), 0..40),
    ) {
        let (sa, sb) = (cms_from(&a, 9), cms_from(&b, 9));
        let mut ab = sa.clone();
        ab.combine(&sb);
        let mut ba = sb.clone();
        ba.combine(&sa);
        prop_assert_eq!(ab.total(), ba.total());
        for (key, _) in a.iter().chain(&b) {
            prop_assert_eq!(ab.estimate(key), ba.estimate(key));
        }
    }

    #[test]
    fn cms_empty_is_identity(a in vec((any::<u64>(), any::<u64>()), 0..40)) {
        let sa = cms_from(&a, 11);
        let empty = CountMinSketch::new(64, 4, 11);
        let mut left = sa.clone();
        left.combine(&empty);
        prop_assert_eq!(left.total(), sa.total());
        let mut right = empty.clone();
        right.combine(&sa);
        prop_assert_eq!(right.total(), sa.total());
        for (key, _) in &a {
            prop_assert_eq!(left.estimate(key), sa.estimate(key));
            prop_assert_eq!(right.estimate(key), sa.estimate(key));
        }
    }

    #[test]
    fn cms_shape_mismatch_is_rejected_not_a_panic(
        a in vec((any::<u64>(), any::<u64>()), 0..20),
        b in vec((any::<u64>(), any::<u64>()), 0..20),
    ) {
        let mut wide = cms_from(&a, 3);
        let narrow = {
            let mut cms = CountMinSketch::new(32, 4, 3);
            for (key, weight) in &b {
                cms.offer(key, *weight % 1000);
            }
            cms
        };
        let reseeded = cms_from(&b, 4);
        let before = wide.clone();
        prop_assert!(!wide.try_combine(&narrow));
        prop_assert!(!wide.try_combine(&reseeded));
        // A rejected combine must leave the receiver untouched.
        prop_assert_eq!(wide.total(), before.total());
        for (key, _) in &a {
            prop_assert_eq!(wide.estimate(key), before.estimate(key));
        }
        prop_assert!(wide.try_combine(&cms_from(&b, 3)));
    }
}

// ------------------------------------------------------------- exact table

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_combine_is_associative_and_commutative(
        a in vec((any::<u32>(), any::<u64>()), 0..30),
        b in vec((any::<u32>(), any::<u64>()), 0..30),
        c in vec((any::<u32>(), any::<u64>()), 0..30),
    ) {
        let (ta, tb, tc) = (exact_from(&a), exact_from(&b), exact_from(&c));
        let mut left = ta.clone();
        left.combine(&tb);
        left.combine(&tc);
        let mut bc = tb.clone();
        bc.combine(&tc);
        let mut right = ta.clone();
        right.combine(&bc);
        prop_assert_eq!(left.total(), right.total());
        prop_assert_eq!(left.len(), right.len());
        for (key, score) in left.iter() {
            prop_assert_eq!(score, right.query(key));
        }
        let mut ba = tb.clone();
        ba.combine(&ta);
        let mut ab = ta.clone();
        ab.combine(&tb);
        prop_assert_eq!(ab.total(), ba.total());
        for (key, score) in ab.iter() {
            prop_assert_eq!(score, ba.query(key));
        }
    }

    #[test]
    fn exact_empty_is_identity(a in vec((any::<u32>(), any::<u64>()), 0..30)) {
        let ta = exact_from(&a);
        let empty = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        let mut left = ta.clone();
        left.combine(&empty);
        prop_assert_eq!(left.total(), ta.total());
        prop_assert_eq!(left.len(), ta.len());
        let mut right = empty;
        right.combine(&ta);
        prop_assert_eq!(right.total(), ta.total());
        prop_assert_eq!(right.len(), ta.len());
    }
}

// ------------------------------------------------------------ space-saving

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spacesaving_total_is_preserved_in_any_association(
        a in vec((any::<u64>(), any::<u64>()), 0..30),
        b in vec((any::<u64>(), any::<u64>()), 0..30),
        c in vec((any::<u64>(), any::<u64>()), 0..30),
    ) {
        let (sa, sb, sc) = (
            spacesaving_from(&a, 8),
            spacesaving_from(&b, 8),
            spacesaving_from(&c, 8),
        );
        let mut left = sa.clone();
        left.combine(&sb);
        left.combine(&sc);
        let mut bc = sb.clone();
        bc.combine(&sc);
        let mut right = sa.clone();
        right.combine(&bc);
        // Space-Saving is an approximation: under eviction only the *mass*
        // is promised, and it must be identical in every association.
        prop_assert_eq!(left.total(), right.total());
        prop_assert_eq!(left.total(), sa.total() + sb.total() + sc.total());
        prop_assert!(left.len() <= 8 && right.len() <= 8);
    }

    #[test]
    fn spacesaving_is_exact_below_capacity(
        a in vec(0u64..12, 0..20),
        b in vec(0u64..12, 0..20),
    ) {
        // Keys are drawn from a domain smaller than the capacity, so no
        // counter is ever evicted and the merge must be exact: associative,
        // commutative, and equal to counting the concatenated stream.
        let stream = |keys: &[u64]| {
            let mut ss = SpaceSaving::new(16);
            for key in keys {
                ss.offer(*key, 1);
            }
            ss
        };
        let (sa, sb) = (stream(&a), stream(&b));
        let mut ab = sa.clone();
        ab.combine(&sb);
        let mut ba = sb.clone();
        ba.combine(&sa);
        let mut truth = a.clone();
        truth.extend(&b);
        let exact = stream(&truth);
        for key in 0u64..12 {
            let want = exact.estimate(&key).map(|c| c.guaranteed());
            prop_assert_eq!(ab.estimate(&key).map(|c| c.guaranteed()), want);
            prop_assert_eq!(ba.estimate(&key).map(|c| c.guaranteed()), want);
        }
    }

    #[test]
    fn spacesaving_empty_is_identity_and_capacity_takes_max(
        a in vec((any::<u64>(), any::<u64>()), 0..30),
    ) {
        let sa = spacesaving_from(&a, 8);
        let empty: SpaceSaving<u64> = SpaceSaving::new(4);
        let mut merged = sa.clone();
        merged.combine(&empty);
        prop_assert_eq!(merged.total(), sa.total());
        // Capacity mismatches are resolved (max wins), never a panic.
        prop_assert_eq!(merged.capacity(), 8);
        let mut other_way: SpaceSaving<u64> = SpaceSaving::new(4);
        other_way.combine(&sa);
        prop_assert_eq!(other_way.total(), sa.total());
        prop_assert_eq!(other_way.capacity(), 8);
        prop_assert!(other_way.len() <= other_way.capacity());
    }
}

// --------------------------------------------------------------- reservoir

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reservoir_deterministic_fields_obey_the_laws(
        a in vec(any::<u64>(), 0..40),
        b in vec(any::<u64>(), 0..40),
        c in vec(any::<u64>(), 0..40),
    ) {
        // The sample itself is randomized (commutative in distribution
        // only); `seen`, `capacity`, and the size bound are the
        // deterministic contract every association must agree on.
        let fill = |items: &[u64], seed: u64| {
            let mut r = Reservoir::new(16, seed);
            for item in items {
                r.insert(*item);
            }
            r
        };
        let (ra, rb, rc) = (fill(&a, 1), fill(&b, 2), fill(&c, 3));
        let mut left = ra.clone();
        left.combine(&rb);
        left.combine(&rc);
        let mut bc = rb.clone();
        bc.combine(&rc);
        let mut right = ra.clone();
        right.combine(&bc);
        let total = (a.len() + b.len() + c.len()) as u64;
        prop_assert_eq!(left.seen(), total);
        prop_assert_eq!(right.seen(), total);
        prop_assert!(left.len() <= left.capacity());
        prop_assert!(right.len() <= right.capacity());
    }

    #[test]
    fn reservoir_empty_is_exact_identity(a in vec(any::<u64>(), 1..40)) {
        let mut filled = Reservoir::new(16, 5);
        for item in &a {
            filled.insert(*item);
        }
        // x ∘ ∅ is a strict no-op, ∅ ∘ x adopts x's sample verbatim —
        // the empty reservoir is a two-sided identity on the *contents*,
        // not just the counters.
        let empty: Reservoir<u64> = Reservoir::new(16, 6);
        let mut left = filled.clone();
        left.combine(&empty);
        prop_assert_eq!(left.items(), filled.items());
        prop_assert_eq!(left.seen(), filled.seen());
        let mut right: Reservoir<u64> = Reservoir::new(8, 6);
        right.combine(&filled);
        prop_assert_eq!(right.items(), filled.items());
        prop_assert_eq!(right.seen(), filled.seen());
        // Capacity mismatch resolves to the max, never a panic.
        prop_assert_eq!(right.capacity(), 16);
    }
}

// ----------------------------------------------------------- time binning

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn timebin_combine_is_associative_and_commutative(
        a in vec((any::<u64>(), any::<u64>()), 0..30),
        b in vec((any::<u64>(), any::<u64>()), 0..30),
        c in vec((any::<u64>(), any::<u64>()), 0..30),
    ) {
        let w = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(10));
        let (sa, sb, sc) = (
            timebin_from(&a, 1).snapshot(w),
            timebin_from(&b, 2).snapshot(w),
            timebin_from(&c, 3).snapshot(w),
        );
        let mut left = sa.clone();
        left.combine(&sb);
        left.combine(&sc);
        let mut bc = sb.clone();
        bc.combine(&sc);
        let mut right = sa.clone();
        right.combine(&bc);
        prop_assert_eq!(left.len(), right.len());
        for ((ts_l, bin_l), (ts_r, bin_r)) in left.iter().zip(right.iter()) {
            prop_assert_eq!(ts_l, ts_r);
            prop_assert_eq!(bin_l.count(), bin_r.count());
            prop_assert_eq!(bin_l.sum(), bin_r.sum());
            prop_assert_eq!(bin_l.min(), bin_r.min());
            prop_assert_eq!(bin_l.max(), bin_r.max());
        }
        let mut ab = sa.clone();
        ab.combine(&sb);
        let mut ba = sb.clone();
        ba.combine(&sa);
        prop_assert_eq!(ab.len(), ba.len());
        for ((_, bin_l), (_, bin_r)) in ab.iter().zip(ba.iter()) {
            prop_assert_eq!(bin_l.count(), bin_r.count());
            prop_assert_eq!(bin_l.sum(), bin_r.sum());
        }
    }

    #[test]
    fn timebin_width_mismatch_rebins_never_panics(
        a in vec((any::<u64>(), any::<u64>()), 1..30),
        b in vec((any::<u64>(), any::<u64>()), 1..30),
    ) {
        // A 1 s series combined with a 2 s series re-bins the finer one;
        // the total count survives regardless of direction.
        let w = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(10));
        let fine = timebin_from(&a, 1).snapshot(w);
        let coarse = {
            let mut tb = TimeBinStats::new(TimeDelta::from_secs(2), 2);
            for (ts, value) in &b {
                tb.ingest(&((value % 100) as f64), Timestamp::from_micros(ts % 10_000_000));
            }
            tb.snapshot(w)
        };
        let count = |s: &megastream_primitives::timebin::BinnedSeries| {
            s.iter().map(|(_, bin)| bin.count()).sum::<u64>()
        };
        let total = count(&fine) + count(&coarse);
        let mut one = fine.clone();
        one.combine(&coarse);
        prop_assert_eq!(one.width(), TimeDelta::from_secs(2));
        prop_assert_eq!(count(&one), total);
        let mut other = coarse.clone();
        other.combine(&fine);
        prop_assert_eq!(other.width(), TimeDelta::from_secs(2));
        prop_assert_eq!(count(&other), total);
    }

    #[test]
    fn timebin_empty_window_is_identity(a in vec((any::<u64>(), any::<u64>()), 1..30)) {
        let w = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(10));
        let sa = timebin_from(&a, 1).snapshot(w);
        let empty = TimeBinStats::new(TimeDelta::from_secs(1), 9)
            .snapshot(TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::ZERO));
        let mut merged = sa.clone();
        merged.combine(&empty);
        // The empty window must not distort the hull.
        prop_assert_eq!(merged.window, sa.window);
        prop_assert_eq!(merged.len(), sa.len());
    }
}

// ---------------------------------------------------------------- flowtree

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flowtree_merge_is_associative_and_commutative_below_capacity(
        a in vec((0u32..64, 0u32..64), 0..20),
        b in vec((0u32..64, 0u32..64), 0..20),
        c in vec((0u32..64, 0u32..64), 0..20),
    ) {
        // The P2 contract of Merge is observational: "scores of keys
        // present in both trees add". The trie *structure* is allowed to
        // differ with merge order (zero-score intermediate nodes are not
        // rematerialized), so the laws are stated over the query surface —
        // which is also all the parallel fan-out's answers depend on.
        // Under compression even the scores are only mass-preserving,
        // which is why the fan-out fixes one merge association instead of
        // relying on associativity; see `DESIGN.md` §10.
        let (ta, tb, tc) = (
            tree_from(&a, 1 << 14),
            tree_from(&b, 1 << 14),
            tree_from(&c, 1 << 14),
        );
        let keys: Vec<FlowKey> = a
            .iter()
            .chain(&b)
            .chain(&c)
            .map(|(src, dst)| FlowKey::from_record(&record(*src, *dst, 1)))
            .collect();
        let mut left = ta.clone();
        left.merge(&tb);
        left.merge(&tc);
        let mut bc = tb.clone();
        bc.combine(&tc);
        let mut right = ta.clone();
        right.combine(&bc);
        prop_assert_eq!(left.total(), right.total());
        prop_assert_eq!(left.records(), right.records());
        for key in &keys {
            prop_assert_eq!(left.query(key), right.query(key));
        }
        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        prop_assert_eq!(ab.total(), ba.total());
        prop_assert_eq!(ab.records(), ba.records());
        for key in &keys {
            prop_assert_eq!(ab.query(key), ba.query(key));
        }
    }

    #[test]
    fn flowtree_grouped_fold_equals_flat_fold(
        a in vec((0u32..64, 0u32..64), 1..20),
        b in vec((0u32..64, 0u32..64), 1..20),
        c in vec((0u32..64, 0u32..64), 1..20),
        d in vec((0u32..64, 0u32..64), 1..20),
    ) {
        // The exact shape the parallel fan-out relies on: pre-merging
        // per-location partials and folding them in a fixed order answers
        // every query like the flat left fold over the same sequence.
        let trees = [
            tree_from(&a, 1 << 14),
            tree_from(&b, 1 << 14),
            tree_from(&c, 1 << 14),
            tree_from(&d, 1 << 14),
        ];
        let mut flat = trees[0].clone();
        for tree in &trees[1..] {
            flat.merge(tree);
        }
        let mut partial_one = trees[0].clone();
        partial_one.merge(&trees[1]);
        let mut partial_two = trees[2].clone();
        partial_two.merge(&trees[3]);
        let mut grouped = partial_one;
        grouped.merge(&partial_two);
        prop_assert_eq!(flat.total(), grouped.total());
        prop_assert_eq!(flat.records(), grouped.records());
        for (src, dst) in a.iter().chain(&b).chain(&c).chain(&d) {
            let key = FlowKey::from_record(&record(*src, *dst, 1));
            prop_assert_eq!(flat.query(&key), grouped.query(&key));
        }
    }

    #[test]
    fn flowtree_empty_is_identity(a in vec((0u32..64, 0u32..64), 0..20)) {
        let ta = tree_from(&a, 1 << 14);
        let empty = Flowtree::new(FlowtreeConfig::default().with_capacity(1 << 14));
        let mut left = ta.clone();
        left.merge(&empty);
        prop_assert_eq!(&left, &ta);
        let mut right = empty;
        right.merge(&ta);
        prop_assert_eq!(right.total(), ta.total());
        prop_assert_eq!(right.records(), ta.records());
        for (src, dst) in &a {
            let key = FlowKey::from_record(&record(*src, *dst, 1));
            prop_assert_eq!(right.query(&key), ta.query(&key));
        }
    }

    #[test]
    fn flowtree_merge_with_own_snapshot_allocates_no_nodes(
        a in vec((0u32..64, 0u32..64), 1..40),
    ) {
        // Dedup idempotence at the arena level: merging a tree with its
        // own snapshot doubles every score but introduces no new keys, so
        // the node count AND the arena slot count must stay put — the
        // merge walks existing nodes instead of allocating. (The clone
        // itself is an O(1) copy-on-write share; the merge's first write
        // splits storage but must split it at the same size.)
        let mut tree = tree_from(&a, 1 << 14);
        let snap = tree.clone();
        prop_assert!(snap.shares_storage_with(&tree));
        let (len, slots, total) = (tree.len(), tree.arena_slots(), tree.total());
        tree.merge(&snap);
        prop_assert_eq!(tree.len(), len);
        prop_assert_eq!(tree.arena_slots(), slots);
        prop_assert_eq!(tree.total(), total + total);
        tree.check_invariants();
        snap.check_invariants();
    }

    #[test]
    fn flowtree_snapshot_is_isolated_from_later_mutation(
        a in vec((0u32..64, 0u32..64), 1..40),
        b in vec((0u32..64, 0u32..64), 1..40),
    ) {
        // Copy-on-write isolation, both directions: a snapshot pins the
        // observable state at clone time no matter what happens to the
        // live tree afterwards, and mutating the snapshot never leaks
        // back into the live tree.
        let mut tree = tree_from(&a, 96);
        let snap = tree.clone();
        let frozen_nodes = snap.nodes();
        let (frozen_total, frozen_records) = (snap.total(), snap.records());
        for (src, dst) in &b {
            tree.observe(&record(*src, *dst, 1));
        }
        tree.merge(&tree_from(&b, 96));
        tree.compress_to(4);
        prop_assert_eq!(snap.nodes(), frozen_nodes.clone());
        prop_assert_eq!(snap.total(), frozen_total);
        prop_assert_eq!(snap.records(), frozen_records);
        snap.check_invariants();
        // Reverse direction: mutate a second snapshot, the first and the
        // (already-diverged) live tree are unaffected.
        let mut scratch = snap.clone();
        let live_nodes = tree.nodes();
        scratch.clear();
        prop_assert_eq!(snap.nodes(), frozen_nodes);
        prop_assert_eq!(tree.nodes(), live_nodes);
    }

    #[test]
    fn flowtree_free_list_reuse_never_resurrects_stale_state(
        a in vec((0u32..48, 0u32..48), 8..40),
        b in vec((48u32..96, 48u32..96, 1u64..50), 8..40),
    ) {
        // Compression frees slots onto the arena's free list; the inserts
        // that follow recycle them. A recycled slot must behave as brand
        // new: exactly the inserted mass, no trace of the previous
        // occupant's key, score, or child links. Disjoint address pools
        // make "trace of the old occupant" directly observable.
        let mut tree = tree_from(&a, 1 << 14);
        tree.compress_to(1);
        prop_assert!(tree.arena_free() > 0, "compression must have freed slots");
        let total_after_fold = tree.total();
        for (src, dst, packets) in &b {
            tree.add_mass(
                &FlowKey::from_record(&record(*src, *dst, *packets)),
                megastream_flow::score::Popularity::from(*packets),
            );
        }
        tree.check_invariants();
        for (src, dst, packets) in &b {
            let key = FlowKey::from_record(&record(*src, *dst, *packets));
            // Recycled slots carry exactly the new mass (keys in `b` are
            // observed once per entry; duplicates within `b` accumulate).
            let expect: u64 = b
                .iter()
                .filter(|(s, d, p)| {
                    FlowKey::from_record(&record(*s, *d, *p)) == key
                })
                .map(|(_, _, p)| *p)
                .sum();
            prop_assert_eq!(
                tree.get(&key).map(|n| n.own_score),
                Some(megastream_flow::score::Popularity::from(expect))
            );
        }
        // Mass from the folded-away `a` pool survives only at the root
        // fold target — never inside a recycled slot.
        prop_assert_eq!(
            tree.total(),
            total_after_fold
                + megastream_flow::score::Popularity::from(
                    b.iter().map(|(_, _, p)| *p).sum::<u64>()
                )
        );
    }
}

// ------------------------------------------------- granularity (adaptive)

#[test]
fn granularity_dial_composition_laws() {
    let g = Granularity::new(0.5);
    // Coarsening composes multiplicatively…
    assert_eq!(
        g.coarsened(2.0).coarsened(4.0).value(),
        g.coarsened(8.0).value()
    );
    // …refinement undoes coarsening while inside the clamp range…
    assert_eq!(g.coarsened(4.0).refined(4.0).value(), g.value());
    // …and both saturate instead of leaving (0, 1].
    assert_eq!(Granularity::FULL.refined(1e9).value(), 1.0);
    assert!(Granularity::new(1e-300).coarsened(1e300).value() > 0.0);
    // Factors below 1 are treated as 1 (never refine-by-coarsening).
    assert_eq!(g.coarsened(0.25).value(), g.value());
    assert_eq!(g.refined(0.25).value(), g.value());
}

#[test]
fn granularity_controller_is_deterministic() {
    use megastream_primitives::adaptive::GranularityController;
    let run = || {
        let mut ctl = GranularityController::new(Granularity::FULL);
        let mut dials = Vec::new();
        for step in 0..20usize {
            let g = ctl.update(8192 + step * 100, 4096, None);
            dials.push(g.value());
        }
        dials
    };
    // Same feedback sequence → same dial trajectory, which is what lets
    // the parallel pump adapt identically to the sequential one.
    assert_eq!(run(), run());
}

// --------------------------------------------------------- cross-primitive

#[test]
fn mixed_summary_kinds_are_rejected_without_panic() {
    let tree = Summary::Flowtree(tree_from(&[(1, 2)], 1 << 12));
    let bins = Summary::Bins(timebin_from(&[(0, 1)], 1).snapshot(TimeWindow::starting_at(
        Timestamp::ZERO,
        TimeDelta::from_secs(10),
    )));
    let exact = Summary::Exact(exact_from(&[(1, 1)]));
    let top = Summary::TopFlows({
        let mut ss: SpaceSaving<FlowKey> = SpaceSaving::new(8);
        ss.offer(FlowKey::from_record(&record(1, 2, 1)), 1);
        ss
    });
    let kinds = [tree, bins, exact, top];
    for (i, a) in kinds.iter().enumerate() {
        for (j, b) in kinds.iter().enumerate() {
            let sa = StoredSummary::new("a", window(0), a.clone(), Lineage::from_source("a"));
            let sb = StoredSummary::new("b", window(60), b.clone(), Lineage::from_source("b"));
            assert_eq!(
                summaries_mergeable(&sa, &sb),
                i == j,
                "kinds {} / {} mergeability",
                a.kind(),
                b.kind()
            );
        }
    }
}

#[test]
fn incompatible_flowtree_configs_are_rejected_without_panic() {
    // Same kind, different schema: the hierarchy must refuse the merge
    // rather than corrupt or panic — this is the check the parallel pump
    // runs before every spill-buffer coalesce.
    let default_tree = tree_from(&[(1, 2)], 1 << 12);
    let dst_tree = {
        let config = FlowtreeConfig::default()
            .with_capacity(1 << 12)
            .with_schema(megastream_flow::mask::GeneralizationSchema::dst_preserving());
        let mut tree = Flowtree::new(config);
        tree.observe(&record(3, 4, 1));
        tree
    };
    let sa = StoredSummary::new(
        "a",
        window(0),
        Summary::Flowtree(default_tree.clone()),
        Lineage::from_source("a"),
    );
    let sb = StoredSummary::new(
        "b",
        window(60),
        Summary::Flowtree(dst_tree),
        Lineage::from_source("b"),
    );
    assert!(!summaries_mergeable(&sa, &sb));
    let sc = StoredSummary::new(
        "c",
        window(120),
        Summary::Flowtree(default_tree),
        Lineage::from_source("c"),
    );
    assert!(summaries_mergeable(&sa, &sc));
}
