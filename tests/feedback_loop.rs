//! E4 — Fig. 2a: the feedback loop through all four building blocks, and
//! the timeliness budgets of Fig. 1a (machine < 1 s, line < 1 min).

use megastream::application::{AppDirective, Application, PredictiveMaintenanceApp};
use megastream::controller::{ControlAction, Controller, SafetyEnvelope};
use megastream_datastore::trigger::TriggerCondition;
use megastream_datastore::{AggregatorSpec, DataStore, StorageStrategy};
use megastream_flow::time::{TimeDelta, Timestamp};

/// The fast loop: sensor → data store (trigger) → controller → actuation.
/// Everything happens within the same simulated instant — well inside the
/// machine-level "< 1 s" budget.
#[test]
fn fast_loop_actuates_within_machine_budget() {
    let mut store = DataStore::new(
        "machine-0",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(10),
    );
    let trigger = store.install_trigger(
        "safety",
        TriggerCondition::ScalarAbove {
            stream: "machine-0/temperature".into(),
            threshold: 85.0,
        },
        TimeDelta::ZERO,
    );
    let mut controller = Controller::new("machine-0", SafetyEnvelope::default());
    controller
        .install_rule(
            "safety",
            trigger,
            ControlAction::SlowDown { factor: 0.5 },
            9,
        )
        .unwrap();

    let sensed_at = Timestamp::from_micros(123_456);
    let events = store.ingest_scalar(&"machine-0/temperature".into(), 92.0, sensed_at);
    assert_eq!(events.len(), 1);
    let actuation = controller.on_trigger(&events[0]).expect("no actuation");
    // Decision latency: zero simulated time (same instant as the reading).
    let latency = actuation.at.saturating_since(sensed_at);
    assert!(latency < TimeDelta::from_secs(1), "latency {latency}");
    assert_eq!(actuation.action, ControlAction::SlowDown { factor: 0.5 });
}

/// The adaptive loop: data store → summary → application → new trigger →
/// controller rule. One epoch of delay — inside the line-level "< 1 min"
/// budget when epochs are ≤ 1 min.
#[test]
fn adaptive_loop_updates_the_fast_path() {
    let mut store = DataStore::new(
        "machine-3",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(30),
    );
    let agg = store.install_aggregator(AggregatorSpec::TimeBins {
        width: TimeDelta::from_secs(30),
        seed: 3,
    });
    store.subscribe(agg, "machine-3/temperature".into());

    // Rising temperature stream: 60 °C + 0.05 °/s.
    let mut now = Timestamp::ZERO;
    let mut app = PredictiveMaintenanceApp::new(TimeDelta::from_hours(4));
    app.set_min_points(10);
    let mut installed_trigger = None;
    for epoch in 0..20u64 {
        for s in 0..30u64 {
            let t = epoch * 30 + s;
            now = Timestamp::from_secs(t);
            store.ingest_scalar(&"machine-3/temperature".into(), 60.0 + 0.05 * t as f64, now);
        }
        let exported = store.rotate_epoch(Timestamp::from_secs((epoch + 1) * 30));
        for summary in exported {
            for directive in app.on_summary(&summary, now) {
                if let AppDirective::RequestTrigger {
                    condition,
                    cooldown,
                } = directive
                {
                    // The application reconfigures the fast path.
                    installed_trigger =
                        Some(store.install_trigger(app.name(), condition, cooldown));
                }
            }
        }
        if installed_trigger.is_some() {
            break;
        }
    }
    let trigger = installed_trigger.expect("application never installed its guard trigger");

    // The newly installed trigger now protects the machine in real time.
    let mut controller = Controller::new("machine-3", SafetyEnvelope::default());
    controller
        .install_rule("predictive-maintenance", trigger, ControlAction::Stop, 10)
        .unwrap();
    let events = store.ingest_scalar(&"machine-3/temperature".into(), 90.0, now);
    assert_eq!(events.len(), 1, "guard trigger must fire at 90 °C");
    let actuation = controller.on_trigger(&events[0]).unwrap();
    assert_eq!(actuation.action, ControlAction::Stop);
}

/// Conflict resolution sits inside the loop: two applications install
/// rules on the same trigger; the controller resolves deterministically.
#[test]
fn loop_with_conflicting_applications() {
    let mut store = DataStore::new(
        "m",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(10),
    );
    let trigger = store.install_trigger(
        "apps",
        TriggerCondition::ScalarAbove {
            stream: "m/vibration".into(),
            threshold: 4.0,
        },
        TimeDelta::ZERO,
    );
    let mut controller = Controller::new("m", SafetyEnvelope::default());
    controller
        .install_rule(
            "optimizer",
            trigger,
            ControlAction::Alert {
                message: "check".into(),
            },
            1,
        )
        .unwrap();
    controller
        .install_rule(
            "maintenance",
            trigger,
            ControlAction::SlowDown { factor: 0.6 },
            5,
        )
        .unwrap();
    // A same-priority contradictory rule is rejected at install time.
    assert!(controller
        .install_rule("rogue", trigger, ControlAction::Stop, 5)
        .is_err());

    let events = store.ingest_scalar(&"m/vibration".into(), 5.5, Timestamp::ZERO);
    let actuation = controller.on_trigger(&events[0]).unwrap();
    // The higher-priority application wins.
    assert_eq!(actuation.app, "maintenance");
    assert_eq!(actuation.action, ControlAction::SlowDown { factor: 0.6 });
}
