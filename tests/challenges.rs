//! E1 — Table I: the nine challenges of distributed mega-datasets.
//!
//! The paper's Table I lists nine challenges with one instance per use
//! case. Each test here is a small scenario that exercises the mechanism
//! the architecture answers that challenge with — so the table is covered
//! by running code, not prose.

use megastream::application::{Application, DdosDetectionApp, PredictiveMaintenanceApp};
use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream::hierarchy::StoreHierarchy;
use megastream_datastore::summary::Summary;
use megastream_datastore::trigger::TriggerCondition;
use megastream_datastore::{AggregatorSpec, DataStore, StorageStrategy};
use megastream_flow::key::FlowKey;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::Popularity;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use megastream_netsim::topology::{LinkSpec, Network, NodeKind};
use megastream_workloads::factory::{CameraKind, FactoryWorkload};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

fn rec(src: &str, dst: &str, packets: u64) -> FlowRecord {
    FlowRecord::builder()
        .proto(6)
        .src(src.parse().unwrap(), 40_000)
        .dst(dst.parse().unwrap(), 443)
        .packets(packets)
        .build()
}

/// Challenge 1 — increasing computation requirements (camera feeds,
/// high-speed inspection): the paper's own camera rates exceed a 100 Mbit/s
/// WAN uplink by an order of magnitude, so raw forwarding is infeasible and
/// local aggregation is mandatory.
#[test]
fn c1_raw_camera_feed_overwhelms_wan() {
    let wan = LinkSpec::wan_100m();
    let one_sec = TimeDelta::from_secs(1);
    let camera_bytes = FactoryWorkload::camera_bytes(CameraKind::ThreeD, one_sec);
    // Time to push one second of camera output over the WAN.
    let needed = wan.transmit_time(camera_bytes);
    assert!(
        needed.as_secs_f64() > 1.0,
        "a 3D camera must outpace the WAN: {needed} to ship 1 s of data"
    );
    // A Flowtree/summary export of bounded size does fit.
    let summary_bytes = 64 * 1024;
    assert!(wan.transmit_time(summary_bytes).as_secs_f64() < 0.1);
}

/// Challenge 2 — large number of devices producing data streams: one store
/// ingests many distinct streams and keeps per-stream lineage.
#[test]
fn c2_many_streams_one_store() {
    let mut store = DataStore::new(
        "line-0",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(60),
    );
    store.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
    for i in 0..64 {
        store.ingest_flow(
            &format!("sensor-{i}").as_str().into(),
            &rec(&format!("10.0.{i}.1"), "1.1.1.1", 1),
            Timestamp::ZERO,
        );
    }
    let exported = store.rotate_epoch(Timestamp::from_secs(60));
    assert_eq!(exported[0].lineage.sources.len(), 64);
}

/// Challenge 3 — massive combined data rates: aggregation reduces the
/// bytes leaving a store by orders of magnitude vs raw forwarding.
#[test]
fn c3_aggregation_reduces_rate() {
    let mut store = DataStore::new(
        "router-store",
        StorageStrategy::RoundRobin {
            budget_bytes: 8 << 20,
        },
        TimeDelta::from_secs(60),
    );
    store.install_aggregator(AggregatorSpec::Flowtree(
        FlowtreeConfig::default().with_capacity(1024),
    ));
    for r in FlowTraceGenerator::new(FlowTraceConfig {
        flows_per_sec: 1_000.0,
        duration: TimeDelta::from_secs(60),
        ..Default::default()
    }) {
        store.ingest_flow(&"r0".into(), &r, r.ts);
    }
    store.rotate_epoch(Timestamp::from_secs(60));
    let stats = store.stats();
    assert!(
        stats.exported_bytes * 10 < stats.raw_bytes,
        "exported {} vs raw {}",
        stats.exported_bytes,
        stats.raw_bytes
    );
}

/// Challenge 4 — rapid local decision making: a trigger firing reaches the
/// data path synchronously, without any round trip to analytics.
#[test]
fn c4_local_decision_is_synchronous() {
    let mut store = DataStore::new(
        "machine-0",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(10),
    );
    store.install_trigger(
        "safety",
        TriggerCondition::ScalarAbove {
            stream: "machine-0/temperature".into(),
            threshold: 85.0,
        },
        TimeDelta::ZERO,
    );
    // The firing is returned by the very ingest call that crossed the
    // threshold — decision latency is zero simulated time.
    let events = store.ingest_scalar(&"machine-0/temperature".into(), 91.0, Timestamp::ZERO);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].at, Timestamp::ZERO);
}

/// Challenge 5 — high data variability: one store hosts scalar and flow
/// aggregators side by side and routes each input type to the right ones.
#[test]
fn c5_heterogeneous_streams_one_store() {
    let mut store = DataStore::new(
        "edge",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(60),
    );
    store.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
    store.install_aggregator(AggregatorSpec::TimeBins {
        width: TimeDelta::from_secs(1),
        seed: 1,
    });
    store.ingest_flow(
        &"flows".into(),
        &rec("10.0.0.1", "1.1.1.1", 9),
        Timestamp::ZERO,
    );
    store.ingest_scalar(&"temp".into(), 61.5, Timestamp::ZERO);
    let exported = store.rotate_epoch(Timestamp::from_secs(60));
    let kinds: Vec<&str> = exported.iter().map(|s| s.summary.kind()).collect();
    assert!(kinds.contains(&"flowtree"));
    assert!(kinds.contains(&"bins"));
    match exported
        .iter()
        .find(|s| s.summary.kind() == "bins")
        .map(|s| &s.summary)
    {
        Some(Summary::Bins(b)) => assert_eq!(b.aggregate(s_window()).count(), 1),
        _ => panic!("bins summary missing"),
    }
}

fn s_window() -> TimeWindow {
    TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(60))
}

/// Challenge 6 — analytics require full knowledge: merged summaries answer
/// global queries (predictive maintenance / traffic engineering need data
/// from *all* sites).
#[test]
fn c6_global_analytics_from_merged_summaries() {
    // Two sites each see half the picture; only the merge reveals that the
    // /16 is globally heavy.
    let mut site_a = Flowtree::new(FlowtreeConfig::default());
    let mut site_b = Flowtree::new(FlowtreeConfig::default());
    for i in 0..50 {
        site_a.observe(&rec(&format!("10.7.0.{i}"), "1.1.1.1", 10));
        site_b.observe(&rec(&format!("10.7.1.{i}"), "2.2.2.2", 10));
    }
    let q = FlowKey::root().with_src_prefix("10.7.0.0/16".parse().unwrap());
    let local_max = site_a.query(&q).max(site_b.query(&q));
    let mut merged = site_a.clone();
    merged.merge(&site_b);
    assert_eq!(merged.query(&q).value(), 1000);
    assert_eq!(local_max.value(), 500, "each site alone sees only half");
}

/// Challenge 7 — hierarchical structure: summaries flow machine → line →
/// factory with byte accounting at every level.
#[test]
fn c7_hierarchy_pushes_summaries_up() {
    let mut net = Network::new();
    let top = net.add_node("factory", NodeKind::DataStore);
    let mid = net.add_node("line", NodeKind::DataStore);
    let leaf = net.add_node("machine", NodeKind::Sensor);
    net.connect(leaf, mid, LinkSpec::lan_1g());
    net.connect(mid, top, LinkSpec::lan_10g());
    let mut h = StoreHierarchy::new(net);
    let mk = |name: &str, epoch: u64| {
        let mut s = DataStore::new(
            name,
            StorageStrategy::RoundRobin {
                budget_bytes: 1 << 20,
            },
            TimeDelta::from_secs(epoch),
        );
        s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        s
    };
    let root = h.add_root(mk("factory", 120), top);
    let line = h.add_child(mk("line", 60), mid, root);
    let machine = h.add_child(mk("machine", 30), leaf, line);
    h.ingest_flow(
        machine,
        &"s".into(),
        &rec("10.0.0.1", "1.1.1.1", 7),
        Timestamp::from_secs(1),
    );
    h.pump(Timestamp::from_secs(30)).unwrap();
    h.pump(Timestamp::from_secs(60)).unwrap();
    h.pump(Timestamp::from_secs(120)).unwrap();
    // The mass reached the factory level.
    let factory_total: u64 = h
        .store(root)
        .summaries()
        .iter()
        .filter_map(|s| match &s.summary {
            Summary::Flowtree(t) => Some(t.total().value()),
            _ => None,
        })
        .sum();
    assert_eq!(factory_total, 7);
    // Both links carried summary bytes.
    assert!(h.network().total_bytes() > 0);
}

/// Challenge 8 — varying requirements across applications: two
/// applications consume the *same* summaries for different purposes
/// (attack mitigation vs planning) without extra data collection.
#[test]
fn c8_one_summary_many_applications() {
    use megastream::application::TrafficMatrixApp;
    use megastream_datastore::summary::{Lineage, StoredSummary};

    let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(8192));
    for i in 0..200u32 {
        tree.observe(&rec(
            &format!("{}.{}.{}.{}", 1 + i % 199, i % 251, i % 241, i % 253),
            "100.64.0.1",
            5,
        ));
    }
    let summary = StoredSummary::new(
        "region-0/agg0",
        s_window(),
        Summary::Flowtree(tree),
        Lineage::from_source("router-0"),
    );
    let mut ddos = DdosDetectionApp::new(Popularity::new(500));
    let mut matrix = TrafficMatrixApp::new(8);
    let d1 = ddos.on_summary(&summary, Timestamp::ZERO);
    let d2 = matrix.on_summary(&summary, Timestamp::ZERO);
    assert!(!d1.is_empty(), "mitigation app found nothing");
    assert!(!d2.is_empty(), "planning app found nothing");
    assert!(matrix.total() > 0);
}

/// Challenge 9 — a-priori unknown queries: the store is configured before
/// any query is known; afterwards, arbitrary FlowQL arrives and is
/// answered from the same summaries.
#[test]
fn c9_a_priori_unknown_queries() {
    let mut fs = Flowstream::new(2, 2, FlowstreamConfig::default());
    for r in FlowTraceGenerator::new(FlowTraceConfig {
        flows_per_sec: 100.0,
        duration: TimeDelta::from_secs(120),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&r);
    }
    fs.finish();
    // Queries invented "later", none of which shaped the aggregation.
    for q in [
        "SELECT TOPK 3 FROM ALL WHERE location = \"region-0\"",
        "SELECT QUERY FROM [0, 60) WHERE src_ip = 10.0.0.0/8",
        "SELECT HHH 1000 FROM ALL WHERE location = \"region-1\"",
        "SELECT ABOVE 100 FROM [60, 120) WHERE proto = 6 AND location = \"region-0\"",
        "SELECT DRILLDOWN FROM ALL WHERE src_ip = 10.0.0.0/8 AND location = \"region-0\"",
    ] {
        let result = fs
            .query(q)
            .unwrap_or_else(|e| panic!("query {q:?} failed: {e}"));
        assert!(!result.op.is_empty());
    }
}

/// Cross-check: the predictive-maintenance app (challenge 6, factory side)
/// works end-to-end from stored summaries.
#[test]
fn c6_factory_side_full_knowledge() {
    use megastream_datastore::summary::{Lineage, StoredSummary};
    use megastream_primitives::aggregator::ComputingPrimitive;
    use megastream_primitives::timebin::TimeBinStats;

    let mut app = PredictiveMaintenanceApp::new(TimeDelta::from_hours(4));
    app.set_min_points(10);
    let mut agg = TimeBinStats::new(TimeDelta::from_secs(60), 1);
    for i in 0..12u64 {
        agg.ingest(&(60.0 + 2.0 * i as f64), Timestamp::from_secs(i * 60));
    }
    let w = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_mins(12));
    let summary = StoredSummary::new(
        "machine-5/agg0",
        w,
        Summary::Bins(agg.snapshot(w)),
        Lineage::from_source("machine-5/temperature"),
    );
    let directives = app.on_summary(&summary, Timestamp::ZERO);
    assert!(
        directives.iter().any(|d| matches!(
            d,
            megastream::application::AppDirective::ScheduleMaintenance { machine: 5, .. }
        )),
        "{directives:?}"
    );
}
