//! §III-C — schema-level lineage: summaries stay attributable to their
//! sources and transformations as they move through the hierarchy.

use megastream::hierarchy::StoreHierarchy;
use megastream_datastore::{AggregatorSpec, DataStore, StorageStrategy};
use megastream_flow::record::FlowRecord;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowtree::FlowtreeConfig;
use megastream_netsim::topology::{LinkSpec, Network, NodeKind};

fn rec(src: &str, packets: u64) -> FlowRecord {
    FlowRecord::builder()
        .proto(6)
        .src(src.parse().unwrap(), 40_000)
        .dst("1.1.1.1".parse().unwrap(), 443)
        .packets(packets)
        .build()
}

fn flow_store(name: &str, epoch_secs: u64) -> DataStore {
    let mut s = DataStore::new(
        name,
        StorageStrategy::RoundRobin {
            budget_bytes: 4 << 20,
        },
        TimeDelta::from_secs(epoch_secs),
    );
    s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
    s
}

/// A summary produced at a leaf records its streams and the snapshot
/// transform with location and time.
#[test]
fn leaf_summaries_carry_sources_and_snapshot() {
    let mut store = flow_store("router-store", 60);
    store.ingest_flow(
        &"router-7".into(),
        &rec("10.0.0.1", 5),
        Timestamp::from_secs(1),
    );
    store.ingest_flow(
        &"router-9".into(),
        &rec("10.0.0.2", 5),
        Timestamp::from_secs(2),
    );
    let exported = store.rotate_epoch(Timestamp::from_secs(60));
    let lineage = &exported[0].lineage;
    assert_eq!(lineage.sources, vec!["router-7", "router-9"]);
    assert_eq!(lineage.transforms.len(), 1);
    assert_eq!(lineage.transforms[0].op, "snapshot");
    assert_eq!(lineage.transforms[0].location, "router-store");
    assert_eq!(lineage.transforms[0].at, Timestamp::from_secs(60));
}

/// Hierarchical re-aggregation (S3) appends merge + aggregate transforms
/// and unions the sources, so "how did this summary come to be" stays
/// answerable — the paper's schema-level lineage.
#[test]
fn s3_aggregation_extends_the_chain() {
    use megastream_datastore::storage::{StorageStrategy, SummaryStore};
    let mut small = flow_store("edge", 60);
    small.ingest_flow(
        &"sensor-a".into(),
        &rec("10.0.0.1", 5),
        Timestamp::from_secs(1),
    );
    let one = small.rotate_epoch(Timestamp::from_secs(60));
    let size = one[0].wire_size();

    let mut s3 = SummaryStore::new(
        StorageStrategy::RoundRobinHierarchical {
            budget_bytes: size * 2,
            fanout: 2,
        },
        "edge",
    );
    // Insert four epochs from two alternating sensors → forced aggregation.
    for epoch in 0..4u64 {
        let mut store = flow_store("edge", 60);
        let sensor = format!("sensor-{}", if epoch % 2 == 0 { "a" } else { "b" });
        store.ingest_flow(
            &sensor.as_str().into(),
            &rec(&format!("10.0.0.{epoch}"), 5),
            Timestamp::from_secs(epoch * 60 + 1),
        );
        let mut exported = store.rotate_epoch(Timestamp::from_secs((epoch + 1) * 60));
        s3.insert(exported.remove(0), Timestamp::from_secs((epoch + 1) * 60));
    }
    let aggregated = s3
        .iter()
        .find(|s| s.level >= 1)
        .expect("no aggregation happened");
    let ops: Vec<&str> = aggregated
        .lineage
        .transforms
        .iter()
        .map(|t| t.op.as_str())
        .collect();
    assert!(ops.contains(&"snapshot"));
    assert!(ops.contains(&"merge"));
    assert!(ops.contains(&"hierarchical-aggregate"));
    // Sources were unioned across the merged epochs.
    assert!(aggregated.lineage.sources.len() >= 2);
}

/// Through a full hierarchy hop, imported summaries record the import
/// location — so a faulty-sensor investigation can walk from the cloud
/// back to the stream ("data lineage can, e.g., be used to identify
/// faulty sensors").
#[test]
fn faulty_sensor_traceable_from_the_top() {
    let mut net = Network::new();
    let top = net.add_node("cloud", NodeKind::Cloud);
    let leaf = net.add_node("edge", NodeKind::DataStore);
    net.connect(leaf, top, LinkSpec::wan_100m());
    let mut h = StoreHierarchy::new(net);
    // The parent has no aggregators → child summaries are imported intact.
    let root = h.add_root(
        DataStore::new(
            "cloud",
            StorageStrategy::RoundRobin {
                budget_bytes: 8 << 20,
            },
            TimeDelta::from_secs(600),
        ),
        top,
    );
    let child = h.add_child(flow_store("edge", 60), leaf, root);
    // The "faulty" sensor emits an absurd packet count.
    h.ingest_flow(
        child,
        &"sensor-broken".into(),
        &rec("10.0.0.1", 1 << 40),
        Timestamp::from_secs(5),
    );
    h.pump(Timestamp::from_secs(60)).unwrap();

    // At the top, find the suspicious summary and walk its lineage back.
    let suspicious = h
        .store(root)
        .summaries()
        .iter()
        .find(|s| {
            s.summary
                .flow_score(&megastream_flow::key::FlowKey::root())
                .is_some_and(|p| p.value() > 1 << 30)
        })
        .expect("suspicious summary not found at the cloud");
    assert_eq!(suspicious.lineage.sources, vec!["sensor-broken"]);
    let locations: Vec<&str> = suspicious
        .lineage
        .transforms
        .iter()
        .map(|t| t.location.as_str())
        .collect();
    assert_eq!(locations, vec!["edge", "cloud"]);
    assert_eq!(suspicious.lineage.transforms.last().unwrap().op, "import");
}
