//! FlowQL parser fuzz-lite: thousands of seeded random inputs — raw byte
//! soup, keyword-biased token salads, truncations and point mutations of
//! valid queries — must all return `Err` (or a valid `Query`), **never
//! panic**. The parser is reachable from user-supplied FlowQL, so panic
//! freedom is part of its contract; this suite is deterministic (seeded),
//! unlike a coverage-guided fuzzer, but runs on every `scripts/check.sh`.

use rand::prelude::{Rng, SeedableRng, StdRng};

use megastream_flowdb::parser::parse;

/// Every query of the canonical E14 set plus the grammar corner cases the
/// parser's own unit tests exercise — the mutation seeds.
const VALID: &[&str] = &[
    "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8",
    "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8 GROUP BY location",
    "SELECT TOPK 5 FROM ALL",
    "SELECT TOPK 3 FROM ALL GROUP BY location",
    "SELECT ABOVE 500 FROM ALL",
    "SELECT HHH 2000 FROM ALL",
    "SELECT DRILLDOWN FROM ALL WHERE src_ip = 10.0.0.0/8",
    "SELECT QUERY FROM [0, 60) WHERE src_ip = 10.0.0.0/8",
    "SELECT QUERY FROM ALL WHERE location = \"region-0\"",
    "SELECT TOPK 5 FROM [60, 240) WHERE dst_ip = 0.0.0.0/0",
    "SELECT TOPK 5 FROM [0, 60), [120, 180) \
     WHERE src_ip = 10.0.0.0/8 AND dst_port = 53 AND location = \"region-0\"",
    "select hhh 100 from all where proto = 17",
    "SELECT QUERY FROM ALL WHERE dst_ip = 1.2.3.4",
    "SELECT QUERY FROM ALL WHERE dst_port = 65535",
];

/// Words the lexer/parser care about, to bias random inputs toward deep
/// grammar paths instead of dying in the lexer.
const TOKENS: &[&str] = &[
    "SELECT",
    "QUERY",
    "TOPK",
    "ABOVE",
    "HHH",
    "DRILLDOWN",
    "FROM",
    "ALL",
    "WHERE",
    "AND",
    "GROUP",
    "BY",
    "location",
    "src_ip",
    "dst_ip",
    "proto",
    "src_port",
    "dst_port",
    "=",
    "[",
    ")",
    ",",
    "10.0.0.0/8",
    "1.2.3.4",
    "\"region-0\"",
    "0",
    "5",
    "53",
    "60",
    "65536",
    "18446744073709551615",
    "999999999999999999999",
];

/// `parse` must return, not unwind; on a panic the test names the input.
fn must_not_panic(input: &str) {
    let outcome = std::panic::catch_unwind(|| parse(input).map(|q| format!("{q:?}")));
    assert!(outcome.is_ok(), "parser panicked on input: {input:?}");
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xF102_F122);
    for _ in 0..3000 {
        let len = rng.gen_range(0usize..120);
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    // Printable ASCII reaches past the lexer more often.
                    rng.gen_range(0x20u8..0x7F)
                } else {
                    rng.gen::<u8>()
                }
            })
            .collect();
        must_not_panic(&String::from_utf8_lossy(&bytes));
    }
}

#[test]
fn random_token_salad_never_panics() {
    // Grammar-adjacent inputs: real keywords in nonsense orders hit the
    // parser's deep states (numbers after TOPK, ranges, conditions).
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..3000 {
        let words = rng.gen_range(0usize..16);
        let salad: Vec<&str> = (0..words)
            .map(|_| TOKENS[rng.gen_range(0usize..TOKENS.len())])
            .collect();
        must_not_panic(&salad.join(" "));
    }
}

#[test]
fn truncations_of_valid_queries_never_panic() {
    // Every prefix of every valid query: end-of-input handling in each
    // parser state.
    for q in VALID {
        for end in 0..=q.len() {
            if q.is_char_boundary(end) {
                must_not_panic(&q[..end]);
            }
        }
    }
}

#[test]
fn mutations_of_valid_queries_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xD15E_A5ED);
    for _ in 0..2000 {
        let mut bytes = VALID[rng.gen_range(0usize..VALID.len())]
            .as_bytes()
            .to_vec();
        for _ in 0..rng.gen_range(1usize..4) {
            match rng.gen_range(0u32..4) {
                0 if !bytes.is_empty() => {
                    // Overwrite a byte.
                    let i = rng.gen_range(0usize..bytes.len());
                    bytes[i] = rng.gen_range(0x20u8..0x7F);
                }
                1 if !bytes.is_empty() => {
                    // Delete a byte.
                    bytes.remove(rng.gen_range(0usize..bytes.len()));
                }
                2 => {
                    // Insert a byte.
                    let i = rng.gen_range(0usize..=bytes.len());
                    bytes.insert(i, rng.gen_range(0x20u8..0x7F));
                }
                _ if bytes.len() >= 2 => {
                    // Swap two bytes.
                    let i = rng.gen_range(0usize..bytes.len());
                    let j = rng.gen_range(0usize..bytes.len());
                    bytes.swap(i, j);
                }
                _ => {}
            }
        }
        must_not_panic(&String::from_utf8_lossy(&bytes));
    }
}

#[test]
fn hostile_numbers_and_ranges_never_panic() {
    // Directed cases for the arithmetic paths: u64 extremes in every
    // numeric slot (k, thresholds, ports, time-range bounds — where an
    // unguarded seconds→micros conversion would overflow).
    let extremes = [
        "0",
        "1",
        "65535",
        "65536",
        "4294967296",
        "18446744073709551615",
    ];
    for n in extremes {
        must_not_panic(&format!("SELECT TOPK {n} FROM ALL"));
        must_not_panic(&format!("SELECT ABOVE {n} FROM ALL"));
        must_not_panic(&format!("SELECT HHH {n} FROM ALL"));
        must_not_panic(&format!("SELECT QUERY FROM ALL WHERE dst_port = {n}"));
        must_not_panic(&format!("SELECT QUERY FROM ALL WHERE proto = {n}"));
        for m in extremes {
            must_not_panic(&format!("SELECT QUERY FROM [{n}, {m})"));
        }
    }
    // Overlong literals overflow u64 in the lexer.
    must_not_panic("SELECT TOPK 99999999999999999999999999 FROM ALL");
    must_not_panic("SELECT QUERY FROM [99999999999999999999999999, 1)");
    // Prefix edge cases.
    for p in [
        "0.0.0.0/0",
        "255.255.255.255/32",
        "1.2.3.4/33",
        "300.1.1.1/8",
        "1.2.3/8",
        "::1/64",
    ] {
        must_not_panic(&format!("SELECT QUERY FROM ALL WHERE src_ip = {p}"));
    }
}

#[test]
fn valid_seed_queries_still_parse() {
    // The mutation corpus must stay a corpus of *valid* queries, or the
    // fuzz tests quietly degrade to byte soup.
    for q in VALID {
        assert!(parse(q).is_ok(), "seed query no longer parses: {q}");
    }
}
