//! Accounting-plane property suite (PR 8).
//!
//! The resource-accounting plane keeps one invariant everywhere: the
//! *incrementally maintained* byte account (what the `store.memory.bytes`
//! gauge carries, adjusted by delta at every insert, eviction, and
//! hierarchical aggregation) must always equal the *independent recompute*
//! that walks every summary and live aggregator from scratch. This suite
//! drives arbitrary operation sequences — inserts under all three storage
//! strategies, ingest/rotate/import cycles on a full `DataStore`, and
//! clean plus chaos `Flowstream` deployments (the spill/flush path) — and
//! asserts the two sides agree after every step.
//!
//! The second half pins the cost-metering claim: `QueryCost`'s work
//! fields (locations, summaries, nodes visited, bytes merged, rows) are a
//! pure function of database contents and query, so they are bit-identical
//! across `Parallelism::Sequential` and `Parallelism::Threads(n)`.

use megastream::{DegradationPolicy, Flowstream, FlowstreamConfig, Parallelism};
use megastream_datastore::storage::{StorageStrategy, SummaryStore};
use megastream_datastore::store::DataStore;
use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
use megastream_datastore::AggregatorSpec;
use megastream_flow::key::FeatureSet;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::ScoreKind;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowdb::QueryCost;
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use megastream_netsim::FaultPlan;
use megastream_telemetry::{labeled, Telemetry};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------- helpers

fn record(src: u32, dst: u32, packets: u64) -> FlowRecord {
    FlowRecord::builder()
        .proto(6)
        .src(megastream_flow::addr::Ipv4Addr::from(src), 80)
        .dst(megastream_flow::addr::Ipv4Addr::from(dst), 443)
        .packets(packets.clamp(1, 1_000))
        .build()
}

/// One epoch's flowtree summary from a small synthetic stream.
fn epoch_summary(source: &str, epoch: u64, flows: &[(u32, u32)]) -> StoredSummary {
    let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(128));
    for (src, dst) in flows {
        tree.observe(&record(*src, *dst, 3));
    }
    StoredSummary::new(
        format!("{source}/agg0"),
        TimeWindow::starting_at(Timestamp::from_secs(epoch * 60), TimeDelta::from_secs(60)),
        Summary::Flowtree(tree),
        Lineage::from_source(source),
    )
}

/// Every strategy, parameterized so enforcement actually fires: a tight
/// byte budget forces evictions (S2) and hierarchical merges (S3), and a
/// short TTL forces expiry (S1).
fn strategies() -> [StorageStrategy; 3] {
    [
        StorageStrategy::FixedExpiration {
            ttl: TimeDelta::from_secs(120),
        },
        StorageStrategy::RoundRobin {
            budget_bytes: 4_096,
        },
        StorageStrategy::RoundRobinHierarchical {
            budget_bytes: 4_096,
            fanout: 3,
        },
    ]
}

// ------------------------------------------------ summary-store invariant

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary insert sequences from two sources, under every storage
    /// strategy: the delta-maintained account equals the recompute after
    /// every single insert (each of which may trigger expiry, eviction,
    /// or a chain of hierarchical aggregations).
    #[test]
    fn summary_store_account_matches_recompute(
        epochs in vec(vec((any::<u32>(), any::<u32>()), 1..20), 1..24),
    ) {
        for strategy in strategies() {
            let mut store = SummaryStore::new(strategy, "prop-loc");
            for (e, flows) in epochs.iter().enumerate() {
                let source = if e % 2 == 0 { "router-a" } else { "router-b" };
                let now = Timestamp::from_secs((e as u64 + 1) * 60);
                store.insert(epoch_summary(source, e as u64, flows), now);
                prop_assert_eq!(
                    store.accounted_deep_bytes(),
                    store.deep_bytes(),
                    "strategy {:?} diverged after insert {}",
                    strategy,
                    e
                );
            }
            // Late enforcement (time passing with no inserts) must hold too.
            store.enforce(Timestamp::from_secs(10_000));
            prop_assert_eq!(store.accounted_deep_bytes(), store.deep_bytes());
        }
    }

    /// Duplicate-content inserts: value-numbered dedup must fire (every
    /// copy after the first adopts the canonical arena), shared subtrees
    /// must be charged *once*, and the delta-maintained account must still
    /// equal the from-scratch recompute — the recompute walks distinct
    /// storage tokens, so any double-count or missed discharge on the
    /// dedup path shows up immediately.
    #[test]
    fn summary_store_dedup_accounts_shared_arenas_once(
        flows in vec((any::<u32>(), any::<u32>()), 1..20),
        copies in 2usize..8,
    ) {
        let mut store = SummaryStore::new(
            StorageStrategy::FixedExpiration {
                ttl: TimeDelta::from_secs(1_000_000),
            },
            "dedup-loc",
        );
        let single = epoch_summary("router-a", 0, &flows).summary.deep_bytes();
        for e in 0..copies {
            let now = Timestamp::from_secs((e as u64 + 1) * 60);
            store.insert(epoch_summary("router-a", e as u64, &flows), now);
            prop_assert_eq!(
                store.accounted_deep_bytes(),
                store.deep_bytes(),
                "account diverged after duplicate insert {}",
                e
            );
        }
        // Every copy after the first carries identical content and must
        // have adopted the first copy's arena.
        prop_assert_eq!(store.dedup_hits(), copies as u64 - 1);
        // All copies together hold exactly one distinct arena, so the
        // store's deep size stays well below `copies` independent trees.
        let (arena_nodes, arena_bytes) = store.arena_stats();
        prop_assert!(arena_nodes > 0 && arena_bytes > 0);
        prop_assert!(
            store.deep_bytes() < copies * single,
            "dedup saved nothing: {} copies of {} bytes occupy {}",
            copies,
            single,
            store.deep_bytes()
        );
    }

    /// A full `DataStore` under arbitrary ingest/rotate/import schedules:
    /// live aggregators plus the summary store, with the
    /// `store.memory.bytes` gauge along for the ride.
    #[test]
    fn data_store_account_matches_recompute(
        ops in vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..120),
    ) {
        let tel = Telemetry::new();
        let mut store = DataStore::new(
            "prop-store",
            StorageStrategy::RoundRobinHierarchical {
                budget_bytes: 8_192,
                fanout: 2,
            },
            TimeDelta::from_secs(30),
        )
        .with_telemetry(&tel);
        let tree_id = store.install_aggregator(AggregatorSpec::Flowtree(
            FlowtreeConfig::default().with_capacity(64),
        ));
        let top_id = store.install_aggregator(AggregatorSpec::TopFlows {
            capacity: 16,
            features: FeatureSet::FIVE_TUPLE,
            score_kind: ScoreKind::Packets,
        });
        let stream = megastream_datastore::store::StreamId::new("prop-stream");
        store.subscribe(tree_id, stream.clone());
        store.subscribe(top_id, stream.clone());

        let mut now = Timestamp::ZERO;
        for (i, (op, src, dst)) in ops.iter().enumerate() {
            now += TimeDelta::from_secs(1);
            match op % 4 {
                // Most ops ingest; every 4th-ish rotates or imports.
                0..=1 => {
                    store.ingest_flow(&stream, &record(*src, *dst, u64::from(*op) + 1), now);
                }
                2 => {
                    store.rotate_epoch(now);
                }
                _ => {
                    let flows = [(*src, *dst), (*dst, *src)];
                    store.import_summary(epoch_summary("child", i as u64, &flows), now);
                }
            }
            prop_assert_eq!(
                store.accounted_bytes(),
                store.deep_bytes(),
                "diverged after op {} ({})",
                i,
                op % 4
            );
        }
        // After a final rotation the gauge must carry exactly the account.
        store.rotate_epoch(now + TimeDelta::from_secs(60));
        prop_assert_eq!(store.accounted_bytes(), store.deep_bytes());
        let gauge = tel
            .snapshot()
            .gauge(&labeled("store.memory.bytes", "store", "prop-store"));
        prop_assert_eq!(gauge, Some(store.accounted_bytes() as i64));
    }
}

// ------------------------------------------------- deployment-level runs

fn run_deployment(chaos: bool) -> Flowstream {
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(
        3,
        2,
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(30),
            ..Default::default()
        },
    )
    .with_telemetry(&tel);
    if chaos {
        let mut plan = FaultPlan::seeded(7);
        plan.link_down(
            fs.region_node(1),
            fs.noc_node(),
            Timestamp::from_secs(60),
            Timestamp::from_secs(180),
        );
        fs.network_mut().install_faults(plan);
    }
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 21,
        flows_per_sec: 120.0,
        duration: TimeDelta::from_mins(4),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&rec);
        if chaos && rec.ts >= Timestamp::from_secs(100) && rec.ts < Timestamp::from_secs(101) {
            // Query mid-outage so the partial path also runs.
            let _ = fs.query_with_policy("SELECT TOPK 3 FROM ALL", DegradationPolicy::Partial);
        }
    }
    fs.finish();
    fs
}

fn assert_stores_consistent(fs: &Flowstream) {
    let snap = fs.telemetry().snapshot();
    for g in 0..fs.regions() {
        let store = fs.region_store(g);
        assert_eq!(
            store.accounted_bytes(),
            store.deep_bytes(),
            "store {} account diverged",
            store.name()
        );
        // The exported gauge carries the same number (it is refreshed at
        // every rotation, and no ingest has happened since `finish`).
        let gauge = snap.gauge(&labeled("store.memory.bytes", "store", store.name()));
        assert_eq!(gauge, Some(store.accounted_bytes() as i64));
    }
}

#[test]
fn clean_run_keeps_store_accounts_exact() {
    let fs = run_deployment(false);
    assert_stores_consistent(&fs);
}

#[test]
fn chaos_run_keeps_store_accounts_exact() {
    // The outage forces exports to spill and re-flush; the invariant must
    // survive the whole detour.
    let fs = run_deployment(true);
    assert!(
        fs.stats().spilled_summaries > 0,
        "chaos run must exercise the spill path"
    );
    assert_stores_consistent(&fs);
}

// ---------------------------------------------- query-cost determinism

/// The canonical query set from E14, reused here: for each query, the
/// cost's work fields must be bit-identical between the sequential oracle
/// and a threaded run (QueryCost's PartialEq deliberately compares only
/// the work fields, never wall-clock micros).
#[test]
fn query_cost_is_bit_identical_across_parallelism() {
    let costs: Vec<Vec<Option<QueryCost>>> = [Parallelism::Sequential, Parallelism::Threads(3)]
        .into_iter()
        .map(|par| {
            let mut fs = Flowstream::new(
                3,
                2,
                FlowstreamConfig {
                    epoch_len: TimeDelta::from_secs(30),
                    parallelism: par,
                    ..Default::default()
                },
            );
            for rec in FlowTraceGenerator::new(FlowTraceConfig {
                seed: 77,
                flows_per_sec: 60.0,
                duration: TimeDelta::from_mins(5),
                ..Default::default()
            }) {
                fs.ingest_round_robin(&rec);
            }
            fs.finish();
            [
                "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8",
                "SELECT TOPK 5 FROM ALL",
                "SELECT TOPK 3 FROM ALL GROUP BY location",
                "SELECT HHH 2000 FROM ALL",
                "SELECT DRILLDOWN FROM ALL WHERE src_ip = 10.0.0.0/8",
                "SELECT QUERY FROM [0, 60) WHERE src_ip = 10.0.0.0/8",
            ]
            .into_iter()
            .map(|q| fs.query(q).ok().map(|r| r.cost))
            .collect()
        })
        .collect();
    assert_eq!(costs[0], costs[1], "QueryCost diverged across parallelism");
    // And the costs are actually populated, not vacuous zeroes.
    for cost in costs[0].iter().flatten() {
        assert!(cost.locations > 0, "cost must name its locations");
        assert!(cost.summaries > 0, "cost must count merged summaries");
        assert!(cost.work_units() > 0, "cost must carry work");
    }
}
