//! E6 — Fig. 4: the three storage strategies' qualitative contracts.
//!
//! * S1 guarantees retention for the TTL but uses unbounded space,
//! * S2 honours the budget exactly but silently loses old data,
//! * S3 honours the budget *and* answers queries about old windows — at
//!   reduced detail.

use megastream_datastore::storage::{StorageStrategy, SummaryStore};
use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
use megastream_flow::key::FlowKey;
use megastream_flow::record::FlowRecord;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::{Flowtree, FlowtreeConfig};

/// One epoch's summary: `flows` distinct flows of 10 packets each.
fn epoch_summary(epoch: u64, flows: u32) -> StoredSummary {
    let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(8192));
    for i in 0..flows {
        tree.observe(
            &FlowRecord::builder()
                .proto(6)
                .src(
                    format!("10.{}.{}.{}", i % 4, (i / 4) % 250, i % 250)
                        .parse()
                        .unwrap(),
                    40_000,
                )
                .dst("1.1.1.1".parse().unwrap(), 443)
                .packets(10)
                .build(),
        );
    }
    StoredSummary::new(
        "router-0/agg0",
        TimeWindow::starting_at(Timestamp::from_secs(epoch * 60), TimeDelta::from_secs(60)),
        Summary::Flowtree(tree),
        Lineage::from_source("router-0"),
    )
}

fn old_window_score(store: &SummaryStore) -> u64 {
    // Query the very first epoch's window.
    let w = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(60));
    store
        .summaries_in(w)
        .filter_map(|s| s.summary.flow_score(&FlowKey::root()))
        .map(|p| p.value())
        .sum()
}

const EPOCHS: u64 = 24;
const FLOWS_PER_EPOCH: u32 = 400;

#[test]
fn s2_loses_history_s3_keeps_it_coarser() {
    let budget = epoch_summary(0, FLOWS_PER_EPOCH).wire_size() * 4;
    let mut s2 = SummaryStore::new(
        StorageStrategy::RoundRobin {
            budget_bytes: budget,
        },
        "edge",
    );
    let mut s3 = SummaryStore::new(
        StorageStrategy::RoundRobinHierarchical {
            budget_bytes: budget,
            fanout: 2,
        },
        "edge",
    );
    for epoch in 0..EPOCHS {
        let now = Timestamp::from_secs((epoch + 1) * 60);
        s2.insert(epoch_summary(epoch, FLOWS_PER_EPOCH), now);
        s3.insert(epoch_summary(epoch, FLOWS_PER_EPOCH), now);
    }
    // Both honour the budget (S3 may overshoot by one summary transiently).
    assert!(s2.total_bytes() <= budget);
    assert!(s3.total_bytes() <= budget + budget / 2);

    // S2: the first epoch is gone — the query silently returns nothing.
    assert_eq!(old_window_score(&s2), 0, "S2 should have evicted epoch 0");
    // S3: the first epoch is still answerable (aggregated, not expired).
    let s3_old = old_window_score(&s3);
    assert!(s3_old > 0, "S3 lost the old window entirely");
    // Root-level mass over the old window is preserved exactly by
    // hierarchical aggregation (merges never lose mass) — although the
    // window is now coarser, so the score covers a *larger* hull window.
    assert!(s3_old >= (FLOWS_PER_EPOCH as u64) * 10);
    assert!(s3.aggregations() > 0);
    assert_eq!(s3.evicted(), 0, "S3 should aggregate, not evict");
}

#[test]
fn s1_guarantees_ttl_but_grows() {
    let mut s1 = SummaryStore::new(
        StorageStrategy::FixedExpiration {
            ttl: TimeDelta::from_secs(10 * 60),
        },
        "edge",
    );
    let mut peak = 0;
    for epoch in 0..EPOCHS {
        let now = Timestamp::from_secs((epoch + 1) * 60);
        s1.insert(epoch_summary(epoch, FLOWS_PER_EPOCH), now);
        peak = peak.max(s1.total_bytes());
    }
    // Everything younger than the TTL is guaranteed present: exactly the
    // last 10 epochs (+1 in flight).
    assert!(s1.len() >= 10 && s1.len() <= 11, "{} summaries", s1.len());
    // Storage grew to hold 10 full-detail epochs — about 2.5× the S2/S3
    // budget of 4 epochs.
    assert!(peak > epoch_summary(0, FLOWS_PER_EPOCH).wire_size() * 9);
}

#[test]
fn s3_detail_degrades_with_age() {
    let budget = epoch_summary(0, FLOWS_PER_EPOCH).wire_size() * 4;
    let mut s3 = SummaryStore::new(
        StorageStrategy::RoundRobinHierarchical {
            budget_bytes: budget,
            fanout: 2,
        },
        "edge",
    );
    for epoch in 0..EPOCHS {
        let now = Timestamp::from_secs((epoch + 1) * 60);
        s3.insert(epoch_summary(epoch, FLOWS_PER_EPOCH), now);
    }
    // Older summaries sit at higher aggregation levels (coarser detail,
    // wider windows); the newest are still level 0.
    let levels: Vec<(u32, TimeWindow)> = s3.iter().map(|s| (s.level, s.window)).collect();
    let max_level = levels.iter().map(|(l, _)| *l).max().unwrap();
    assert!(max_level >= 2, "levels: {levels:?}");
    assert!(levels.iter().any(|(l, _)| *l == 0));
    // The highest-level summary covers the widest time span.
    let widest = levels
        .iter()
        .max_by_key(|(_, w)| w.len().as_micros())
        .unwrap();
    assert_eq!(
        widest.0, max_level,
        "oldest data should be at the coarsest level"
    );
    // And per-flow detail is reduced: a /32 query on the oldest window is
    // an underestimate (mass folded to prefixes), while the root query
    // keeps the mass.
    let oldest = s3.iter().find(|s| s.level == max_level).unwrap();
    if let Summary::Flowtree(t) = &oldest.summary {
        let leaf = FlowKey::five_tuple(
            6,
            "10.0.0.0".parse().unwrap(),
            40_000,
            "1.1.1.1".parse().unwrap(),
            443,
        );
        let leaf_score = t.query(&leaf).value();
        assert!(
            leaf_score <= 10 * (EPOCHS / 2),
            "leaf detail retained: {leaf_score}"
        );
        assert!(t.total().value() >= FLOWS_PER_EPOCH as u64 * 10);
    } else {
        panic!("expected a flowtree summary");
    }
}
