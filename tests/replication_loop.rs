//! E8 — Fig. 6: the adaptive-replication loop over the simulated network,
//! end to end through the manager.

use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_manager::Manager;
use megastream_netsim::topology::{LinkSpec, Network, NodeKind};
use megastream_replication::policy::ReplicationPolicy;
use megastream_replication::simulator::{replay_with_history, training_volumes, Access};
use megastream_workloads::querytrace::{AccessDistribution, QueryTraceConfig};

fn two_store_net() -> (
    Network,
    megastream_netsim::NodeId,
    megastream_netsim::NodeId,
) {
    let mut net = Network::new();
    let owner = net.add_node("owner", NodeKind::DataStore);
    let remote = net.add_node("remote", NodeKind::DataStore);
    net.connect(owner, remote, LinkSpec::wan_100m());
    (net, owner, remote)
}

/// The manager records accesses, predicts, and starts replication; the
/// network accounts query and replication transfers (Fig. 6 ①–④).
#[test]
fn manager_driven_loop_reduces_latency_after_replication() {
    let (mut net, owner, remote) = two_store_net();
    let mut mgr = Manager::new(ReplicationPolicy::BreakEven { factor: 1.0 });
    let partition = mgr.replication_mut().register_partition(owner, 2_000_000);
    let mut first_remote_latency = None;
    let mut replicated_at_access = None;
    for i in 0..20u64 {
        let before = net.total_bytes();
        let order = mgr
            .replication_mut()
            .on_access(
                partition,
                remote,
                600_000,
                &mut net,
                Timestamp::from_secs(i * 10),
            )
            .unwrap();
        let moved = net.total_bytes() - before;
        if i == 0 {
            first_remote_latency = Some(moved);
            assert_eq!(moved, 600_000, "first access ships the result");
        }
        if order.is_some() {
            replicated_at_access = Some(i);
        }
        if replicated_at_access.is_some() && i > replicated_at_access.unwrap() {
            assert_eq!(moved, 0, "post-replication accesses are local");
        }
    }
    // Break-even: accumulate 600 KB per access, replicate once ≥ 2 MB,
    // i.e. on the 4th access (index 3).
    assert_eq!(replicated_at_access, Some(3));
    assert!(first_remote_latency.is_some());
    let ctl = mgr.replication();
    assert_eq!(ctl.remote_hits(), 4);
    assert_eq!(ctl.local_hits(), 16);
    assert_eq!(ctl.shipped_bytes(), 2_400_000);
    assert_eq!(ctl.replication_bytes(), 2_000_000);
}

/// Competitive guarantees across distributions: break-even never exceeds
/// 2×OPT (plus one query of overshoot); the distribution-aware policy is
/// at least as good on average when trained on the right distribution.
#[test]
fn policy_quality_ordering_by_distribution() {
    let partitions = 128usize;
    let costs = vec![3_000_000u64; partitions];
    for (dist, seed) in [
        (AccessDistribution::Geometric(0.75), 20u64),
        (AccessDistribution::Exponential(4.0), 22),
        (AccessDistribution::Pareto(1.3), 23),
    ] {
        let make = |seed| -> Vec<Access> {
            QueryTraceConfig {
                seed,
                partitions,
                accesses: dist,
                mean_gap: TimeDelta::from_secs(10),
                median_result_bytes: 700_000,
            }
            .generate()
            .into_iter()
            .map(|a| Access {
                partition: a.partition,
                ts: a.ts,
                result_bytes: a.result_bytes,
            })
            .collect()
        };
        let train = make(seed);
        let eval = make(seed + 1000);
        let history = training_volumes(&train, partitions);

        let break_even = replay_with_history(
            &eval,
            &costs,
            &ReplicationPolicy::BreakEven { factor: 1.0 },
            &history,
        );
        let aware = replay_with_history(
            &eval,
            &costs,
            &ReplicationPolicy::DistributionAware { min_samples: 32 },
            &history,
        );
        let max_result = eval.iter().map(|a| a.result_bytes).max().unwrap_or(0);
        assert!(
            break_even.total_bytes()
                <= 2 * break_even.offline_optimal_bytes + partitions as u64 * max_result,
            "break-even beyond bound for {dist:?}"
        );
        assert!(
            aware.total_bytes() as f64 <= break_even.total_bytes() as f64 * 1.05,
            "distribution-aware worse than break-even for {dist:?}: {} vs {}",
            aware.total_bytes(),
            break_even.total_bytes()
        );
    }
}

/// Never/Always bracket the ski-rental policies in their favourable
/// regimes: cold traces favour Never, hot traces favour Always, and
/// break-even stays within its bound in both.
#[test]
fn extremes_and_break_even_regimes() {
    let partitions = 64usize;
    let costs = vec![5_000_000u64; partitions];
    let make = |dist: AccessDistribution| -> Vec<Access> {
        QueryTraceConfig {
            seed: 5,
            partitions,
            accesses: dist,
            mean_gap: TimeDelta::from_secs(10),
            median_result_bytes: 500_000,
        }
        .generate()
        .into_iter()
        .map(|a| Access {
            partition: a.partition,
            ts: a.ts,
            result_bytes: a.result_bytes,
        })
        .collect()
    };
    // Cold: ~1 access per partition.
    let cold = make(AccessDistribution::Geometric(0.4));
    // Hot: ~40 accesses per partition.
    let hot = make(AccessDistribution::Fixed(40));

    let never_cold = replay_with_history(&cold, &costs, &ReplicationPolicy::Never, &[]);
    let always_cold = replay_with_history(&cold, &costs, &ReplicationPolicy::Always, &[]);
    assert!(never_cold.total_bytes() < always_cold.total_bytes());

    let never_hot = replay_with_history(&hot, &costs, &ReplicationPolicy::Never, &[]);
    let always_hot = replay_with_history(&hot, &costs, &ReplicationPolicy::Always, &[]);
    assert!(always_hot.total_bytes() < never_hot.total_bytes());

    for trace in [&cold, &hot] {
        let be = replay_with_history(
            trace,
            &costs,
            &ReplicationPolicy::BreakEven { factor: 1.0 },
            &[],
        );
        assert!(
            be.competitive_ratio() <= 2.5,
            "ratio {}",
            be.competitive_ratio()
        );
    }
}
