//! Differential oracle harness for the arena-backed `Flowtree` (PR 10).
//!
//! The arena rewrite changed every structural invariant at once: node
//! identity (u32 ids instead of boxed nodes), storage (one contiguous slot
//! vector with a free list), snapshots (copy-on-write `Arc` shares), and
//! the eviction tie-break. The proof it changed *nothing observable* is
//! this harness: the retired pointer implementation is kept verbatim as
//! [`OracleTree`] behind the dev-only `oracle` feature, and both trees are
//! driven through identical seeded op sequences — insert, merge, diff,
//! compress, capacity changes, snapshots, queries, serialization —
//! asserting observational equality and running both implementations'
//! `check_invariants()` after every step.
//!
//! Both implementations break compression ties on `(own score, key)`, so
//! the surviving node set is a pure function of the op sequence — the
//! harness can demand *exact* equality of every query result, not just
//! bounded error. The threaded legs re-run the same sequences across
//! threads: the arena's storage-token minting is process-global (a shared
//! atomic), so cross-thread interference would show up as a divergence or
//! an invariant failure.

use megastream_flow::addr::Ipv4Addr;
use megastream_flow::key::{Feature, FlowKey};
use megastream_flow::record::FlowRecord;
use megastream_flow::score::Popularity;
use megastream_flowtree::oracle::OracleTree;
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use rand::prelude::{Rng, SeedableRng, StdRng};

/// Ops per sequence — the acceptance floor is 10k.
const OPS_PER_SEQUENCE: usize = 10_000;

/// Snapshots retained live for the copy-on-write isolation check.
const MAX_SNAPSHOTS: usize = 8;

// ---------------------------------------------------------------- helpers

fn record(src: u32, dst: u32, packets: u64) -> FlowRecord {
    FlowRecord::builder()
        .proto(6)
        .src(Ipv4Addr::from(src), 80)
        .dst(Ipv4Addr::from(dst), 443)
        .packets(packets.max(1))
        .build()
}

/// Draws a record from a small address pool so sequences revisit keys,
/// share prefixes, and exercise the dedup/fold paths rather than producing
/// a flat forest of singletons.
fn gen_record(rng: &mut StdRng) -> FlowRecord {
    let src = 0x0a00_0000 | (rng.gen_range(0u32..24) << 8) | rng.gen_range(0u32..8);
    let dst = 0x0101_0100 | rng.gen_range(0u32..16);
    record(src, dst, rng.gen_range(1u64..64))
}

/// A query key at a random generalization depth, normalized to the schema
/// so both implementations look up the same hierarchy node.
fn gen_query_key(rng: &mut StdRng, config: &FlowtreeConfig) -> FlowKey {
    let mut key = FlowKey::from_record(&gen_record(rng)).project(config.features);
    if rng.gen_bool(0.7) {
        key = key.generalize(Feature::SrcIp, rng.gen_range(0u8..=32));
    }
    if rng.gen_bool(0.5) {
        key = key.generalize(Feature::DstIp, rng.gen_range(0u8..=32));
    }
    config.schema.normalize(&key)
}

// ------------------------------------------------------------ the harness

/// The pair under test: the arena tree and its pointer-based oracle, fed
/// identical operations.
struct Pair {
    arena: Flowtree,
    oracle: OracleTree,
}

impl Pair {
    fn new(config: FlowtreeConfig) -> Pair {
        Pair {
            arena: Flowtree::new(config.clone()),
            oracle: OracleTree::new(config),
        }
    }

    /// Builds a donor pair from `n` records drawn from `rng` (used by the
    /// merge and diff ops so both sides absorb identical content).
    fn build(rng: &mut StdRng, config: FlowtreeConfig, n: usize) -> Pair {
        let mut pair = Pair::new(config);
        for _ in 0..n {
            let r = gen_record(rng);
            pair.arena.observe(&r);
            pair.oracle.observe(&r);
        }
        pair
    }

    /// Observational equality: both implementations' own invariants hold
    /// and every externally visible surface matches exactly.
    fn assert_equiv(&self, step: usize) {
        self.arena.check_invariants();
        self.oracle.check_invariants();
        assert_eq!(self.arena.len(), self.oracle.len(), "len @ step {step}");
        assert_eq!(
            self.arena.total(),
            self.oracle.total(),
            "total @ step {step}"
        );
        assert_eq!(
            self.arena.records(),
            self.oracle.records(),
            "records @ step {step}"
        );
        // The deterministic (own, key) eviction tie-break makes the node
        // set representation-independent, so the full views must agree.
        let mut a = self.arena.nodes();
        let mut o = self.oracle.nodes();
        a.sort_by_key(|x| x.key);
        o.sort_by_key(|x| x.key);
        assert_eq!(a, o, "node views diverged @ step {step}");
    }

    /// Compares every query operator on a shared key/parameter draw.
    fn assert_queries_equal(&self, rng: &mut StdRng, step: usize) {
        let key = gen_query_key(rng, self.arena.config());
        assert_eq!(
            self.arena.query(&key),
            self.oracle.query(&key),
            "query({key:?}) @ step {step}"
        );
        assert_eq!(
            self.arena.get(&key),
            self.oracle.get(&key),
            "get({key:?}) @ step {step}"
        );
        assert_eq!(
            self.arena.drilldown(&key),
            self.oracle.drilldown(&key),
            "drilldown({key:?}) @ step {step}"
        );
        let k = rng.gen_range(1usize..16);
        assert_eq!(
            self.arena.top_k(k),
            self.oracle.top_k(k),
            "top_k({k}) @ step {step}"
        );
        let x = Popularity::from(rng.gen_range(0u64..200));
        assert_eq!(
            self.arena.above_x(x),
            self.oracle.above_x(x),
            "above_x({x:?}) @ step {step}"
        );
        let threshold = Popularity::from(rng.gen_range(1u64..300));
        assert_eq!(
            self.arena.hhh(threshold),
            self.oracle.hhh(threshold),
            "hhh({threshold:?}) @ step {step}"
        );
    }
}

/// Runs one full seeded differential sequence and returns the final pair
/// plus the surviving snapshots (checked for copy-on-write isolation).
fn run_sequence(seed: u64, ops: usize) -> Pair {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = FlowtreeConfig::default().with_capacity(96);
    let mut pair = Pair::new(config.clone());
    // (step taken, arena snapshot, oracle snapshot) — verified untouched
    // by later mutations of the live pair.
    let mut snapshots: Vec<(usize, Flowtree, OracleTree)> = Vec::new();

    for step in 0..ops {
        match rng.gen_range(0u32..100) {
            // Bulk of the stream: single-record ingest.
            0..=59 => {
                let r = gen_record(&mut rng);
                pair.arena.observe(&r);
                pair.oracle.observe(&r);
            }
            // Direct mass injection at a (possibly generalized) key.
            60..=69 => {
                let key = gen_query_key(&mut rng, &config);
                let score = Popularity::from(rng.gen_range(1u64..50));
                pair.arena.add_mass(&key, score);
                pair.oracle.add_mass(&key, score);
            }
            // Merge a freshly built donor (P2's combinability).
            70..=75 => {
                let n = rng.gen_range(1usize..40);
                let donor = Pair::build(&mut rng, config.clone(), n);
                pair.arena.merge(&donor.arena);
                pair.oracle.merge(&donor.oracle);
            }
            // Diff against a donor sharing the address pool.
            76..=78 => {
                let n = rng.gen_range(1usize..25);
                let donor = Pair::build(&mut rng, config.clone(), n);
                pair.arena.diff(&donor.arena);
                pair.oracle.diff(&donor.oracle);
            }
            // Explicit compression to a random target.
            79..=81 => {
                let target = rng.gen_range(1usize..=96);
                pair.arena.compress_to(target);
                pair.oracle.compress_to(target);
            }
            // Capacity adaptation (property P4).
            82 => {
                let cap = rng.gen_range(48usize..160);
                pair.arena.set_capacity(cap);
                pair.oracle.set_capacity(cap);
            }
            // Snapshot: the arena side is an O(1) copy-on-write share.
            83..=85 => {
                let snap = pair.arena.clone();
                assert!(
                    snap.shares_storage_with(&pair.arena),
                    "fresh snapshot must share the arena @ step {step}"
                );
                assert_eq!(snap, pair.arena);
                snapshots.push((step, snap, pair.oracle.clone()));
                if snapshots.len() > MAX_SNAPSHOTS {
                    snapshots.remove(0);
                }
            }
            // Serialization: flat-frame round-trip is lossless and the
            // reconstruction carries the same value number.
            86..=88 => {
                let flat = pair.arena.flat_nodes();
                let cfg = pair.arena.config().clone();
                let rt = Flowtree::try_from_flat(cfg, &flat, pair.arena.records())
                    .expect("round-trip of a live tree's own frame never fails");
                assert_eq!(rt, pair.arena, "flat round-trip diverged @ step {step}");
                assert_eq!(
                    rt.value_number(),
                    pair.arena.value_number(),
                    "value number not a pure function of content @ step {step}"
                );
            }
            // The read-only operator battery.
            89..=98 => pair.assert_queries_equal(&mut rng, step),
            // Rare full reset.
            _ => {
                if rng.gen_bool(0.05) {
                    pair.arena.clear();
                    pair.oracle.clear();
                }
            }
        }
        pair.assert_equiv(step);
    }

    // Copy-on-write isolation: every retained snapshot must still match
    // the oracle clone taken at the same step — mutations of the live pair
    // since then never leaked through shared storage.
    for (step, snap_arena, snap_oracle) in &snapshots {
        let frozen = Pair {
            arena: snap_arena.clone(),
            oracle: snap_oracle.clone(),
        };
        frozen.assert_equiv(*step);
    }
    pair
}

// ----------------------------------------------------------------- tests

/// The sequential leg: one long seeded sequence per seed, equivalence and
/// invariants checked after every single step.
#[test]
fn differential_sequential() {
    for seed in [0xA5A5_0001u64, 0xA5A5_0002] {
        let pair = run_sequence(seed, OPS_PER_SEQUENCE);
        assert!(pair.arena.records() > 0, "sequence must have ingested");
    }
}

/// The threaded leg: independent sequences on `n` threads. The arena's
/// storage-token mint is a process-global atomic, so any cross-thread
/// interference (shared slots, token collisions observable through
/// `shares_storage_with`) diverges from the thread-local oracle.
#[test]
fn differential_threads() {
    let handles: Vec<_> = (0..4u64)
        .map(|t| std::thread::spawn(move || run_sequence(0xB0B0_0000 + t, OPS_PER_SEQUENCE)))
        .collect();
    for h in handles {
        h.join().expect("differential thread must not panic");
    }
}

/// Shard-and-merge determinism: building shards on threads and merging in
/// fixed order is bit-identical to building the same shards sequentially —
/// and both match the oracle put through the same motions.
#[test]
fn differential_sharded_merge_matches_sequential() {
    let config = FlowtreeConfig::default().with_capacity(96);
    let shard = |s: u64| {
        let mut rng = StdRng::seed_from_u64(0xC0DE_0000 + s);
        Pair::build(&mut rng, FlowtreeConfig::default().with_capacity(64), 500)
    };

    // Threaded construction.
    let handles: Vec<_> = (0..4u64)
        .map(|s| std::thread::spawn(move || shard(s)))
        .collect();
    let threaded: Vec<Pair> = handles
        .into_iter()
        .map(|h| h.join().expect("shard thread must not panic"))
        .collect();

    // Sequential construction of the very same shards.
    let sequential: Vec<Pair> = (0..4).map(shard).collect();

    let mut merged_threaded = Pair::new(config.clone());
    for p in &threaded {
        merged_threaded.arena.merge(&p.arena);
        merged_threaded.oracle.merge(&p.oracle);
    }
    let mut merged_sequential = Pair::new(config);
    for p in &sequential {
        merged_sequential.arena.merge(&p.arena);
        merged_sequential.oracle.merge(&p.oracle);
    }

    merged_threaded.assert_equiv(usize::MAX);
    merged_sequential.assert_equiv(usize::MAX);
    assert_eq!(
        merged_threaded.arena, merged_sequential.arena,
        "thread-built and sequentially-built shards must merge identically"
    );
}
