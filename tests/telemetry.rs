//! Unit-level behaviour of the `megastream-telemetry` crate: metric
//! semantics, histogram bucket boundaries, thread-safety of the lock-free
//! handles, and the JSON exporter round-trip (parsed back with the crate's
//! own dependency-free JSON parser).

use std::sync::Arc;
use std::thread;

use megastream_telemetry::json::Json;
use megastream_telemetry::{labeled, Registry, Telemetry, LATENCY_MICROS_BOUNDS};

#[test]
fn counter_semantics() {
    let tel = Telemetry::new();
    let c = tel.counter("c");
    assert_eq!(c.get(), 0);
    c.inc();
    c.add(41);
    assert_eq!(c.get(), 42);
    // Same name → same underlying counter.
    assert_eq!(tel.counter("c").get(), 42);
    assert_eq!(tel.snapshot().counter("c"), Some(42));
}

#[test]
fn gauge_semantics() {
    let tel = Telemetry::new();
    let g = tel.gauge("g");
    g.set(10);
    g.add(5);
    g.sub(20);
    assert_eq!(g.get(), -5);
    assert_eq!(tel.snapshot().gauge("g"), Some(-5));
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
    let tel = Telemetry::new();
    let h = tel.histogram("h", &[10, 20, 50]);
    // Exactly on a bound lands in that bound's bucket; past the last bound
    // lands in the overflow bucket.
    for v in [1, 10, 11, 20, 21, 50, 51, 1_000_000] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.bounds, vec![10, 20, 50]);
    assert_eq!(s.counts, vec![2, 2, 2, 2]); // ≤10, ≤20, ≤50, overflow
    assert_eq!(s.count, 8);
    assert_eq!(s.min, 1);
    assert_eq!(s.max, 1_000_000);
    assert_eq!(s.sum, 1 + 10 + 11 + 20 + 21 + 50 + 51 + 1_000_000);
    // Quantiles resolve to bucket upper bounds (max for overflow).
    assert_eq!(s.quantile(0.25), 10);
    assert_eq!(s.quantile(0.5), 20);
    assert_eq!(s.quantile(1.0), 1_000_000);
}

#[test]
fn histogram_bounds_fixed_by_first_registration() {
    let tel = Telemetry::new();
    tel.histogram("h", &[1, 2, 3]).record(2);
    // Re-registering with different bounds returns the existing histogram.
    let again = tel.histogram("h", LATENCY_MICROS_BOUNDS);
    assert_eq!(again.snapshot().bounds, vec![1, 2, 3]);
    assert_eq!(again.count(), 1);
}

#[test]
fn concurrent_increments_lose_no_updates() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let tel = Telemetry::new();
    let counter = tel.counter("hot");
    let gauge = tel.gauge("depth");
    let hist = tel.histogram("lat", &[8, 64, 512]);
    thread::scope(|s| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let gauge = gauge.clone();
            let hist = hist.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(1);
                    hist.record((t as u64) * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(gauge.get(), (THREADS as u64 * PER_THREAD) as i64);
    let s = hist.snapshot();
    assert_eq!(s.count, THREADS as u64 * PER_THREAD);
    assert_eq!(s.counts.iter().sum::<u64>(), s.count);
    assert_eq!(s.min, 0);
    assert_eq!(s.max, THREADS as u64 * PER_THREAD - 1);
}

#[test]
fn concurrent_registration_yields_one_metric() {
    let registry = Arc::new(Registry::new());
    thread::scope(|s| {
        for _ in 0..4 {
            let reg = Arc::clone(&registry);
            s.spawn(move || {
                for i in 0..100 {
                    reg.counter(&format!("contended.{}", i % 10)).inc();
                }
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(snap.counters.len(), 10);
    for i in 0..10 {
        assert_eq!(snap.counter(&format!("contended.{i}")), Some(40));
    }
}

#[test]
fn json_export_round_trips() {
    let tel = Telemetry::new();
    tel.counter(&labeled("ingest.flows_total", "store", "region-0"))
        .add(1234);
    tel.gauge("footprint_bytes").set(-7);
    let h = tel.histogram("rotate.micros", &[10, 100]);
    h.record(5);
    h.record(50);
    h.record(5_000);

    let parsed = Json::parse(&tel.render_json()).expect("exporter emits valid JSON");
    assert_eq!(
        parsed
            .get("counters")
            .and_then(|c| c.get("ingest.flows_total{store=region-0}"))
            .and_then(Json::as_u64),
        Some(1234)
    );
    assert_eq!(
        parsed
            .get("gauges")
            .and_then(|g| g.get("footprint_bytes"))
            .and_then(Json::as_i64),
        Some(-7)
    );
    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("rotate.micros"))
        .expect("histogram present");
    assert_eq!(hist.get("count").and_then(Json::as_u64), Some(3));
    assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(5_055));
    assert_eq!(hist.get("min").and_then(Json::as_u64), Some(5));
    assert_eq!(hist.get("max").and_then(Json::as_u64), Some(5_000));
    let counts: Vec<u64> = hist
        .get("counts")
        .and_then(Json::as_arr)
        .expect("counts array")
        .iter()
        .filter_map(Json::as_u64)
        .collect();
    assert_eq!(counts, vec![1, 1, 1]);
}

#[test]
fn disabled_telemetry_records_nothing_and_renders_empty() {
    let tel = Telemetry::disabled();
    let c = tel.counter("never");
    c.inc();
    c.add(100);
    assert_eq!(c.get(), 0);
    assert!(!c.is_enabled());
    tel.gauge("never").set(9);
    tel.histogram("never", &[1]).record(1);
    assert!(tel.snapshot().is_empty());
    assert_eq!(tel.render_text(), "");
    let parsed = Json::parse(&tel.render_json()).expect("valid JSON even when disabled");
    assert!(parsed
        .get("counters")
        .and_then(Json::as_obj)
        .is_some_and(|o| o.is_empty()));
}
