//! Durability end-to-end: kill-and-restart crash recovery.
//!
//! A Flowstream deployment runs with a durable cold tier and is killed at
//! seeded crash points — mid-rotation, mid-seal, mid-spill-flush, and
//! between rotations mid-WAL. After each kill the deployment is rebuilt
//! from disk with [`Flowstream::recover`] and the client re-sends from the
//! first unacknowledged record. The recovered system must converge
//! **bit-identically** — region query results, live scores, accounted
//! bytes, ingest statistics — with an oracle that never crashed, under
//! both `Sequential` and `Threads(n)` parallelism. Torn tails and
//! bit-flips are detected (nonzero `storage.recovery.*` counters), never
//! panicked on, and `fsck` verifies the surviving store.

use std::path::{Path, PathBuf};

use megastream::flowstream::FlowstreamConfig;
use megastream::storage::fsck::fsck;
use megastream::{
    ColdTier, FaultMode, FaultSpec, Flowstream, Parallelism, RecoveryReport, SyncPolicy,
};
use megastream_flow::key::FlowKey;
use megastream_flow::record::FlowRecord;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowdb::QueryResult;
use megastream_netsim::FaultPlan;
use megastream_telemetry::Telemetry;
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

const REGIONS: usize = 3;
const ROUTERS: usize = 2;
/// Region 1's uplink to the NOC is down for this window, forcing exports
/// into the spill buffer so the mid-spill-flush crash point exists.
const OUTAGE_FROM: u64 = 60;
const OUTAGE_UNTIL: u64 = 150;

fn trace() -> Vec<FlowRecord> {
    FlowTraceGenerator::new(FlowTraceConfig {
        seed: 4242,
        flows_per_sec: 40.0,
        duration: TimeDelta::from_mins(5),
        internal_hosts: 120,
        external_hosts: 120,
        ..Default::default()
    })
    .collect()
}

fn config(par: Parallelism) -> FlowstreamConfig {
    FlowstreamConfig {
        epoch_len: TimeDelta::from_secs(30),
        parallelism: par,
        ..Default::default()
    }
}

fn install_outage(fs: &mut Flowstream) {
    let mut plan = FaultPlan::seeded(9);
    plan.link_down(
        fs.region_node(1),
        fs.noc_node(),
        Timestamp::from_secs(OUTAGE_FROM),
        Timestamp::from_secs(OUTAGE_UNTIL),
    );
    fs.network_mut().install_faults(plan);
}

/// A fresh scratch directory per test; removed on success.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "megastream-durability-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything convergence is asserted on. Telemetry counters and
/// simulated-network byte meters are deliberately excluded: they describe
/// the *process* (which legitimately differs across a crash), not the
/// data.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    region_results: Vec<QueryResult>,
    live_scores: Vec<u64>,
    noc_live: u64,
    accounted: Vec<usize>,
    noc_accounted: usize,
    flows: u64,
    raw_bytes: u64,
}

fn fingerprint(fs: &Flowstream) -> Fingerprint {
    let region_results = (0..fs.regions())
        .map(|g| {
            fs.query(&format!(
                "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8 AND location = region-{g}"
            ))
            .expect("region location is indexed")
        })
        .collect();
    let stats = fs.stats();
    Fingerprint {
        region_results,
        live_scores: (0..fs.regions())
            .map(|g| fs.region_store(g).live_flow_score(&FlowKey::root()).value())
            .collect(),
        noc_live: fs.noc_store().live_flow_score(&FlowKey::root()).value(),
        accounted: (0..fs.regions())
            .map(|g| fs.region_store(g).accounted_bytes())
            .collect(),
        noc_accounted: fs.noc_store().accounted_bytes(),
        flows: stats.flows,
        raw_bytes: stats.raw_bytes,
    }
}

/// The full workload with no crash. `durable` additionally journals into a
/// cold tier — the results must be identical either way.
fn run_oracle(par: Parallelism, durable: Option<&Path>) -> Fingerprint {
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(REGIONS, ROUTERS, config(par)).with_telemetry(&tel);
    install_outage(&mut fs);
    if let Some(dir) = durable {
        let tier = ColdTier::create(dir, SyncPolicy::OnSeal, tel.clone()).expect("create tier");
        fs.attach_cold_tier(tier);
    }
    for rec in trace() {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    fingerprint(&fs)
}

/// Durable-op ordinals observed around each ingest of a clean run, used to
/// aim crash points at specific operations. The op sequence is fully
/// deterministic, so ordinals transfer exactly to the crash runs.
struct Probe {
    /// `(ops_before, ops_after)` around ingest of record `i`.
    spans: Vec<(u64, u64)>,
    /// First record whose ingest rotated an epoch.
    first_rotation: usize,
    /// Record whose rotation flushed spilled summaries (post-outage).
    flush_rotation: usize,
}

/// A rotating ingest spends ≥ 5 ops: `begin_epoch`, ≥ 1 `append_frame`
/// (the Meta frame at minimum), `seal_epoch`, `wal_reset`, and the
/// record's own `wal_append`. A non-rotating ingest spends exactly 1.
fn probe(par: Parallelism, tag: &str) -> Probe {
    let dir = temp_dir(tag);
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(REGIONS, ROUTERS, config(par)).with_telemetry(&tel);
    install_outage(&mut fs);
    let tier = ColdTier::create(&dir, SyncPolicy::OnSeal, tel.clone()).expect("create tier");
    fs.attach_cold_tier(tier);
    let mut spans = Vec::new();
    let mut first_rotation = None;
    let mut flush_rotation = None;
    for (i, rec) in trace().iter().enumerate() {
        let before = fs.cold_tier().expect("attached").ops();
        let flushed_before = fs.stats().flushed_summaries;
        fs.ingest_round_robin(rec);
        let after = fs.cold_tier().expect("attached").ops();
        spans.push((before, after));
        if after > before + 1 && first_rotation.is_none() {
            first_rotation = Some(i);
        }
        if fs.stats().flushed_summaries > flushed_before && flush_rotation.is_none() {
            flush_rotation = Some(i);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    Probe {
        spans,
        first_rotation: first_rotation.expect("the workload rotates epochs"),
        flush_rotation: flush_rotation.expect("the outage forces spills that later flush"),
    }
}

/// Kills the deployment at durable-op `at_op` with `mode`, recovers from
/// disk, re-sends from the first unacknowledged record, and returns the
/// final fingerprint plus what recovery reported.
fn run_with_crash(
    par: Parallelism,
    at_op: u64,
    mode: FaultMode,
    tag: &str,
) -> (Fingerprint, RecoveryReport, Telemetry) {
    let dir = temp_dir(tag);
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(REGIONS, ROUTERS, config(par)).with_telemetry(&tel);
    install_outage(&mut fs);
    let mut tier = ColdTier::create(&dir, SyncPolicy::OnSeal, tel.clone()).expect("create tier");
    tier.set_fault(Some(FaultSpec { at_op, mode }));
    fs.attach_cold_tier(tier);

    let records = trace();
    let mut crash_at = None;
    for (i, rec) in records.iter().enumerate() {
        fs.ingest_round_robin(rec);
        if fs.cold_tier_dead() {
            crash_at = Some(i);
            break;
        }
    }
    let crash_at = crash_at.expect("the seeded fault fires mid-run");
    // The process dies: every byte of in-memory state is lost.
    drop(fs);

    let rtel = Telemetry::new();
    let (mut fs, report) = Flowstream::recover(
        REGIONS,
        ROUTERS,
        config(par),
        &dir,
        SyncPolicy::OnSeal,
        &rtel,
    )
    .expect("recovery never fails on kill residue");
    install_outage(&mut fs);
    // The client re-sends from the record that was never acknowledged.
    for rec in &records[crash_at..] {
        fs.ingest_round_robin(rec);
        assert!(!fs.cold_tier_dead(), "no second fault is installed");
    }
    fs.finish();
    let fp = fingerprint(&fs);
    let _ = std::fs::remove_dir_all(&dir);
    (fp, report, rtel)
}

/// Asserts one crash scenario converges bit-identically with the oracle
/// under both parallelism settings, and that the kill left a detectable —
/// counted, never panicked-on — torn tail.
fn assert_crash_converges(pick: impl Fn(&Probe) -> u64, mode: FaultMode, tag: &str) {
    for (par, par_tag) in [
        (Parallelism::Sequential, "seq"),
        (Parallelism::Threads(3), "thr"),
    ] {
        let oracle = run_oracle(par, None);
        let p = probe(par, &format!("{tag}-probe-{par_tag}"));
        let at_op = pick(&p);
        let (recovered, report, rtel) =
            run_with_crash(par, at_op, mode, &format!("{tag}-{par_tag}"));
        assert_eq!(
            recovered, oracle,
            "{tag}/{par_tag}: recovered run diverged from the never-crashed oracle"
        );
        // A torn write leaves a detectable partial tail; a clean stop by
        // definition leaves none — recovery must report exactly that.
        let torn_detected = report.torn_frames > 0 || report.discarded_open_segment;
        assert_eq!(
            torn_detected,
            mode == FaultMode::TornWrite,
            "{tag}/{par_tag}: torn-tail detection mismatch: torn={} open_discarded={}",
            report.torn_frames,
            report.discarded_open_segment
        );
        let snap = rtel.snapshot();
        assert_eq!(
            snap.counter("storage.recovery.torn_frames"),
            Some(report.torn_frames),
            "{tag}/{par_tag}: torn-frame counter mismatch"
        );
        assert!(
            snap.counter("storage.wal.replayed_total").unwrap_or(0)
                == report.wal_records.len() as u64,
            "{tag}/{par_tag}: every WAL record must be counted as replayed"
        );
        assert_eq!(
            report.corrupt_frames, 0,
            "{tag}/{par_tag}: a torn write never corrupts sealed data"
        );
    }
}

#[test]
fn durable_oracle_matches_in_memory_oracle() {
    // Journaling must be invisible to the data plane: the same workload
    // with and without a cold tier produces identical results, and the
    // store it leaves behind verifies clean.
    for (par, tag) in [
        (Parallelism::Sequential, "oracle-seq"),
        (Parallelism::Threads(3), "oracle-thr"),
    ] {
        let dir = temp_dir(tag);
        let durable = run_oracle(par, Some(&dir));
        let in_memory = run_oracle(par, None);
        assert_eq!(durable, in_memory, "journaling changed observable results");
        let report = fsck(&dir, false).expect("store is readable");
        assert!(
            report.is_clean(),
            "clean shutdown must verify clean: {:?}",
            report.problems
        );
        assert!(report.segments.len() > 1, "multiple epochs sealed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crash_mid_rotation_recovers_bit_identically() {
    // Die on the first frame append of an epoch segment: the header and a
    // partial frame are on disk, the seal never happened.
    assert_crash_converges(
        |p| p.spans[p.first_rotation].0 + 2,
        FaultMode::TornWrite,
        "mid-rotation",
    );
}

#[test]
fn crash_mid_seal_recovers_bit_identically() {
    // Die inside `seal_epoch`: the index trailer is half-written and the
    // atomic rename never happened, so the whole epoch falls back to WAL
    // replay.
    assert_crash_converges(
        |p| p.spans[p.first_rotation].1 - 2,
        FaultMode::TornWrite,
        "mid-seal",
    );
}

#[test]
fn crash_mid_spill_flush_recovers_bit_identically() {
    // Die on the first `Flushed` frame of the post-outage rotation — the
    // moment spilled summaries finally reach the NOC. Recovery must
    // rebuild the spill buffer from sealed `Parked` frames and re-deliver.
    assert_crash_converges(
        |p| p.spans[p.flush_rotation].0 + 2,
        FaultMode::TornWrite,
        "mid-spill-flush",
    );
}

#[test]
fn clean_stop_mid_wal_recovers_bit_identically() {
    // Die before a mid-epoch `wal_append`: the record is not applied
    // (WAL'd ⇔ applied), so the client re-sends exactly from it.
    assert_crash_converges(
        |p| {
            let (_, after) = p
                .spans
                .iter()
                .skip(p.first_rotation + 5)
                .find(|(b, a)| a == &(b + 1))
                .expect("plain ingests exist between rotations");
            *after
        },
        FaultMode::CleanStop,
        "mid-wal",
    );
}

#[test]
fn bit_flip_is_detected_quarantined_and_survivable() {
    // A bit-flip inside a sealed frame is silent data corruption, not a
    // crash: the run completes, recovery detects it by checksum,
    // quarantines the frame, repairs the segment — and never panics.
    let par = Parallelism::Sequential;
    let dir = temp_dir("bit-flip");
    let p = probe(par, "bit-flip-probe");
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(REGIONS, ROUTERS, config(par)).with_telemetry(&tel);
    install_outage(&mut fs);
    let mut tier = ColdTier::create(&dir, SyncPolicy::OnSeal, tel.clone()).expect("create tier");
    tier.set_fault(Some(FaultSpec {
        at_op: p.spans[p.first_rotation].0 + 2,
        mode: FaultMode::BitFlip,
    }));
    fs.attach_cold_tier(tier);
    for rec in trace() {
        fs.ingest_round_robin(&rec);
        assert!(!fs.cold_tier_dead(), "a bit-flip is silent, not fatal");
    }
    fs.finish();
    drop(fs);

    // fsck flags the corruption before recovery touches it.
    let dirty = fsck(&dir, false).expect("store is readable");
    assert!(!dirty.is_clean(), "fsck must flag the flipped frame");
    assert!(dirty.corrupt_frames >= 1);

    let rtel = Telemetry::new();
    let (fs, report) = Flowstream::recover(
        REGIONS,
        ROUTERS,
        config(par),
        &dir,
        SyncPolicy::OnSeal,
        &rtel,
    )
    .expect("corruption is quarantined, not fatal");
    assert!(report.corrupt_frames >= 1, "checksum must catch the flip");
    assert!(report.repaired_segments >= 1, "bad segment rewritten");
    let snap = rtel.snapshot();
    assert_eq!(
        snap.counter("storage.recovery.corrupt_frames"),
        Some(report.corrupt_frames)
    );
    // The quarantined frame's data is lost by design — but the store is
    // consistent again and queries still answer.
    for g in 0..fs.regions() {
        fs.query(&format!(
            "SELECT QUERY FROM ALL WHERE location = region-{g}"
        ))
        .expect("recovered deployment answers queries");
    }
    let clean = fsck(&dir, false).expect("store is readable");
    assert!(
        clean.is_clean(),
        "recovery must leave a verifiable store: {:?}",
        clean.problems
    );
    // The quarantine directory holds the evidence.
    let quarantined = std::fs::read_dir(dir.join("quarantine"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert!(quarantined >= 1, "flipped frame preserved for forensics");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durability_run_drops_nothing() {
    // The spill budget absorbs the whole outage: the labeled per-edge drop
    // counters stay at zero across crash and recovery, proving the durable
    // path loses no summaries to back-pressure.
    let tel = Telemetry::new();
    let mut fs =
        Flowstream::new(REGIONS, ROUTERS, config(Parallelism::Sequential)).with_telemetry(&tel);
    install_outage(&mut fs);
    let dir = temp_dir("no-drops");
    let tier = ColdTier::create(&dir, SyncPolicy::OnSeal, tel.clone()).expect("create tier");
    fs.attach_cold_tier(tier);
    for rec in trace() {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    assert_eq!(fs.stats().dropped_summaries, 0);
    assert_eq!(fs.stats().dropped_bytes, 0);
    for (name, value) in &tel.snapshot().counters {
        if name.starts_with("flowstream.spill.dropped")
            || name.starts_with("hierarchy.spill.dropped_bytes{edge=")
        {
            assert_eq!(*value, 0, "durable run must not drop: {name}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
