//! E5 — Fig. 3b: the manager's control plane holds resource budgets under
//! data-rate shifts by retuning computing primitives online.

use megastream_datastore::{DataStore, StorageStrategy};
use megastream_flow::key::FlowKey;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_manager::requirements::{AggregationFormat, AppRequirement};
use megastream_manager::Manager;
use megastream_replication::policy::ReplicationPolicy;
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

fn requirement(store: &str, format: AggregationFormat, precision: f64) -> AppRequirement {
    AppRequirement {
        app: "test-app".into(),
        store: store.into(),
        streams: vec![],
        format,
        precision,
        timeliness: TimeDelta::from_secs(60),
    }
}

/// The full Fig. 3b cycle: requirements → placement → data → resource
/// observation → parameter change.
#[test]
fn manager_holds_budget_through_rate_surge() {
    let mut mgr = Manager::new(ReplicationPolicy::Never);
    mgr.register_requirement(requirement("edge", AggregationFormat::Flowtree, 1.0));
    let mut store = DataStore::new(
        "edge",
        StorageStrategy::RoundRobin {
            budget_bytes: 64 << 20,
        },
        TimeDelta::from_secs(60),
    );
    assert_eq!(mgr.plan_and_install(&mut [&mut store]), 1);

    let budget = 200_000usize;
    mgr.resources_mut().set_storage_budget("edge", budget);

    // Phase 1: baseline rate, manager ticks every epoch.
    let mut over_budget_epochs_after_adaptation = 0;
    let mut epochs = 0;
    for (phase, rate) in [(0u64, 100.0f64), (1, 1_000.0), (2, 100.0)] {
        let trace = FlowTraceGenerator::new(FlowTraceConfig {
            seed: 10 + phase,
            flows_per_sec: rate,
            duration: TimeDelta::from_secs(300),
            ..Default::default()
        });
        for rec in trace {
            let ts = Timestamp::from_micros(phase * 300_000_000 + rec.ts.as_micros());
            let mut shifted = rec;
            shifted.ts = ts;
            store.ingest_flow(&"r0".into(), &shifted, ts);
            if store.epoch_due(ts) {
                store.rotate_epoch(ts);
                mgr.tick(&mut [&mut store], &[rate]);
                epochs += 1;
                // After the manager acted, the live footprint must be
                // within ~2× of budget even mid-surge (the controller is
                // allowed one epoch of slack to converge).
                if store.live_footprint() > budget * 2 {
                    over_budget_epochs_after_adaptation += 1;
                }
            }
        }
    }
    assert!(epochs >= 12, "expected ≥12 epochs, got {epochs}");
    assert!(
        over_budget_epochs_after_adaptation <= 2,
        "{over_budget_epochs_after_adaptation} epochs left the budget violated"
    );
    // The data kept flowing: the store still answers queries.
    assert!(store.stats().flows > 0);
    assert!(
        store
            .flow_score(
                &FlowKey::root(),
                megastream_flow::time::TimeWindow::starting_at(
                    Timestamp::ZERO,
                    TimeDelta::from_secs(900)
                )
            )
            .value()
            > 0
    );
}

/// Decision (b)/(c): a new application requirement triggers new installs
/// at the right store with the right parameters; unregistering removes the
/// need.
#[test]
fn requirement_changes_reconfigure_stores() {
    let mut mgr = Manager::new(ReplicationPolicy::Never);
    let mut edge = DataStore::new(
        "edge",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(60),
    );
    let mut core = DataStore::new(
        "core",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(60),
    );
    mgr.register_requirement(requirement("edge", AggregationFormat::Flowtree, 0.5));
    mgr.register_requirement(requirement("core", AggregationFormat::TopFlows, 0.25));
    mgr.plan_and_install(&mut [&mut edge, &mut core]);
    assert_eq!(edge.aggregator_count(), 1);
    assert_eq!(core.aggregator_count(), 1);

    // A second app raises the precision requirement at the edge; replan.
    let mut req = requirement("edge", AggregationFormat::Flowtree, 1.0);
    req.app = "second-app".into();
    mgr.register_requirement(req);
    mgr.plan_and_install(&mut [&mut edge, &mut core]);
    assert_eq!(edge.aggregator_count(), 1, "same format: one aggregator");

    // All apps leave: the plan empties.
    mgr.unregister_app("test-app");
    mgr.unregister_app("second-app");
    mgr.plan_and_install(&mut [&mut edge, &mut core]);
    assert_eq!(edge.aggregator_count(), 0);
    assert_eq!(core.aggregator_count(), 0);
}

/// The manager tracks utilization and flags overloaded stores.
#[test]
fn overload_visibility() {
    let mut mgr = Manager::new(ReplicationPolicy::Never);
    mgr.register_requirement(requirement("s", AggregationFormat::Flowtree, 1.0));
    let mut store = DataStore::new(
        "s",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(60),
    );
    mgr.plan_and_install(&mut [&mut store]);
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        flows_per_sec: 500.0,
        duration: TimeDelta::from_secs(30),
        ..Default::default()
    }) {
        store.ingest_flow(&"r".into(), &rec, rec.ts);
    }
    mgr.resources_mut().set_storage_budget("s", 1_000);
    mgr.resources_mut().observe_store(&store, 500.0);
    assert!(mgr.resources().utilization("s") > 1.0);
    assert_eq!(mgr.resources().overloaded_stores(), vec!["s"]);
}
