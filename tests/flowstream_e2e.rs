//! E7 — Fig. 5 end-to-end: Flowstream accuracy against the exact baseline.

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream_flow::key::{FeatureSet, FlowKey};
use megastream_flow::score::ScoreKind;
use megastream_flow::time::TimeDelta;
use megastream_primitives::exact::ExactFlowTable;
use megastream_workloads::netflow::{sample_packets, FlowTraceConfig, FlowTraceGenerator};

fn trace(seed: u64, secs: u64) -> Vec<megastream_flow::record::FlowRecord> {
    FlowTraceGenerator::new(FlowTraceConfig {
        seed,
        flows_per_sec: 200.0,
        duration: TimeDelta::from_secs(secs),
        ..Default::default()
    })
    .collect()
}

#[test]
fn region_totals_are_exact() {
    let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
    let trace = trace(3, 120);
    let total: u64 = trace.iter().map(|r| r.packets).sum();
    for r in &trace {
        fs.ingest_round_robin(r);
    }
    fs.finish();
    let mut sum = 0;
    for g in 0..2 {
        sum += fs
            .query(&format!(
                "SELECT QUERY FROM ALL WHERE location = \"region-{g}\""
            ))
            .unwrap()
            .rows[0]
            .score;
    }
    // Root-level mass is conserved through trees, merges and exports.
    assert_eq!(sum, total);
}

#[test]
fn prefix_queries_close_to_exact_under_compression() {
    let trace = trace(5, 120);
    let mut exact = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
    for r in &trace {
        exact.observe(r);
    }
    let mut fs = Flowstream::new(
        1,
        2,
        FlowstreamConfig {
            tree_capacity: 2048, // tight enough that compression is active
            ..Default::default()
        },
    );
    for r in &trace {
        fs.ingest_round_robin(r);
    }
    fs.finish();

    // /8-level queries: Flowtree never overestimates, and on skewed
    // traffic the heavy prefixes stay accurate.
    let mut checked = 0;
    for octet in 1..=255u8 {
        let prefix: megastream_flow::addr::Prefix = format!("{octet}.0.0.0/8").parse().unwrap();
        let truth = exact
            .query(&FlowKey::root().with_src_prefix(prefix))
            .value();
        if truth == 0 {
            continue;
        }
        let est = fs
            .query(&format!(
                "SELECT QUERY FROM ALL WHERE src_ip = {octet}.0.0.0/8 AND location = \"region-0\""
            ))
            .unwrap()
            .rows[0]
            .score;
        assert!(est <= truth, "overestimate at /{octet}: {est} > {truth}");
        // Truly heavy prefixes (>5 % of all traffic) must survive
        // compression with good recall; the long tail may legitimately be
        // folded into coarser generalizations.
        if truth > exact.total().value() / 20 {
            let recall = est as f64 / truth as f64;
            assert!(recall > 0.5, "heavy prefix {octet}/8 lost: {est}/{truth}");
        }
        checked += 1;
    }
    assert!(checked >= 3, "trace should cover several /8s");
}

#[test]
fn top_k_recall_against_exact() {
    let trace = trace(9, 60);
    let mut exact = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
    for r in &trace {
        exact.observe(r);
    }
    let mut fs = Flowstream::new(
        1,
        1,
        FlowstreamConfig {
            tree_capacity: 2048,
            ..Default::default()
        },
    );
    for r in &trace {
        fs.ingest(0, 0, r);
    }
    fs.finish();
    let result = fs
        .query("SELECT TOPK 10 FROM ALL WHERE location = \"region-0\"")
        .unwrap();
    // Every reported top generalized flow's score must be dominated by the
    // true total, and the true top exact flow must be covered by some
    // reported flow.
    let (true_top_key, true_top_score) = exact.top_k(1)[0];
    let covered = result.rows.iter().any(|row| {
        row.key
            .map(|k| k.contains(&true_top_key) && row.score >= true_top_score.value())
            .unwrap_or(false)
    });
    assert!(covered, "true top flow not covered: {result}");
}

#[test]
fn e10_sampling_preserves_heavy_hitter_shape() {
    // The paper: "the input data is often heavily sampled prior to
    // ingestion … it allows us to distinguish heavy hitters from
    // non-popular flows".
    let full = trace(11, 300);
    let sampled = sample_packets(full.clone(), 100, 5);

    let mut exact_full = ExactFlowTable::new(FeatureSet::SRC_DST_IP, ScoreKind::Packets);
    for r in &full {
        exact_full.observe(r);
    }
    let mut fs = Flowstream::new(1, 1, FlowstreamConfig::default());
    for r in &sampled {
        fs.ingest(0, 0, r);
    }
    fs.finish();

    // The true heaviest /8 source should still be the heaviest under
    // 1:100 sampling (scores scale by ~1/100).
    let mut best: (u8, u64) = (0, 0);
    for octet in 1..=255u8 {
        let p: megastream_flow::addr::Prefix = format!("{octet}.0.0.0/8").parse().unwrap();
        let t = exact_full
            .query(&FlowKey::root().with_src_prefix(p))
            .value();
        if t > best.1 {
            best = (octet, t);
        }
    }
    let est_best = fs
        .query(&format!(
            "SELECT QUERY FROM ALL WHERE src_ip = {}.0.0.0/8",
            best.0
        ))
        .unwrap()
        .rows[0]
        .score;
    // Scaled-up estimate within 2× of truth (heavy sampling, heavy flow).
    let scaled = est_best * 100;
    let ratio = scaled as f64 / best.1 as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "sampled estimate off: {scaled} vs {} (ratio {ratio})",
        best.1
    );
}

#[test]
fn cross_time_merge_equals_sum_of_epochs() {
    let mut fs = Flowstream::new(1, 1, FlowstreamConfig::default());
    for r in trace(13, 180) {
        fs.ingest(0, 0, &r);
    }
    fs.finish();
    let all = fs
        .query("SELECT QUERY FROM ALL WHERE location = \"region-0\"")
        .unwrap()
        .rows[0]
        .score;
    let mut pieces = 0;
    for (a, b) in [(0u64, 60u64), (60, 120), (120, 180)] {
        pieces += fs
            .query(&format!(
                "SELECT QUERY FROM [{a}, {b}) WHERE location = \"region-0\""
            ))
            .unwrap()
            .rows[0]
            .score;
    }
    assert_eq!(all, pieces);
}
