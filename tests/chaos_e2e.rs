//! Chaos end-to-end: a seeded fault plan takes a region uplink down
//! mid-run and the deployment must degrade gracefully — a `Partial`
//! query answers with completeness < 1 while `FailFast` errors, spilled
//! summaries re-aggregate after recovery so totals converge to the
//! no-fault run exactly, every retry/spill/flush is counted, and two
//! same-seed runs are bit-identical.

use megastream::flowstream::FlowstreamError;
use megastream::{DegradationPolicy, Flowstream, FlowstreamConfig};
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowdb::QueryResult;
use megastream_netsim::topology::{Network, NodeKind, TransferError};
use megastream_netsim::FaultPlan;
use megastream_telemetry::Telemetry;
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

const QUERY: &str = "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8";
const OUTAGE_FROM: u64 = 60;
const OUTAGE_UNTIL: u64 = 180;

fn workload() -> FlowTraceGenerator {
    FlowTraceGenerator::new(FlowTraceConfig {
        seed: 77,
        flows_per_sec: 60.0,
        duration: TimeDelta::from_mins(5),
        ..Default::default()
    })
}

fn deployment() -> Flowstream {
    Flowstream::new(
        3,
        2,
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(30),
            ..Default::default()
        },
    )
}

/// Everything a chaos run observes; compared across same-seed runs.
#[derive(Debug, PartialEq)]
struct ChaosObservation {
    unreachable_mid_outage: Vec<String>,
    partial_mid_outage: QueryResult,
    /// The locations [`FlowstreamError::Unreachable`] reported mid-outage.
    failfast_refused: Vec<String>,
    final_result: QueryResult,
    /// Post-recovery result per region location (the authoritative copies).
    final_region_results: Vec<QueryResult>,
    stats: megastream::flowstream::FlowstreamStats,
}

/// One location-restricted query per region.
fn region_results(fs: &Flowstream) -> Vec<QueryResult> {
    (0..fs.regions())
        .map(|g| {
            let q = format!(
                "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8 AND location = region-{g}"
            );
            fs.query(&q).expect("region location is indexed")
        })
        .collect()
}

/// Runs the faulted deployment: region 1's uplink to the NOC is down for
/// `[OUTAGE_FROM, OUTAGE_UNTIL)` seconds; mid-outage both degradation
/// policies are probed, then ingest continues past recovery.
fn run_chaos(seed: u64) -> ChaosObservation {
    let tel = Telemetry::new();
    let mut fs = deployment().with_telemetry(&tel);
    let mut plan = FaultPlan::seeded(seed);
    plan.link_down(
        fs.region_node(1),
        fs.noc_node(),
        Timestamp::from_secs(OUTAGE_FROM),
        Timestamp::from_secs(OUTAGE_UNTIL),
    );
    fs.network_mut().install_faults(plan);

    let mut mid = None;
    for rec in workload() {
        // Probe once, mid-outage, before the record that crosses 120 s
        // rotates the epoch (the stream clock still reads < 120 s).
        if mid.is_none() && rec.ts >= Timestamp::from_secs(120) {
            let unreachable: Vec<String> = fs.unreachable_locations().into_iter().collect();
            let partial = fs
                .query_with_policy(QUERY, DegradationPolicy::Partial)
                .expect("Partial degradation answers from reachable locations");
            let failfast = match fs.query_with_policy(QUERY, DegradationPolicy::FailFast) {
                Err(FlowstreamError::Unreachable { locations }) => locations,
                other => panic!("FailFast must refuse a partial answer, got {other:?}"),
            };
            mid = Some((unreachable, partial, failfast));
        }
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    let (unreachable_mid_outage, partial_mid_outage, failfast_refused) =
        mid.expect("workload extends past the probe point");
    let final_result = fs.query(QUERY).expect("uplink recovered before finish");
    ChaosObservation {
        unreachable_mid_outage,
        partial_mid_outage,
        failfast_refused,
        final_result,
        final_region_results: region_results(&fs),
        stats: fs.stats(),
    }
}

/// The same deployment and workload with no faults installed.
fn run_reference() -> (Vec<QueryResult>, megastream::flowstream::FlowstreamStats) {
    let mut fs = deployment();
    for rec in workload() {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    (region_results(&fs), fs.stats())
}

#[test]
fn partial_query_degrades_while_failfast_refuses() {
    let obs = run_chaos(42);
    assert_eq!(
        obs.unreachable_mid_outage,
        vec!["region-1".to_string()],
        "only the severed region is unreachable"
    );
    let completeness = obs.partial_mid_outage.completeness;
    assert!(
        !completeness.is_complete(),
        "mid-outage answer must be partial, got {completeness}"
    );
    assert_eq!(
        completeness.total - completeness.reached,
        1,
        "exactly one location (region-1) is skipped"
    );
    assert!(completeness.fraction() < 1.0);
    assert_eq!(obs.failfast_refused, vec!["region-1".to_string()]);
}

#[test]
fn spilled_summaries_reaggregate_to_exact_no_fault_totals() {
    let obs = run_chaos(42);
    let (reference, ref_stats) = run_reference();
    // The outage suppressed part of the mid-run answer…
    let mid_total: u64 = obs.partial_mid_outage.rows.iter().map(|r| r.score).sum();
    let final_total: u64 = obs.final_result.rows.iter().map(|r| r.score).sum();
    assert!(mid_total < final_total);
    assert!(obs.final_result.completeness.is_complete());
    // …but after recovery the flushed spill re-aggregates each region's
    // authoritative copy to the exact rows of the run that never saw a
    // fault. (The `noc` roll-up buckets late deliveries into different
    // 240 s epochs, so convergence is asserted on the region locations.)
    for (g, (got, want)) in obs
        .final_region_results
        .iter()
        .zip(reference.iter())
        .enumerate()
    {
        assert_eq!(got.rows, want.rows, "region-{g} diverged from reference");
    }
    assert_eq!(
        obs.stats.flows, ref_stats.flows,
        "no flow records were lost to the outage"
    );
}

#[test]
fn fault_handling_is_fully_accounted() {
    let obs = run_chaos(42);
    assert!(obs.stats.export_retries > 0, "retries: {:?}", obs.stats);
    assert!(obs.stats.spilled_summaries > 0, "spills: {:?}", obs.stats);
    assert!(
        obs.stats.flushed_summaries > 0,
        "every spill flushes after recovery: {:?}",
        obs.stats
    );
    assert_eq!(
        obs.stats.dropped_summaries, 0,
        "a 2-minute outage fits the spill budget"
    );
    assert_eq!(obs.stats.partial_queries, 1);
}

#[test]
fn same_seed_runs_are_identical() {
    assert_eq!(run_chaos(42), run_chaos(42));
}

/// The export-retry backoff carries deterministic seeded jitter (so real
/// deployments don't retry in lock-step). Same seed → bit-identical run;
/// a different seed shifts retry *timing* but never the data: region
/// results and ingested-flow counts still converge exactly.
#[test]
fn jittered_backoff_is_seed_deterministic() {
    let run = |jitter_seed: u64| {
        let mut fs = Flowstream::new(
            3,
            2,
            FlowstreamConfig {
                epoch_len: TimeDelta::from_secs(30),
                export_jitter_seed: jitter_seed,
                ..Default::default()
            },
        );
        let mut plan = FaultPlan::seeded(7);
        plan.link_down(
            fs.region_node(1),
            fs.noc_node(),
            Timestamp::from_secs(OUTAGE_FROM),
            Timestamp::from_secs(OUTAGE_UNTIL),
        );
        fs.network_mut().install_faults(plan);
        for rec in workload() {
            fs.ingest_round_robin(&rec);
        }
        fs.finish();
        (region_results(&fs), fs.stats())
    };
    let (rows_a, stats_a) = run(11);
    let (rows_b, stats_b) = run(11);
    assert_eq!(rows_a, rows_b, "same jitter seed must be bit-identical");
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.export_retries > 0, "the outage forces retries");
    let (rows_c, stats_c) = run(99);
    assert_eq!(rows_a, rows_c, "jitter shifts timing, never data");
    assert_eq!(stats_a.flows, stats_c.flows);
}

/// Fatal routing errors must surface, not be retried or spilled: an
/// unknown node and a disconnected island are programming/topology errors.
#[test]
fn fatal_transfer_errors_are_not_swallowed() {
    let mut net = Network::new();
    let a = net.add_node("a", NodeKind::DataStore);
    let island = net.add_node("island", NodeKind::DataStore);
    // An id minted by a larger network is out of range here.
    let mut other = Network::new();
    other.add_node("x", NodeKind::DataStore);
    other.add_node("y", NodeKind::DataStore);
    let phantom = other.add_node("z", NodeKind::DataStore);
    assert_eq!(
        net.transfer(a, phantom, 10, Timestamp::ZERO),
        Err(TransferError::UnknownNode(phantom))
    );
    assert_eq!(
        net.transfer(a, island, 10, Timestamp::ZERO),
        Err(TransferError::NoRoute(a, island))
    );
}
