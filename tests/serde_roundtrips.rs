//! Serialization round-trips for everything that crosses the wire between
//! data stores — summaries of every kind, FlowQL queries, and replication
//! reports. If these break, hierarchy export and replication silently
//! corrupt data, so they get their own integration tests.

use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
use megastream_datastore::{AggregatorSpec, StorageStrategy};
use megastream_flow::key::FeatureSet;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::ScoreKind;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::FlowtreeConfig;

fn rec(i: u32) -> FlowRecord {
    FlowRecord::builder()
        .ts(Timestamp::from_secs(i as u64))
        .proto(6)
        .src(format!("10.0.{}.{}", i / 250, i % 250).parse().unwrap(), 40_000)
        .dst("1.1.1.1".parse().unwrap(), 443)
        .packets(1 + i as u64 % 9)
        .bytes(100 * (1 + i as u64 % 9))
        .build()
}

fn window() -> TimeWindow {
    TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(60))
}

/// Builds one summary of each kind via real aggregator instances.
fn all_summaries() -> Vec<Summary> {
    let specs = vec![
        AggregatorSpec::Flowtree(FlowtreeConfig::default().with_capacity(128)),
        AggregatorSpec::SampledSeries { seed: 1, rate: 0.5 },
        AggregatorSpec::TimeBins {
            width: TimeDelta::from_secs(1),
            seed: 1,
        },
        AggregatorSpec::TopFlows {
            capacity: 16,
            features: FeatureSet::FIVE_TUPLE,
            score_kind: ScoreKind::Packets,
        },
        AggregatorSpec::ExactFlows {
            features: FeatureSet::SRC_DST_IP,
            score_kind: ScoreKind::Bytes,
        },
        AggregatorSpec::RawRing {
            capacity: 32,
            score_kind: ScoreKind::Packets,
        },
    ];
    specs
        .into_iter()
        .map(|spec| {
            let mut inst = spec.build();
            for i in 0..100u32 {
                inst.ingest_flow(&rec(i), Timestamp::from_secs(i as u64));
                inst.ingest_scalar(60.0 + i as f64 / 10.0, Timestamp::from_secs(i as u64));
            }
            inst.snapshot(window())
        })
        .collect()
}

#[test]
fn every_summary_kind_roundtrips_through_json() {
    for summary in all_summaries() {
        let kind = summary.kind();
        let stored = StoredSummary::new(
            "region-0/agg0",
            window(),
            summary,
            Lineage::from_source("router-0"),
        );
        let json = serde_json::to_string(&stored)
            .unwrap_or_else(|e| panic!("{kind} failed to serialize: {e}"));
        let back: StoredSummary = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("{kind} failed to deserialize: {e}"));
        assert_eq!(back.summary.kind(), kind);
        assert_eq!(back.window, stored.window);
        assert_eq!(back.lineage, stored.lineage);
        match (&stored.summary, &back.summary) {
            // Integer-valued summaries must round-trip bit-exactly.
            (Summary::Flowtree(_), _)
            | (Summary::TopFlows(_), _)
            | (Summary::Exact(_), _)
            | (Summary::Raw { .. }, _) => {
                assert_eq!(stored, back, "{kind} round-trip changed the summary");
            }
            // Float-bearing summaries: JSON float printing may differ in
            // the last ULP, so compare the statistics they answer with.
            (Summary::Bins(a), Summary::Bins(b)) => {
                assert_eq!(a.len(), b.len());
                let (sa, sb) = (a.aggregate(window()), b.aggregate(window()));
                assert_eq!(sa.count(), sb.count());
                assert!((sa.sum() - sb.sum()).abs() / sa.sum().abs().max(1.0) < 1e-9);
            }
            (Summary::Series(a), Summary::Series(b)) => {
                assert_eq!(a.len(), b.len());
                let (ca, cb) = (a.estimated_count(window()), b.estimated_count(window()));
                assert!((ca - cb).abs() < 1e-6, "{ca} vs {cb}");
            }
            (a, b) => panic!("kind mismatch: {} vs {}", a.kind(), b.kind()),
        }
    }
}

#[test]
fn roundtripped_flowtree_answers_identically() {
    use megastream_flow::key::FlowKey;
    let mut store = megastream_datastore::DataStore::new(
        "s",
        StorageStrategy::RoundRobin { budget_bytes: 1 << 20 },
        TimeDelta::from_secs(60),
    );
    store.install_aggregator(AggregatorSpec::Flowtree(
        FlowtreeConfig::default().with_capacity(64),
    ));
    for i in 0..500u32 {
        store.ingest_flow(&"r".into(), &rec(i), Timestamp::from_secs(i as u64 / 10));
    }
    let exported = store.rotate_epoch(Timestamp::from_secs(60));
    let json = serde_json::to_string(&exported[0]).unwrap();
    let back: StoredSummary = serde_json::from_str(&json).unwrap();
    let q = FlowKey::root().with_src_prefix("10.0.0.0/8".parse().unwrap());
    assert_eq!(
        exported[0].summary.flow_score(&q),
        back.summary.flow_score(&q)
    );
}

#[test]
fn flowql_query_roundtrips() {
    let q = megastream_flowdb::parse(
        "SELECT TOPK 7 FROM [0, 60), [120, 180) \
         WHERE src_ip = 10.0.0.0/8 AND dst_port = 53 AND location = \"region-0\" \
         GROUP BY location",
    )
    .unwrap();
    let json = serde_json::to_string(&q).unwrap();
    let back: megastream_flowdb::Query = serde_json::from_str(&json).unwrap();
    assert_eq!(q, back);
    assert!(back.group_by_location);
}

#[test]
fn replay_report_roundtrips() {
    use megastream_replication::policy::ReplicationPolicy;
    use megastream_replication::simulator::{replay, Access};
    let trace: Vec<Access> = (0..10)
        .map(|i| Access {
            partition: 0,
            ts: Timestamp::from_secs(i),
            result_bytes: 1_000,
        })
        .collect();
    let report = replay(&trace, &[5_000], &ReplicationPolicy::BreakEven { factor: 1.0 });
    let json = serde_json::to_string(&report).unwrap();
    let back: megastream_replication::ReplayReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    assert_eq!(report.competitive_ratio(), back.competitive_ratio());
}

#[test]
fn query_results_roundtrip() {
    use megastream_flowdb::FlowDb;
    use megastream_flowtree::Flowtree;
    let mut db = FlowDb::new();
    let mut tree = Flowtree::new(FlowtreeConfig::default());
    for i in 0..50u32 {
        tree.observe(&rec(i));
    }
    db.insert("region-0", window(), tree);
    let result = db
        .execute(&megastream_flowdb::parse("SELECT TOPK 3 FROM ALL").unwrap())
        .unwrap();
    let json = serde_json::to_string(&result).unwrap();
    let back: megastream_flowdb::QueryResult = serde_json::from_str(&json).unwrap();
    assert_eq!(result, back);
}
