//! Profiling and cost-accounting end to end (PR 8).
//!
//! Three claims are pinned here. First, the scoped-activity profiler
//! attached to a live deployment produces a well-formed collapsed-stack
//! export: every line is `path count` with positive counts, no empty
//! frames, and the known pipeline roots present. Second, the bounded
//! heavy-query log ranks queries by *deterministic* work units, so a
//! deliberately expensive full-fleet drilldown lands on top of a batch of
//! repeated cheap point queries — regardless of machine speed. Third, the
//! `completeness-burn` SLO rule flips out of Healthy exactly once during a
//! chaos outage (multi-window burn rates cannot flap on blips) and
//! recovers to Healthy after the uplink heals.

use megastream::ops::OpsPlane;
use megastream::{DegradationPolicy, Flowstream, FlowstreamConfig};
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_netsim::FaultPlan;
use megastream_telemetry::{HealthStatus, Profiler, Telemetry};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

fn profiled_deployment() -> (Flowstream, Profiler) {
    let profiler = Profiler::new();
    let mut fs = Flowstream::new(
        2,
        2,
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(30),
            ..Default::default()
        },
    )
    .with_profiler(&profiler);
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 5,
        flows_per_sec: 150.0,
        duration: TimeDelta::from_mins(3),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    (fs, profiler)
}

#[test]
fn collapsed_stack_export_is_wellformed() {
    let (fs, _profiler) = profiled_deployment();
    fs.query("SELECT TOPK 3 FROM ALL").expect("query");
    let snap = fs.profile_snapshot();
    let collapsed = snap.render_collapsed();
    assert!(!collapsed.is_empty(), "a profiled run must record activity");
    for line in collapsed.lines() {
        let (path, count) = line.rsplit_once(' ').expect("line must be `path count`");
        let count: u64 = count.parse().expect("count must be an integer");
        assert!(count > 0, "exported counts are exclusive micros > 0");
        assert!(!path.is_empty(), "path must not be empty");
        for frame in path.split(';') {
            assert!(!frame.is_empty(), "no empty frames in {path:?}");
        }
    }
    // The known pipeline roots are present, and child activities appear
    // under their parents, never as roots.
    let paths: Vec<&str> = snap.activities.iter().map(|a| a.path.as_str()).collect();
    assert!(paths.contains(&"flowstream.ingest"));
    assert!(paths.contains(&"flowstream.rotate"));
    assert!(paths.contains(&"flowstream.query;parse"));
    assert!(!paths.contains(&"parse"), "parse only runs inside a query");
}

#[test]
fn heavy_query_log_ranks_expensive_drilldown_first() {
    let (fs, _profiler) = profiled_deployment();
    // A batch of cheap point queries: one location, one 30-second window.
    let cheap = "SELECT QUERY FROM [0, 30) WHERE location = \"region-0\" AND src_ip = 10.0.0.0/8";
    for _ in 0..3 {
        fs.query(cheap).expect("cheap query");
    }
    // One deliberately expensive query: a drilldown that visits every
    // location, every window, and returns a row per child key.
    let expensive = "SELECT DRILLDOWN FROM ALL";
    let result = fs.query(expensive).expect("expensive query");
    assert!(result.cost.work_units() > 0, "cost must be populated");
    assert!(result.cost.locations > 1 && result.cost.summaries > 1);

    let top = fs.heavy_queries(2);
    assert_eq!(
        top.first().map(|(q, _)| q.as_str()),
        Some(expensive),
        "the full-fleet drilldown must rank first: {top:?}"
    );
    // The ranking weight is deterministic work, not wall-clock: the top
    // entry's work units dominate the repeated cheap query's total.
    let cheap_total = top
        .iter()
        .find(|(q, _)| q == cheap)
        .map(|(_, w)| *w)
        .unwrap_or(0);
    assert!(top[0].1 > cheap_total, "work ranking must be strict");
}

#[test]
fn query_cost_reaches_trace_annotations() {
    use megastream_telemetry::Tracer;
    let tracer = Tracer::new();
    let (mut fs, _profiler) = profiled_deployment();
    fs.set_tracer(&tracer);
    fs.query("SELECT TOPK 3 FROM ALL").expect("query");
    let spans = tracer.snapshot();
    let root = spans
        .spans
        .iter()
        .find(|s| s.name == "flowstream.query")
        .expect("traced query root");
    let cost = root
        .attrs
        .iter()
        .find(|(k, _)| k == "cost")
        .map(|(_, v)| v.clone())
        .expect("root span must carry a cost annotation");
    assert!(
        cost.contains("location"),
        "cost text names locations: {cost}"
    );
}

#[test]
fn completeness_burn_flips_once_during_outage_and_recovers() {
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(3, 2, FlowstreamConfig::default()).with_telemetry(&tel);
    let mut plan = FaultPlan::seeded(7);
    plan.link_down(
        fs.region_node(1),
        fs.noc_node(),
        Timestamp::from_secs(90),
        Timestamp::from_secs(210),
    );
    fs.network_mut().install_faults(plan);
    let mut ops = OpsPlane::standard(&tel).expect("telemetry is enabled");

    let mut last_query_s = 0u64;
    let mut last_end = Timestamp::ZERO;
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 7,
        flows_per_sec: 300.0,
        duration: TimeDelta::from_mins(5),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&rec);
        last_end = last_end.max(rec.ts);
        if ops.tick(rec.ts) {
            let s = rec.ts.as_micros() / 1_000_000;
            // A standing query keeps the completeness ratio populated;
            // Partial answers keep flowing during the outage.
            if s >= last_query_s + 5 {
                last_query_s = s;
                let _ = fs.query_with_policy("SELECT TOPK 3 FROM ALL", DegradationPolicy::Partial);
            }
        }
    }
    fs.finish();
    for s in 1..=30u64 {
        ops.force_tick(last_end + TimeDelta::from_secs(s));
    }

    let burn_alerts: Vec<_> = ops
        .health()
        .alerts()
        .iter()
        .filter(|a| a.rule == "completeness-burn")
        .collect();
    assert!(
        !burn_alerts.is_empty(),
        "the outage must trip the completeness burn rule; alerts: {:?}",
        ops.health().alerts()
    );
    // Exactly one departure from Healthy over the whole run: the rule
    // trips once for the outage and does not flap on per-window noise.
    let departures = burn_alerts
        .iter()
        .filter(|a| a.from == HealthStatus::Healthy)
        .count();
    assert_eq!(departures, 1, "burn rule flapped: {burn_alerts:?}");
    assert!(
        burn_alerts.iter().any(|a| a.to >= HealthStatus::Degraded),
        "the rule must reach at least Degraded during the outage"
    );
    // And it heals: the short window clears soon after the uplink returns.
    assert_eq!(
        ops.health().rule_status("completeness-burn"),
        HealthStatus::Healthy,
        "rule must recover after the outage"
    );
    // The latency SLO never burned — simulated queries are fast.
    assert_eq!(
        ops.health().rule_status("latency-burn"),
        HealthStatus::Healthy
    );
}
