//! End-to-end causal tracing: a traced FlowQL query must yield one
//! connected span tree covering fan-out and merge, a traced `pump` must
//! link child exports to parent absorption across hierarchy levels, the
//! Chrome export must be valid JSON, and concurrent emitters must never
//! lose or cross-link spans.

use std::collections::HashMap;

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream::hierarchy::StoreHierarchy;
use megastream_datastore::store::DataStore;
use megastream_datastore::{AggregatorSpec, StorageStrategy};
use megastream_flow::record::FlowRecord;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowtree::FlowtreeConfig;
use megastream_manager::manager::Manager;
use megastream_netsim::topology::{LinkSpec, Network, NodeKind};
use megastream_replication::policy::ReplicationPolicy;
use megastream_telemetry::json::Json;
use megastream_telemetry::{SpanId, SpanRecord, TraceSnapshot, Tracer};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

fn traced_deployment() -> (Flowstream, Tracer) {
    let tracer = Tracer::new();
    let mut fs = Flowstream::new(
        2,
        2,
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(30),
            ..Default::default()
        },
    )
    .with_tracer(&tracer);
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 11,
        flows_per_sec: 100.0,
        duration: TimeDelta::from_mins(2),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    (fs, tracer)
}

/// Every span of `trace` must reach the root by walking parent links.
fn assert_connected(spans: &[&SpanRecord]) {
    let by_id: HashMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, *s)).collect();
    let roots: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    let root_id = roots[0].id;
    for span in spans {
        let mut cursor = *span;
        let mut hops = 0;
        while let Some(parent) = cursor.parent {
            cursor = by_id
                .get(&parent)
                .unwrap_or_else(|| panic!("span {:?} has dangling parent {parent:?}", span.id));
            hops += 1;
            assert!(hops <= spans.len(), "parent cycle at {:?}", span.id);
        }
        assert_eq!(cursor.id, root_id, "span {:?} not under the root", span.id);
    }
}

#[test]
fn query_trace_has_one_fanout_span_per_contacted_location_plus_merge() {
    let (fs, tracer) = traced_deployment();
    // No location restriction: the query contacts every indexed location
    // (both region stores and the NOC store).
    fs.query("SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8")
        .expect("traced query");
    let snap = tracer.snapshot();
    let traces = snap.trace_ids();
    assert_eq!(traces.len(), 1, "one query → one trace");
    let spans = snap.trace(traces[0]);
    assert_connected(&spans);

    let root = spans.iter().find(|s| s.parent.is_none()).unwrap();
    assert_eq!(root.name, "flowstream.query");
    assert!(root.attr("flowql").unwrap().contains("SELECT QUERY"));

    // One fan-out span per contacted location, each a child of the root
    // and annotated with the summaries + bytes it contributed.
    let mut fanout_locations: Vec<&str> = spans
        .iter()
        .filter(|s| s.name == "fanout")
        .map(|s| {
            assert_eq!(s.parent, Some(root.id));
            assert!(s.records > 0, "fanout without payload records");
            assert!(s.bytes > 0, "fanout without payload bytes");
            s.attr("location").expect("fanout location attr")
        })
        .collect();
    fanout_locations.sort_unstable();
    let expected: Vec<&str> = fs.flowdb().locations();
    assert_eq!(
        fanout_locations, expected,
        "fanout must cover every location"
    );

    // Exactly one merge span, also under the root, consuming what the
    // fan-outs produced.
    let merges: Vec<_> = spans.iter().filter(|s| s.name == "merge").collect();
    assert_eq!(merges.len(), 1);
    assert_eq!(merges[0].parent, Some(root.id));
    let fanned: u64 = spans
        .iter()
        .filter(|s| s.name == "fanout")
        .map(|s| s.records)
        .sum();
    assert_eq!(
        merges[0].records, fanned,
        "merge consumes all fanned-out summaries"
    );
    assert!(spans.iter().any(|s| s.name == "parse"));
    assert!(spans.iter().any(|s| s.name == "run"));
}

#[test]
fn explain_analyze_works_without_an_attached_tracer() {
    let mut fs = Flowstream::new(1, 2, FlowstreamConfig::default());
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 5,
        flows_per_sec: 100.0,
        duration: TimeDelta::from_mins(1),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    assert!(!fs.tracer().is_enabled());
    let (result, explanation) = fs.explain("SELECT TOPK 3 FROM ALL WHERE location = \"region-0\"");
    result.expect("explained query succeeds");
    for stage in ["flowstream.query", "parse", "fanout", "merge", "run"] {
        assert!(
            explanation.tree.contains(stage),
            "stage {stage} missing from explanation:\n{}",
            explanation.tree
        );
    }
    assert!(explanation.tree.contains("location=region-0"));
    // The throwaway tracer left nothing behind on the deployment.
    assert!(fs.trace_snapshot().is_empty());
}

fn hierarchy_store(name: &str, epoch_secs: u64) -> DataStore {
    let mut s = DataStore::new(
        name,
        StorageStrategy::RoundRobin {
            budget_bytes: 10 << 20,
        },
        TimeDelta::from_secs(epoch_secs),
    );
    s.install_aggregator(AggregatorSpec::Flowtree(
        FlowtreeConfig::default().with_capacity(4096),
    ));
    s
}

#[test]
fn pump_links_child_exports_to_parent_absorb_across_three_levels() {
    // leaf (60 s epochs) → mid (60 s) → root (120 s).
    let mut net = Network::new();
    let root_n = net.add_node("root", NodeKind::DataStore);
    let mid_n = net.add_node("mid", NodeKind::DataStore);
    let leaf_n = net.add_node("leaf", NodeKind::DataStore);
    net.connect(leaf_n, mid_n, LinkSpec::lan_1g());
    net.connect(mid_n, root_n, LinkSpec::wan_100m());
    let tracer = Tracer::new();
    let mut h = StoreHierarchy::new(net);
    h.set_tracer(&tracer);
    let root = h.add_root(hierarchy_store("root", 120), root_n);
    let mid = h.add_child(hierarchy_store("mid", 60), mid_n, root);
    let leaf = h.add_child(hierarchy_store("leaf", 60), leaf_n, mid);
    let rec = FlowRecord::builder()
        .proto(6)
        .src("10.0.0.1".parse().unwrap(), 5000)
        .dst("1.1.1.1".parse().unwrap(), 443)
        .packets(9)
        .build();
    h.ingest_flow(leaf, &"r".into(), &rec, Timestamp::from_secs(10));
    let stats = h.pump(Timestamp::from_secs(60)).unwrap();
    assert!(stats.exported_summaries > 0);

    let snap = tracer.snapshot();
    let traces = snap.trace_ids();
    assert_eq!(traces.len(), 1, "one pump → one trace");
    let spans = snap.trace(traces[0]);
    assert_connected(&spans);
    let pump_root = spans.iter().find(|s| s.parent.is_none()).unwrap();
    assert_eq!(pump_root.name, "hierarchy.pump");

    // Exports happened at both lower levels (leaf and mid rotate at 60 s);
    // each absorb span is stamped with — i.e. parented under — its export.
    let exports: Vec<_> = spans.iter().filter(|s| s.name == "export").collect();
    let absorbs: Vec<_> = spans.iter().filter(|s| s.name == "absorb").collect();
    assert_eq!(absorbs.len(), 2, "leaf→mid and mid→root links");
    let linked: HashMap<&str, &str> = absorbs
        .iter()
        .map(|a| {
            let export = exports
                .iter()
                .find(|e| Some(e.id) == a.parent)
                .expect("absorb span must be parented under an export span");
            assert_eq!(export.parent, Some(pump_root.id));
            assert_eq!(a.records, export.records, "absorb covers the whole export");
            (export.attr("store").unwrap(), a.attr("store").unwrap())
        })
        .collect();
    assert_eq!(linked.get("leaf"), Some(&"mid"));
    assert_eq!(linked.get("mid"), Some(&"root"));
    // Depth annotations survive: leaf is level 2, mid is level 1.
    let by_store: HashMap<&str, &SpanRecord> = exports
        .iter()
        .map(|e| (e.attr("store").unwrap(), **e))
        .collect();
    assert_eq!(by_store["leaf"].attr("level"), Some("2"));
    assert_eq!(by_store["mid"].attr("level"), Some("1"));
}

#[test]
fn replication_decisions_are_stamped() {
    let mut net = Network::new();
    let owner = net.add_node("owner", NodeKind::DataStore);
    let remote = net.add_node("remote", NodeKind::DataStore);
    net.connect(owner, remote, LinkSpec::wan_100m());
    let tracer = Tracer::new();
    let mut mgr = Manager::new(ReplicationPolicy::BreakEven { factor: 1.0 });
    mgr.set_tracer(&tracer);
    let p = mgr.replication_mut().register_partition(owner, 1_000);
    for i in 0..5u64 {
        mgr.replication_mut()
            .on_access(p, remote, 300, &mut net, Timestamp::from_secs(i))
            .unwrap();
    }
    let snap = tracer.snapshot();
    // Remote accesses 1–4 trace; accesses after replication are local hits
    // and trace nothing.
    let accesses = snap.spans_named("replication.access");
    assert_eq!(accesses.len(), 4);
    assert_eq!(snap.spans_named("ship").len(), 4);
    let replicates = snap.spans_named("replicate");
    assert_eq!(replicates.len(), 1, "the policy fired exactly once");
    let rep = replicates[0];
    assert_eq!(rep.bytes, 1_000);
    assert_eq!(rep.attr("from"), Some(owner.to_string().as_str()));
    assert_eq!(rep.attr("to"), Some(remote.to_string().as_str()));
    // The replicate span sits inside the access that triggered it.
    let parent = snap.span(rep.parent.unwrap()).unwrap();
    assert_eq!(parent.name, "replication.access");
    assert_eq!(parent.attr("partition"), Some("0"));
}

#[test]
fn chrome_export_of_a_real_query_is_valid_and_complete() {
    let (fs, tracer) = traced_deployment();
    fs.query("SELECT TOPK 3 FROM ALL WHERE location = \"region-0\"")
        .expect("traced query");
    let snap = tracer.snapshot();
    let json_text = fs.trace_chrome_json();
    let parsed = Json::parse(&json_text).expect("chrome export must parse");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), snap.spans.len(), "one event per span");
    // All events of the single trace share one timeline row (tid).
    let tids: Vec<_> = events
        .iter()
        .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(tids.iter().all(|t| *t == tids[0]));
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
}

#[test]
fn eight_threads_share_one_store_without_loss_or_cross_links() {
    const THREADS: u64 = 8;
    const ROOTS_PER_THREAD: u64 = 50;
    let tracer = Tracer::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tracer = tracer.clone();
            scope.spawn(move || {
                for i in 0..ROOTS_PER_THREAD {
                    let mut root = tracer.root("work");
                    root.annotate("thread", &t.to_string());
                    root.annotate("i", &i.to_string());
                    let child = root.child("inner");
                    let grandchild = child.child("leaf");
                    grandchild.finish();
                    child.finish();
                    root.finish();
                }
            });
        }
    });
    let snap = tracer.snapshot();
    assert_eq!(snap.dropped, 0, "store under capacity — nothing dropped");
    assert_eq!(snap.spans.len() as u64, THREADS * ROOTS_PER_THREAD * 3);
    let traces = snap.trace_ids();
    assert_eq!(traces.len() as u64, THREADS * ROOTS_PER_THREAD);
    for trace in traces {
        let spans = snap.trace(trace);
        assert_eq!(spans.len(), 3, "no lost or leaked spans in {trace:?}");
        assert_connected(&spans);
        // Stable parent ordering: creation-ordered ids, parent before
        // child within the trace.
        for span in &spans {
            if let Some(parent) = span.parent {
                assert!(parent < span.id, "parent must precede child");
                let parent = snap.span(parent).unwrap();
                assert_eq!(parent.trace, span.trace, "cross-linked trace");
            }
        }
    }
}

#[test]
fn untraced_deployment_records_no_spans() {
    let mut fs = Flowstream::new(1, 1, FlowstreamConfig::default());
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 3,
        flows_per_sec: 50.0,
        duration: TimeDelta::from_mins(1),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    fs.query("SELECT TOPK 1 FROM ALL WHERE location = \"region-0\"")
        .expect("query");
    let snap: TraceSnapshot = fs.trace_snapshot();
    assert!(snap.is_empty());
    assert_eq!(fs.trace_report(), "");
}
