//! Ops-plane end-to-end (ISSUE 6 acceptance): (a) the health model walks
//! Healthy → Degraded → Healthy across a seeded outage without flapping,
//! (b) the windowed p99 from the time-series agrees with an oracle over
//! the same recorded latencies to within one histogram bucket, and
//! (c) the sampler adds < 2 % overhead to the E11 ingest workload at the
//! default one-second cadence.

use megastream::flowstream::{DegradationPolicy, Flowstream, FlowstreamConfig};
use megastream::ops::OpsPlane;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_netsim::FaultPlan;
use megastream_telemetry::{HealthStatus, MetricSampler, SamplerConfig, Telemetry};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};
use std::sync::Arc;

const SEC: u64 = 1_000_000;
const OUTAGE_FROM: u64 = 60;
const OUTAGE_UNTIL: u64 = 180;

fn workload(seed: u64, flows_per_sec: f64, mins: u64) -> FlowTraceGenerator {
    FlowTraceGenerator::new(FlowTraceConfig {
        seed,
        flows_per_sec,
        duration: TimeDelta::from_mins(mins),
        ..Default::default()
    })
}

fn chaos_deployment(tel: &Telemetry) -> Flowstream {
    let mut fs = Flowstream::new(
        3,
        2,
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(30),
            ..Default::default()
        },
    )
    .with_telemetry(tel);
    let mut plan = FaultPlan::seeded(42);
    plan.link_down(
        fs.region_node(1),
        fs.noc_node(),
        Timestamp::from_secs(OUTAGE_FROM),
        Timestamp::from_secs(OUTAGE_UNTIL),
    );
    fs.network_mut().install_faults(plan);
    fs
}

/// (a) A seeded uplink outage drives the flowstream spill-occupancy rule
/// Healthy → Degraded while summaries buffer, and back to Healthy after
/// the post-recovery flush — exactly one transition each way (the
/// hysteresis must not flap), and the timestamps must bracket the fault
/// window.
#[test]
fn health_walks_degraded_and_back_across_outage() {
    let tel = Telemetry::new();
    let mut fs = chaos_deployment(&tel);
    let mut ops = OpsPlane::standard(&tel).expect("telemetry is enabled");

    let mut last_end = Timestamp::ZERO;
    for rec in workload(77, 60.0, 5) {
        fs.ingest_round_robin(&rec);
        last_end = last_end.max(rec.ts);
        ops.tick(rec.ts);
    }
    fs.finish();
    // Frames past the last rotation so the post-recovery flush (and the
    // transition back to Healthy) is observed.
    for s in 1..=4u64 {
        ops.force_tick(last_end + TimeDelta::from_secs(s));
    }

    let spill_alerts: Vec<_> = ops
        .health()
        .alerts()
        .iter()
        .filter(|a| a.component == "flowstream" && a.rule == "spill-occupancy")
        .cloned()
        .collect();
    assert_eq!(
        spill_alerts.len(),
        2,
        "exactly one transition each way (no flapping): {spill_alerts:?}"
    );
    assert_eq!(spill_alerts[0].from, HealthStatus::Healthy);
    assert_eq!(spill_alerts[0].to, HealthStatus::Degraded);
    assert_eq!(spill_alerts[1].from, HealthStatus::Degraded);
    assert_eq!(spill_alerts[1].to, HealthStatus::Healthy);
    // Degraded only after the fault begins; recovered only after it ends.
    assert!(spill_alerts[0].at_micros >= OUTAGE_FROM * SEC);
    assert!(spill_alerts[1].at_micros >= OUTAGE_UNTIL * SEC);
    assert_eq!(ops.overall(), HealthStatus::Healthy, "recovered at the end");

    // The alert log as a whole must also be flap-free: per (component,
    // rule), transitions alternate, so there are at most 2 more alerts
    // than distinct transitioning rules would need... simplest invariant:
    // consecutive alerts of one rule always chain from -> to.
    let mut last_state: std::collections::HashMap<(String, String), HealthStatus> =
        std::collections::HashMap::new();
    for a in ops.health().alerts() {
        let key = (a.component.clone(), a.rule.clone());
        let prev = last_state.get(&key).copied().unwrap_or_default();
        assert_eq!(a.from, prev, "alert chain broken for {key:?}");
        last_state.insert(key, a.to);
    }
}

/// (b) The windowed p99 over `flowstream.query.micros` agrees with the
/// oracle — the registry's own full-history histogram over the same raw
/// latencies — to within one bucket. The sampler's first frame predates
/// every query, so the trailing window covers exactly the samples the
/// oracle saw.
#[test]
fn windowed_p99_matches_oracle_within_one_bucket() {
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(2, 2, FlowstreamConfig::default()).with_telemetry(&tel);
    for rec in workload(7, 100.0, 3) {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();

    let mut sampler = MetricSampler::new(
        Arc::clone(tel.registry().expect("telemetry is enabled")),
        SamplerConfig::default(),
    );
    sampler.force_sample(0);
    let queries = [
        "SELECT TOPK 5 FROM ALL WHERE location = \"region-0\"",
        "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8",
        "SELECT HHH 5000 FROM ALL WHERE location = \"region-1\"",
        "SELECT TOPK 3 FROM ALL GROUP BY location",
        "SELECT QUERY FROM [0, 120) WHERE dst_ip = 10.0.0.0/8",
    ];
    for (i, q) in queries.iter().cycle().take(40).enumerate() {
        fs.query_with_policy(q, DegradationPolicy::Partial)
            .expect("query plane is healthy");
        sampler.force_sample((i as u64 + 1) * SEC);
    }

    let window = 40 * SEC;
    let oracle = tel
        .snapshot()
        .histograms
        .iter()
        .find(|(name, _)| name == "flowstream.query.micros")
        .expect("queries were timed")
        .1
        .clone();
    let w = sampler
        .histogram_window("flowstream.query.micros", window)
        .expect("window covers the query frames");
    assert_eq!(w.count, 40, "every query latency landed in the window");
    for q in [0.5, 0.99] {
        let ours = w.quantile(q);
        let oracle_q = oracle.quantile(q);
        let our_idx = w.bounds.iter().position(|&b| b >= ours);
        let oracle_idx = w.bounds.iter().position(|&b| b >= oracle_q);
        let (a, b) = (
            our_idx.unwrap_or(w.bounds.len()),
            oracle_idx.unwrap_or(w.bounds.len()),
        );
        assert!(
            a.abs_diff(b) <= 1,
            "p{:.0} windowed {} vs oracle {} differ by more than one bucket",
            q * 100.0,
            ours,
            oracle_q
        );
    }
}

/// (c) Sampling at the default one-second cadence costs < 2 % on the E11
/// ingest workload (60 k flows through a 2×4 deployment, telemetry
/// enabled). Both arms run the identical pipeline; the instrumented arm
/// additionally ticks a full ops plane once per simulated second.
/// Minimum-of-N timing with a retry bounds scheduler noise.
#[test]
fn sampler_overhead_is_under_two_percent() {
    let trace: Vec<_> = workload(2026, 500.0, 2).collect();

    let run = |with_ops: bool| -> std::time::Duration {
        let tel = Telemetry::new();
        let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default()).with_telemetry(&tel);
        let mut ops = if with_ops {
            OpsPlane::standard(&tel)
        } else {
            None
        };
        let start = std::time::Instant::now();
        for rec in &trace {
            fs.ingest_round_robin(rec);
            if let Some(ops) = ops.as_mut() {
                ops.tick(rec.ts);
            }
        }
        fs.finish();
        start.elapsed()
    };

    // Warm up the allocator and caches once per arm.
    run(false);
    run(true);
    let mut attempts = Vec::new();
    for _ in 0..3 {
        let base = (0..5).map(|_| run(false)).min().expect("5 runs");
        let inst = (0..5).map(|_| run(true)).min().expect("5 runs");
        let overhead = inst.as_secs_f64() / base.as_secs_f64() - 1.0;
        attempts.push(overhead);
        if overhead < 0.02 {
            return;
        }
    }
    panic!("sampler overhead above 2% in every attempt: {attempts:?}");
}
