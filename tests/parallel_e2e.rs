//! Parallel-vs-sequential equivalence oracle.
//!
//! The parallel data plane claims its results are **bit-identical** to the
//! sequential reference — `Parallelism::Sequential` is kept forever as the
//! oracle, and this suite is where the claim is enforced: the same workload
//! and seed run under `Sequential`, `Threads(2)`, `Threads(8)`, and `Auto`,
//! and every FlowQL query of the canonical E14 set (see `EXPERIMENTS.md`)
//! must return exactly the same rows, the same `Completeness`, and the same
//! partial-query counters across all settings — with and without a fault
//! plan installed. A parallel pump mid-outage must spill and recover to the
//! same converged state `tests/chaos_e2e.rs` pins for the sequential one.
//!
//! A separate test storms a traced deployment from 8 threads and checks
//! every query still yields one *connected* span tree plus a valid Chrome
//! export — the tracer must not lose or cross-link spans under concurrency.

use std::collections::HashMap;

use megastream::flowstream::FlowstreamStats;
use megastream::{DegradationPolicy, Flowstream, FlowstreamConfig, Parallelism};
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowdb::QueryResult;
use megastream_netsim::FaultPlan;
use megastream_telemetry::json::Json;
use megastream_telemetry::{SpanId, SpanRecord, Telemetry, Tracer};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

/// Every parallelism setting the oracle compares. `Sequential` is the
/// reference semantics; the rest must be indistinguishable from it.
const SETTINGS: [Parallelism; 4] = [
    Parallelism::Sequential,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
    Parallelism::Auto,
];

/// The canonical FlowQL query set of experiment E14 — every query listed in
/// `EXPERIMENTS.md` §E14, covering all five SELECT operators, window and
/// location restrictions, and the GROUP BY fan-out shape.
fn canonical_queries() -> Vec<&'static str> {
    vec![
        "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8",
        "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8 GROUP BY location",
        "SELECT TOPK 5 FROM ALL",
        "SELECT TOPK 3 FROM ALL GROUP BY location",
        "SELECT ABOVE 500 FROM ALL",
        "SELECT HHH 2000 FROM ALL",
        "SELECT DRILLDOWN FROM ALL WHERE src_ip = 10.0.0.0/8",
        "SELECT QUERY FROM [0, 60) WHERE src_ip = 10.0.0.0/8",
        "SELECT QUERY FROM ALL WHERE location = \"region-0\"",
        "SELECT TOPK 5 FROM [60, 240) WHERE dst_ip = 0.0.0.0/0",
    ]
}

fn workload() -> FlowTraceGenerator {
    FlowTraceGenerator::new(FlowTraceConfig {
        seed: 77,
        flows_per_sec: 60.0,
        duration: TimeDelta::from_mins(5),
        ..Default::default()
    })
}

fn deployment(par: Parallelism) -> Flowstream {
    Flowstream::new(
        3,
        2,
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(30),
            parallelism: par,
            ..Default::default()
        },
    )
}

/// Everything one run observes — the unit of cross-setting comparison.
#[derive(Debug, PartialEq)]
struct Observation {
    /// Per canonical query: the result, or the error rendered to a string.
    answers: Vec<Result<QueryResult, String>>,
    stats: FlowstreamStats,
    /// The counters the oracle pins exactly (worker gauges are excluded:
    /// they differ across settings by definition).
    partial_counter: u64,
    error_counter: u64,
}

fn observe(fs: &Flowstream, tel: &Telemetry) -> Observation {
    let answers = canonical_queries()
        .into_iter()
        .map(|q| fs.query(q).map_err(|e| e.to_string()))
        .collect();
    let snap = tel.snapshot();
    Observation {
        answers,
        stats: fs.stats(),
        partial_counter: snap.counter("flowdb.exec.partial_total").unwrap_or(0),
        error_counter: snap.counter("flowdb.exec.errors_total").unwrap_or(0),
    }
}

/// Ingests the seeded workload and answers the canonical query set.
fn run_clean(par: Parallelism) -> Observation {
    let tel = Telemetry::new();
    let mut fs = deployment(par).with_telemetry(&tel);
    for rec in workload() {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    observe(&fs, &tel)
}

/// The chaos_e2e scenario under a parallelism setting: region 1's uplink is
/// down for `[60 s, 180 s)`, a `Partial` query probes mid-outage, ingest
/// continues past recovery, and the converged per-region results are
/// captured alongside the canonical set.
#[derive(Debug, PartialEq)]
struct FaultObservation {
    unreachable_mid_outage: Vec<String>,
    partial_mid_outage: QueryResult,
    final_region_results: Vec<QueryResult>,
    observation: Observation,
}

fn run_faulted(par: Parallelism) -> FaultObservation {
    let tel = Telemetry::new();
    let mut fs = deployment(par).with_telemetry(&tel);
    let mut plan = FaultPlan::seeded(42);
    plan.link_down(
        fs.region_node(1),
        fs.noc_node(),
        Timestamp::from_secs(60),
        Timestamp::from_secs(180),
    );
    fs.network_mut().install_faults(plan);
    let mut mid = None;
    for rec in workload() {
        if mid.is_none() && rec.ts >= Timestamp::from_secs(120) {
            let unreachable: Vec<String> = fs.unreachable_locations().into_iter().collect();
            let partial = fs
                .query_with_policy(
                    "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8",
                    DegradationPolicy::Partial,
                )
                .expect("Partial degradation answers from reachable locations");
            mid = Some((unreachable, partial));
        }
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    let (unreachable_mid_outage, partial_mid_outage) = mid.expect("workload passes 120 s");
    let final_region_results = (0..fs.regions())
        .map(|g| {
            let q = format!(
                "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8 AND location = region-{g}"
            );
            fs.query(&q).expect("region location is indexed")
        })
        .collect();
    FaultObservation {
        unreachable_mid_outage,
        partial_mid_outage,
        final_region_results,
        observation: observe(&fs, &tel),
    }
}

#[test]
fn every_parallelism_setting_answers_identically() {
    let reference = run_clean(Parallelism::Sequential);
    // The clean run must be fully healthy before it can be a reference.
    assert_eq!(reference.partial_counter, 0);
    assert_eq!(reference.error_counter, 0);
    assert!(reference.answers.iter().all(|a| a.is_ok()));
    for par in SETTINGS {
        let got = run_clean(par);
        assert_eq!(
            got, reference,
            "results under {par} diverged from the sequential oracle"
        );
    }
}

#[test]
fn every_parallelism_setting_degrades_and_recovers_identically() {
    let reference = run_faulted(Parallelism::Sequential);
    // Pin the chaos_e2e shape first: mid-outage exactly region-1 is
    // unreachable and the answer is partial (2 of 3 locations).
    assert_eq!(
        reference.unreachable_mid_outage,
        vec!["region-1".to_string()]
    );
    let completeness = reference.partial_mid_outage.completeness;
    assert!(!completeness.is_complete());
    assert_eq!(completeness.total - completeness.reached, 1);
    assert_eq!(reference.observation.stats.partial_queries, 1);
    assert!(reference.observation.stats.export_retries > 0);
    assert!(reference.observation.stats.spilled_summaries > 0);
    assert!(reference.observation.stats.flushed_summaries > 0);
    assert_eq!(reference.observation.stats.dropped_summaries, 0);
    for par in SETTINGS {
        let got = run_faulted(par);
        assert_eq!(
            got, reference,
            "faulted run under {par} diverged from the sequential oracle"
        );
    }
}

#[test]
fn faulted_runs_converge_to_clean_region_state() {
    // The chaos_e2e convergence pin, under the most parallel setting: after
    // recovery every region's rows equal a run that never saw a fault.
    let faulted = run_faulted(Parallelism::Threads(8));
    let mut clean_fs = deployment(Parallelism::Threads(8));
    for rec in workload() {
        clean_fs.ingest_round_robin(&rec);
    }
    clean_fs.finish();
    for (g, got) in faulted.final_region_results.iter().enumerate() {
        let q =
            format!("SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8 AND location = region-{g}");
        let want = clean_fs.query(&q).expect("region location is indexed");
        assert_eq!(got.rows, want.rows, "region-{g} diverged after recovery");
    }
}

#[test]
fn same_seed_parallel_runs_are_identical() {
    // Determinism holds *within* a setting too — two Threads(8) runs are
    // bit-identical, so flakes cannot hide behind scheduling.
    assert_eq!(
        run_faulted(Parallelism::Threads(8)),
        run_faulted(Parallelism::Threads(8))
    );
}

/// Every span of one trace must reach its single root by parent links.
fn assert_connected(spans: &[&SpanRecord]) {
    let by_id: HashMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, *s)).collect();
    let roots: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root span per trace");
    let root_id = roots[0].id;
    for span in spans {
        let mut cursor = *span;
        let mut hops = 0;
        while let Some(parent) = cursor.parent {
            cursor = by_id
                .get(&parent)
                .unwrap_or_else(|| panic!("span {:?} has dangling parent {parent:?}", span.id));
            hops += 1;
            assert!(hops <= spans.len(), "parent cycle at {:?}", span.id);
        }
        assert_eq!(cursor.id, root_id, "span {:?} not under the root", span.id);
    }
}

#[test]
fn query_storm_from_eight_threads_keeps_traces_connected() {
    let tracer = Tracer::new();
    let mut fs = deployment(Parallelism::Auto).with_tracer(&tracer);
    for rec in workload() {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    let queries = canonical_queries();
    let expected_locations = fs.flowdb().locations().len();
    // 8 threads × 5 queries each, every query itself fanning out on worker
    // threads — the tracer's concurrent span attachment under real load.
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let fs = &fs;
            let queries = &queries;
            scope.spawn(move || {
                for i in 0..5usize {
                    let q = queries[(t + i) % queries.len()];
                    fs.query(q).expect("storm query");
                }
            });
        }
    });
    let snap = tracer.snapshot();
    let traces = snap.trace_ids();
    assert_eq!(traces.len(), 40, "one trace per storm query");
    for trace in traces {
        let spans = snap.trace(trace);
        assert_connected(&spans);
        let root = spans.iter().find(|s| s.parent.is_none()).unwrap();
        assert_eq!(root.name, "flowstream.query");
        assert!(spans.iter().any(|s| s.name == "parse"));
        // Each fanout child hangs off this trace's root and carries its
        // location and payload annotations.
        let fanouts: Vec<_> = spans.iter().filter(|s| s.name == "fanout").collect();
        assert!(!fanouts.is_empty(), "query without fan-out spans");
        assert!(fanouts.len() <= expected_locations);
        for fanout in &fanouts {
            assert_eq!(fanout.parent, Some(root.id), "fanout crossed traces");
            assert!(fanout.attr("location").is_some());
            assert!(fanout.records > 0);
        }
    }
    let parsed = Json::parse(&fs.trace_chrome_json()).expect("chrome export must stay valid JSON");
    drop(parsed);
}
