//! Property tests for the time-series layer (DESIGN.md §11): windowed
//! histogram-delta quantiles must agree with an oracle computed from the
//! raw recorded values, empty windows must read as empty rather than
//! stale, counter deltas must equal the recorded increments, and
//! `monotonic_increase` must absorb counter resets.

use std::sync::Arc;

use megastream_telemetry::{
    monotonic_increase, MetricSampler, SamplerConfig, Telemetry, LATENCY_MICROS_BOUNDS,
};
use proptest::collection::vec;
use proptest::prelude::*;

const SEC: u64 = 1_000_000;

fn sampler_over(tel: &Telemetry) -> MetricSampler {
    MetricSampler::new(
        Arc::clone(tel.registry().expect("telemetry is enabled")),
        SamplerConfig::default(),
    )
}

/// The bucket bound sample `v` reports under the histogram's rule: the
/// first inclusive upper bound `>= v`, saturating at the last finite
/// bound for overflow samples (mirroring `WindowedHistogram::quantile`,
/// which has no per-window max to report).
fn bucket_bound(v: u64, bounds: &[u64]) -> u64 {
    bounds
        .iter()
        .copied()
        .find(|&b| b >= v)
        .or_else(|| bounds.last().copied())
        .expect("bounds are non-empty")
}

/// Oracle quantile over the raw values: sort, take the `ceil(q·n)`-th
/// sample, map it to its bucket bound. Bucketization is monotone in the
/// sample value, so this is exactly the bucket the windowed view must
/// report.
fn oracle_quantile(values: &[u64], q: f64, bounds: &[u64]) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    bucket_bound(sorted[rank - 1], bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The windowed p50/p90/p99 equal the oracle over exactly the raw
    /// values recorded inside the window — samples recorded before the
    /// window's first frame (the warmup batch) must not leak in.
    #[test]
    fn windowed_quantiles_match_oracle(
        warmup in vec(0u64..20_000_000, 0..100),
        batch in vec(0u64..20_000_000, 1..200),
    ) {
        let tel = Telemetry::new();
        let h = tel.histogram("q.micros", LATENCY_MICROS_BOUNDS);
        for &v in &warmup {
            h.record(v);
        }
        let mut s = sampler_over(&tel);
        s.force_sample(0);
        for &v in &batch {
            h.record(v);
        }
        s.force_sample(SEC);
        let w = s.histogram_window("q.micros", SEC).expect("two frames cover the series");
        prop_assert_eq!(w.count, batch.len() as u64);
        prop_assert_eq!(w.sum, batch.iter().sum::<u64>());
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(
                w.quantile(q),
                oracle_quantile(&batch, q, LATENCY_MICROS_BOUNDS),
                "q = {}", q
            );
        }
    }

    /// A counter's windowed delta equals the sum of the increments
    /// recorded inside the window, for every window size.
    #[test]
    fn counter_delta_matches_recorded_increments(incs in vec(0u64..500, 1..50)) {
        let tel = Telemetry::new();
        let c = tel.counter("c.total");
        let mut s = sampler_over(&tel);
        s.force_sample(0);
        for (i, &d) in incs.iter().enumerate() {
            c.add(d);
            s.force_sample((i as u64 + 1) * SEC);
        }
        let n = incs.len() as u64;
        // Full window: every increment. Trailing windows: the suffix.
        prop_assert_eq!(s.counter_delta("c.total", n * SEC), Some(incs.iter().sum()));
        for k in 1..=incs.len() {
            let suffix: u64 = incs[incs.len() - k..].iter().sum();
            prop_assert_eq!(
                s.counter_delta("c.total", k as u64 * SEC),
                Some(suffix),
                "trailing {} frames", k
            );
        }
    }

    /// `monotonic_increase` over a concatenation with a guaranteed drop
    /// at the seam: the post-reset value counts as increments since the
    /// reset, each monotone run contributes `last - first`.
    #[test]
    fn counter_reset_splits_increase(
        a0 in 1u64..1_000,
        da in vec(0u64..1_000, 1..40),
        db in vec(0u64..1_000, 1..40),
        b0 in 0u64..1_000,
    ) {
        let mut a = vec![a0];
        for &d in &da {
            let next = a.last().expect("non-empty") + d;
            a.push(next);
        }
        let last_a = *a.last().expect("non-empty");
        let b_start = b0 % last_a; // strictly below the pre-reset value
        let mut b = vec![b_start];
        for &d in &db {
            let next = b.last().expect("non-empty") + d;
            b.push(next);
        }
        let inc_a = monotonic_increase(a.iter().copied());
        let inc_b = monotonic_increase(b.iter().copied());
        prop_assert_eq!(inc_a, last_a - a0);
        prop_assert_eq!(inc_b, b.last().expect("non-empty") - b_start);
        let full = a.iter().chain(b.iter()).copied();
        prop_assert_eq!(monotonic_increase(full), inc_a + b_start + inc_b);
    }
}

/// A window in which nothing was recorded reads as empty — zero count,
/// zero quantiles, zero rate — not as a stale echo of earlier samples.
#[test]
fn empty_window_reads_as_empty() {
    let tel = Telemetry::new();
    let h = tel.histogram("q.micros", LATENCY_MICROS_BOUNDS);
    h.record(500);
    let mut s = sampler_over(&tel);
    s.force_sample(0);
    s.force_sample(SEC); // no samples recorded in between
    let w = s
        .histogram_window("q.micros", SEC)
        .expect("two frames cover the series");
    assert_eq!(w.count, 0);
    assert_eq!(w.sum, 0);
    assert_eq!(w.quantile(0.5), 0);
    assert_eq!(w.quantile(0.99), 0);
    assert_eq!(w.rate_per_sec(), 0.0);
    assert_eq!(s.window_quantile("q.micros", 0.99, SEC), Some(0));
}

/// Degenerate inputs: no observations and a single observation both have
/// zero increase (an increase needs two frames).
#[test]
fn monotonic_increase_degenerate_inputs() {
    assert_eq!(monotonic_increase([]), 0);
    assert_eq!(monotonic_increase([42]), 0);
    assert_eq!(monotonic_increase([7, 7, 7]), 0);
}
