//! End-to-end telemetry: a Flowstream deployment with a live registry must
//! record ingest, epoch-rotation, and query-latency metrics from every
//! layer it wires through — and a deployment with the default (disabled)
//! handle must register nothing at all.

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream_flow::time::TimeDelta;
use megastream_telemetry::{labeled, Telemetry};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

fn run_workload(fs: &mut Flowstream) {
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 11,
        flows_per_sec: 100.0,
        duration: TimeDelta::from_mins(3),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
}

#[test]
fn flowstream_workload_populates_all_layers() {
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(
        2,
        2,
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(30),
            ..Default::default()
        },
    )
    .with_telemetry(&tel);
    run_workload(&mut fs);
    fs.query("SELECT TOPK 3 FROM ALL WHERE location = \"region-0\"")
        .expect("topk query");
    fs.query("SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8")
        .expect("point query");
    assert!(fs.query("SELECT TOPK 3 FROM ALL WHERE").is_err());

    let snap = fs.telemetry_snapshot();

    // Ingest: every router counted records, and the per-store totals match
    // the deployment's own accounting.
    let mut router_total = 0;
    for g in 0..2 {
        for r in 0..2 {
            let name = labeled(
                "flowstream.ingest.records_total",
                "router",
                &format!("{g}-{r}"),
            );
            let n = snap.counter(&name).expect("router counter registered");
            assert!(n > 0, "router {g}-{r} saw no records");
            router_total += n;
        }
    }
    assert_eq!(router_total, fs.stats().flows);
    let store_total: u64 = (0..2)
        .map(|g| {
            snap.counter(&labeled(
                "datastore.ingest.flows_total",
                "store",
                &format!("region-{g}"),
            ))
            .expect("store counter registered")
        })
        .sum();
    assert_eq!(store_total, router_total);

    // Epoch rotations: counters and latency samples agree, and match the
    // aggregate stats view.
    let mut rotations = 0;
    for g in 0..2 {
        let store = format!("region-{g}");
        let n = snap
            .counter(&labeled("datastore.epoch.rotations_total", "store", &store))
            .expect("rotation counter registered");
        assert!(n > 0, "store {store} never rotated");
        let h = snap
            .histogram(&labeled("datastore.epoch.rotate.micros", "store", &store))
            .expect("rotation histogram registered");
        assert_eq!(h.count, n, "every rotation must be timed");
        rotations += n;
    }
    assert_eq!(rotations, fs.stats().region_epochs);

    // Queries: end-to-end latency histogram saw every call (including the
    // failed parse), FlowDB recorded per-operator timings.
    assert_eq!(snap.counter("flowstream.query.total"), Some(3));
    assert_eq!(snap.counter("flowstream.query.errors_total"), Some(1));
    let lat = snap
        .histogram("flowstream.query.micros")
        .expect("query latency histogram registered");
    assert_eq!(lat.count, 3);
    assert!(lat.sum > 0, "query latency samples must be nonzero");
    assert_eq!(
        snap.counter(&labeled("flowdb.exec.total", "op", "topk")),
        Some(1)
    );
    assert_eq!(
        snap.counter(&labeled("flowdb.exec.total", "op", "query")),
        Some(1)
    );
    assert!(snap.histogram("flowdb.parse.micros").is_some());

    // The text report surfaces all of it.
    let report = fs.telemetry_report();
    assert!(report.contains("flowstream.ingest.records_total"));
    assert!(report.contains("datastore.epoch.rotations_total"));
    assert!(report.contains("flowstream.query.micros"));
}

#[test]
fn disabled_deployment_registers_no_metrics() {
    // The null-handle fast path: the exact same workload with telemetry
    // left at its default must touch no registry and allocate no metrics.
    let mut fs = Flowstream::new(2, 2, FlowstreamConfig::default());
    run_workload(&mut fs);
    fs.query("SELECT TOPK 3 FROM ALL WHERE location = \"region-0\"")
        .expect("topk query");
    assert!(!fs.telemetry().is_enabled());
    assert!(fs.telemetry_snapshot().is_empty());
    assert_eq!(fs.telemetry_report(), "");
}

#[test]
fn detaching_telemetry_stops_recording() {
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(1, 1, FlowstreamConfig::default()).with_telemetry(&tel);
    run_workload(&mut fs);
    let before = tel
        .snapshot()
        .counter(&labeled("flowstream.ingest.records_total", "router", "0-0"))
        .expect("counter registered");
    assert!(before > 0);
    fs.set_telemetry(&Telemetry::disabled());
    run_workload(&mut fs);
    let after = tel
        .snapshot()
        .counter(&labeled("flowstream.ingest.records_total", "router", "0-0"))
        .expect("counter still in registry");
    assert_eq!(before, after, "detached deployment must not record");
}
