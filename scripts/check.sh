#!/usr/bin/env bash
# Full local verification gate: format, lints, release build, tier-1 tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> observability + chaos e2e suites"
cargo test --test telemetry_e2e --test tracing_e2e --test chaos_e2e -q

echo "==> ops plane: e2e + time-series property suites"
cargo test --test ops_e2e --test ops_timeseries -q

echo "==> merge laws + parser fuzz-lite"
cargo test --test merge_laws --test flowql_fuzz -q

echo "==> parallel equivalence oracle (run twice: results must not flake)"
cargo test --test parallel_e2e -q
cargo test --test parallel_e2e -q

echo "==> no #[ignore]d tests"
if grep -rn '#\[ignore' --include='*.rs' tests crates examples; then
    echo "error: #[ignore]d tests are not allowed" >&2
    exit 1
fi

echo "==> no unwrap/expect in telemetry non-test code"
# The observability layer must not be able to panic the data plane:
# strip everything from the first #[cfg(test)] marker to EOF, then look
# for panicking accessors in what remains.
fail=0
for f in crates/telemetry/src/*.rs; do
    if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
        | grep -n '\.unwrap()\|\.expect(' \
        | sed "s|^|$f:|"; then
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "error: unwrap()/expect( in telemetry non-test code" >&2
    exit 1
fi

echo "==> no unsafe code"
if grep -rn 'unsafe ' --include='*.rs' src tests crates examples \
    | grep -v 'forbid(unsafe_code)'; then
    echo "error: unsafe code is not allowed (every crate forbids it)" >&2
    exit 1
fi

echo "All checks passed."
