#!/usr/bin/env bash
# Full local verification gate: format, lints, release build, tier-1 tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "All checks passed."
