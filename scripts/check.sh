#!/usr/bin/env bash
# Full local verification gate: format, lints, release build, tier-1 tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> observability + chaos e2e suites"
cargo test --test telemetry_e2e --test tracing_e2e --test chaos_e2e -q

echo "==> ops plane: e2e + time-series property suites"
cargo test --test ops_e2e --test ops_timeseries -q

echo "==> merge laws + parser fuzz-lite"
cargo test --test merge_laws --test flowql_fuzz -q

echo "==> parallel equivalence oracle (run twice: results must not flake)"
cargo test --test parallel_e2e -q
cargo test --test parallel_e2e -q

echo "==> accounting plane: profiler/cost e2e + accounting property suites"
cargo test --test profile_e2e --test accounting_props -q

echo "==> arena vs pointer-oracle differential harness"
cargo test --test arena_differential -q

echo "==> E18 smoke: arena-vs-pointer bench runs end-to-end"
# The offline criterion shim runs everything unconditionally (~8 s); this
# proves the arena/oracle pairing still builds and executes end-to-end.
cargo bench -q -p megastream-bench --bench e18_arena_merge >/dev/null

echo "==> durability: kill-and-restart recovery e2e"
cargo test --test durability_e2e -q

echo "==> durability: codec roundtrip properties + corruption fuzz + fsck CLI"
cargo test -p megastream-storage --test roundtrip_props --test corruption_fuzz --test fsck_cli -q

echo "==> mega-fsck verifies a quickstart-produced store (exit 0)"
cargo run -q --release --example quickstart -- --durable target/quickstart-store >/dev/null
cargo run -q --release -p megastream-storage --bin mega-fsck -- target/quickstart-store >/dev/null

echo "==> collapsed-stack export (quickstart --profile)"
cargo run -q --release --example quickstart -- --profile >/dev/null
test -s target/quickstart.collapsed
# Every line must be `path count` with a positive integer count and no
# empty `;`-separated frames — the format flamegraph.pl consumes.
awk '
  {
    if (NF < 2 || $NF !~ /^[0-9]+$/ || $NF == "0") { print "bad line: " $0; exit 1 }
    path = $0; sub(/ [0-9]+$/, "", path)
    if (path == "" || path ~ /^;/ || path ~ /;;/ || path ~ /;$/) { print "bad path: " $0; exit 1 }
  }
' target/quickstart.collapsed

echo "==> megalint (static analysis, deny mode)"
# Replaces the old grep/awk gates (#[ignore], telemetry unwrap/expect,
# unsafe) with the lexer-aware analyzer: it tokenizes instead of pattern
# matching (no false hits in strings/comments, no files truncated at the
# first test module) and adds the determinism, lock-discipline, and
# metric-registry passes. Suppressions live in lint.allow, each with a
# mandatory justification; stale entries fail the gate.
cargo run -q --release -p megastream-analyzer -- --root .

echo "All checks passed."
