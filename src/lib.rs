//! Workspace umbrella crate.
//!
//! This package exists so that the repository-level `tests/` and `examples/`
//! directories are built as part of the workspace. The actual library lives
//! in the [`megastream`] facade crate and the `megastream-*` member crates.

pub use megastream;
