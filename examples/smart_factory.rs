//! Smart factory (paper Fig. 1a + §II-A): sensors → hierarchical data
//! stores → triggers → controller, with a predictive-maintenance
//! application closing the adaptive loop.
//!
//! One machine on line 0 degrades over the run. The fast loop (trigger →
//! controller) slows the machine when its temperature crosses the hard
//! limit; the slow loop (summaries → application) predicts the failure
//! ahead of time from the trend and schedules maintenance.
//!
//! ```text
//! cargo run --example smart_factory
//! ```

use megastream::application::{AppDirective, Application, PredictiveMaintenanceApp};
use megastream::controller::{ControlAction, Controller, SafetyEnvelope};
use megastream::hierarchy::StoreHierarchy;
use megastream_datastore::trigger::TriggerCondition;
use megastream_datastore::{AggregatorSpec, DataStore, StorageStrategy};
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_netsim::hierarchy::FactoryTopology;
use megastream_workloads::factory::{Degradation, FactoryWorkload, SensorChannel};

const MACHINES_PER_LINE: usize = 4;
const LINES: usize = 2;

fn main() {
    // --- topology & hierarchy: machine stores -> line stores -> factory.
    let topo = FactoryTopology::build(LINES, MACHINES_PER_LINE);
    let factory_net = topo.factory;
    let machine_nets: Vec<Vec<_>> = topo.machines.clone();
    let line_nets = topo.lines.clone();
    let mut hierarchy = StoreHierarchy::new(topo.network);

    let factory_store = DataStore::new(
        "factory",
        StorageStrategy::RoundRobinHierarchical {
            budget_bytes: 8 << 20,
            fanout: 2,
        },
        TimeDelta::from_mins(10),
    );
    let factory_id = hierarchy.add_root(factory_store, factory_net);

    let mut machine_ids = Vec::new();
    for l in 0..LINES {
        let line_store = DataStore::new(
            format!("line-{l}"),
            StorageStrategy::RoundRobin {
                budget_bytes: 4 << 20,
            },
            TimeDelta::from_mins(1),
        );
        let line_id = hierarchy.add_child(line_store, line_nets[l], factory_id);
        for (m, &machine_net) in machine_nets[l].iter().enumerate() {
            let machine = l * MACHINES_PER_LINE + m;
            let mut store = DataStore::new(
                format!("machine-{machine}"),
                StorageStrategy::RoundRobin {
                    budget_bytes: 1 << 20,
                },
                TimeDelta::from_secs(10),
            );
            // One time-bin aggregator per channel, subscribed to its
            // stream. Bin width = epoch length: one smoothed point per
            // epoch, which is what the trend analysis wants (fine-grained
            // noise averaged out).
            for channel in SensorChannel::ALL {
                let agg = store.install_aggregator(AggregatorSpec::TimeBins {
                    width: TimeDelta::from_secs(10),
                    seed: machine as u64,
                });
                store.subscribe(agg, format!("machine-{machine}/{channel}").as_str().into());
            }
            // Fast-loop guard: hard temperature limit.
            store.install_trigger(
                "safety",
                TriggerCondition::ScalarAbove {
                    stream: format!("machine-{machine}/temperature").as_str().into(),
                    threshold: 85.0,
                },
                TimeDelta::from_secs(30),
            );
            machine_ids.push(hierarchy.add_child(store, machine_net, line_id));
        }
    }

    // --- per-machine controllers with a safety envelope.
    let mut controllers: Vec<Controller> = (0..LINES * MACHINES_PER_LINE)
        .map(|m| {
            Controller::new(
                format!("machine-{m}"),
                SafetyEnvelope {
                    allow_stop: true,
                    min_speed_factor: 0.25,
                },
            )
        })
        .collect();
    // Rule: on the temperature trigger (id 0 at each store), slow down.
    for (m, ctl) in controllers.iter_mut().enumerate() {
        let trigger_id = hierarchy
            .store(machine_ids[m])
            .triggers()
            .iter()
            .next()
            .unwrap()
            .id;
        ctl.install_rule(
            "safety",
            trigger_id,
            ControlAction::SlowDown { factor: 0.5 },
            10,
        )
        .unwrap();
    }

    // --- workload: machine 2 degrades from t=60 s toward failure at 900 s.
    let mut workload =
        FactoryWorkload::new(LINES * MACHINES_PER_LINE, TimeDelta::from_millis(500), 11);
    workload.degrade(
        2,
        Degradation {
            onset: Timestamp::from_secs(60),
            failure: Timestamp::from_secs(900),
            severity: 0.6,
        },
    );

    let mut app = PredictiveMaintenanceApp::new(TimeDelta::from_hours(2));
    let mut actuations = 0u64;
    let mut maintenance: Vec<String> = Vec::new();
    // Feed each stored summary to the application exactly once (keyed by
    // window end, robust against storage evictions).
    let mut last_fed: Vec<Timestamp> = vec![Timestamp::ZERO; machine_ids.len()];

    // --- run 20 simulated minutes in 10 s steps.
    for step in 1..=120u64 {
        let until = Timestamp::from_secs(step * 10);
        for reading in workload.readings_until(until) {
            let stream = format!("machine-{}/{}", reading.machine, reading.channel);
            let events = hierarchy.ingest_scalar(
                machine_ids[reading.machine],
                &stream.as_str().into(),
                reading.value,
                reading.ts,
            );
            // Fast loop: trigger → controller → actuation.
            for event in events {
                if let Some(act) = controllers[reading.machine].on_trigger(&event) {
                    actuations += 1;
                    println!(
                        "[{}] controller {}: {:?} (observed {:.1})",
                        act.at,
                        controllers[reading.machine].name(),
                        act.action,
                        event.observed
                    );
                }
            }
        }
        // Epoch rotations push summaries up the hierarchy.
        hierarchy
            .pump(until)
            .expect("factory hierarchy is fully connected");
        // Slow loop: the application watches machine-level summaries.
        for (idx, &mid) in machine_ids.iter().enumerate() {
            let summaries: Vec<_> = hierarchy
                .store(mid)
                .summaries()
                .iter()
                .filter(|s| s.window.end > last_fed[idx])
                .cloned()
                .collect();
            if let Some(latest) = summaries.iter().map(|s| s.window.end).max() {
                last_fed[idx] = latest;
            }
            for summary in summaries {
                for directive in app.on_summary(&summary, until) {
                    match directive {
                        AppDirective::Report(msg) => println!("[{until}] app: {msg}"),
                        AppDirective::ScheduleMaintenance {
                            machine,
                            channel,
                            eta,
                        } => {
                            maintenance.push(format!("machine-{machine}/{channel} before {eta}"));
                            println!(
                                "[{until}] app: maintenance scheduled for machine-{machine} ({channel}) before {eta}"
                            );
                        }
                        AppDirective::RequestTrigger {
                            condition,
                            cooldown,
                        } => {
                            hierarchy.store_mut(mid).install_trigger(
                                app.name(),
                                condition,
                                cooldown,
                            );
                        }
                        other => println!("[{until}] app: {other:?}"),
                    }
                }
            }
        }
    }

    println!("\n--- summary ---");
    println!("fast-loop actuations: {actuations}");
    println!("maintenance orders:   {maintenance:?}");
    println!(
        "bytes exported up the hierarchy: {}",
        hierarchy.network().total_bytes()
    );
    let raw: u64 = machine_ids
        .iter()
        .map(|id| hierarchy.store(*id).stats().raw_bytes)
        .sum();
    println!("raw sensor bytes at machine level: {raw}");
    assert!(
        !maintenance.is_empty(),
        "the degrading machine must be caught by the trend"
    );
    assert!(
        maintenance.iter().all(|m| m.contains("machine-2")),
        "only machine 2 degrades"
    );
}
