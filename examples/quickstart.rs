//! Quickstart: build a Flowtree from a synthetic trace and run all eight
//! Table II operators.
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example quickstart -- --stats      # + telemetry walkthrough
//! cargo run --example quickstart -- --trace      # + causal span trees
//! cargo run --example quickstart -- --threads 4  # parallel query fan-out
//! cargo run --example quickstart -- --health     # + ops-plane health report
//! cargo run --example quickstart -- --watch      # + live dashboard frames
//! cargo run --example quickstart -- --profile    # + flamegraph profile
//! cargo run --example quickstart -- --durable target/quickstart-store
//!                                                # + checksummed cold tier
//! ```

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream::ops::OpsPlane;
use megastream::Parallelism;
use megastream_flow::key::FlowKey;
use megastream_flow::score::Popularity;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use megastream_telemetry::{Profiler, Telemetry, Tracer};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

/// `--threads N` from the command line, or the `Auto` default.
fn parallelism_flag() -> Parallelism {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            let n = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--threads needs a positive number, e.g. --threads 4");
                    std::process::exit(2);
                });
            Parallelism::Threads(n)
        }
        None => Parallelism::default(),
    }
}

/// `--durable <dir>` from the command line: a fresh cold-tier directory.
fn durable_flag() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--durable").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with('-'))
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                eprintln!("--durable needs a directory, e.g. --durable target/quickstart-store");
                std::process::exit(2);
            })
    })
}

fn main() {
    let stats = std::env::args().any(|a| a == "--stats");
    let want_trace = std::env::args().any(|a| a == "--trace");
    let parallelism = parallelism_flag();
    // 1. Generate a small synthetic sampled-NetFlow trace.
    let trace: Vec<_> = FlowTraceGenerator::new(FlowTraceConfig {
        seed: 7,
        flows_per_sec: 200.0,
        duration: TimeDelta::from_secs(60),
        internal_hosts: 500,
        external_hosts: 500,
        ..Default::default()
    })
    .collect();
    println!("trace: {} flow records", trace.len());

    // 2. Summarize it with a budget of 512 tree nodes.
    let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(512));
    for rec in &trace {
        tree.observe(rec);
    }
    println!(
        "flowtree: {} nodes summarizing {} packets from {} records\n",
        tree.len(),
        tree.total(),
        tree.records()
    );

    // 3. Query — popularity score of one generalized flow.
    let ten_slash_eight = FlowKey::root().with_src_prefix("10.0.0.0/8".parse().unwrap());
    println!(
        "QUERY    src=10.0.0.0/8            -> {} packets",
        tree.query(&ten_slash_eight)
    );

    // 4. Top-k — the most popular flows.
    println!("TOP-K    (k = 3)");
    for (key, score) in tree.top_k(3) {
        println!("         {score:>10}  {key}");
    }

    // 5. Above-x — everything above a threshold.
    let x = Popularity::new(tree.total().value() / 10);
    println!("ABOVE-X  (x = {x}) -> {} flows", tree.above_x(x).len());

    // 6. HHH — hierarchical heavy hitters.
    println!("HHH      (threshold = {x})");
    for item in tree.hhh(x).into_iter().take(5) {
        println!(
            "         {:>10}  {} (discounted {})",
            item.score, item.key, item.discounted
        );
    }

    // 7. Drilldown — one level below the busiest /8.
    println!("DRILLDOWN under src=10.0.0.0/8");
    for row in tree.drilldown(&ten_slash_eight).into_iter().take(4) {
        println!("         {:>10}  {}", row.score, row.key);
    }

    // 8. Merge + Compress — the paper's A12 = compress(A1 ∪ A2).
    let mut other = Flowtree::new(FlowtreeConfig::default().with_capacity(512));
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 99,
        flows_per_sec: 200.0,
        duration: TimeDelta::from_secs(60),
        ..Default::default()
    }) {
        other.observe(&rec);
    }
    let mut merged = tree.clone();
    merged.merge(&other);
    merged.compress_to(256);
    println!(
        "\nMERGE    two 512-node trees -> {} packets total",
        merged.total()
    );
    println!(
        "COMPRESS merged tree to {} nodes (root query still exact: {})",
        merged.len(),
        merged.query(&FlowKey::root())
    );

    // 9. Diff — subtract one epoch from another.
    let mut diffed = merged.clone();
    diffed.diff(&other);
    println!(
        "DIFF     merged - second epoch -> {} packets (first epoch had {})",
        diffed.total(),
        tree.total()
    );

    // 10. --stats / --trace / --threads: the same pipeline as a Flowstream
    // deployment with the observability layers attached. --stats records
    // aggregate metrics into one registry (per-router ingest counters,
    // data-store rotation latency, FlowDB execution timings, the
    // end-to-end FlowQL latency histogram); --trace records each query's
    // causal span tree; --threads N answers the queries with an N-worker
    // fan-out (same results by construction — DESIGN.md §10); --health
    // folds the sampled registry through the standard health rules and
    // prints the report; --watch also renders dashboard frames; --profile
    // aggregates scoped activities into a flamegraph (top-N table on
    // stdout plus a collapsed-stack file for flamegraph.pl).
    let threads_given = std::env::args().any(|a| a == "--threads");
    let want_health = std::env::args().any(|a| a == "--health");
    let want_watch = std::env::args().any(|a| a == "--watch");
    let want_profile = std::env::args().any(|a| a == "--profile");
    let durable = durable_flag();
    if stats
        || want_trace
        || threads_given
        || want_health
        || want_watch
        || want_profile
        || durable.is_some()
    {
        if threads_given {
            println!("\nflowstream parallelism: {parallelism}");
        }
        let tel = Telemetry::new();
        let tracer = Tracer::new();
        let mut fs = Flowstream::new(
            2,
            2,
            FlowstreamConfig {
                epoch_len: TimeDelta::from_secs(30),
                parallelism,
                ..Default::default()
            },
        );
        if stats || want_health || want_watch {
            fs.set_telemetry(&tel);
        }
        if want_trace {
            fs.set_tracer(&tracer);
        }
        let profiler = Profiler::new();
        if want_profile {
            fs.set_profiler(&profiler);
        }
        if let Some(dir) = durable.as_ref() {
            // A fresh store each run: epoch segments + WAL land here.
            let _ = std::fs::remove_dir_all(dir);
            match megastream::ColdTier::create(dir, megastream::SyncPolicy::OnSeal, tel.clone()) {
                Ok(tier) => fs.attach_cold_tier(tier),
                Err(e) => {
                    eprintln!("--durable: cannot create store at {}: {e}", dir.display());
                    std::process::exit(2);
                }
            }
        }
        let mut ops = if want_health || want_watch {
            OpsPlane::standard(&tel)
        } else {
            None
        };
        let mut last_end = Timestamp::ZERO;
        for rec in FlowTraceGenerator::new(FlowTraceConfig {
            seed: 7,
            flows_per_sec: 200.0,
            duration: TimeDelta::from_mins(3),
            internal_hosts: 500,
            external_hosts: 500,
            ..Default::default()
        }) {
            fs.ingest_round_robin(&rec);
            last_end = last_end.max(rec.ts);
            if let Some(ops) = ops.as_mut() {
                if ops.tick(rec.ts) && want_watch && ops.sampler().frames().is_multiple_of(60) {
                    print!("\n{}", ops.render_dashboard());
                }
            }
        }
        fs.finish();
        fs.query("SELECT TOPK 3 FROM ALL WHERE location = \"region-0\"")
            .expect("quickstart query");
        fs.query("SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8")
            .expect("quickstart query");
        if let Some(dir) = durable.as_ref() {
            match megastream::storage::fsck::fsck(dir, false) {
                Ok(report) => println!(
                    "\ndurable store: {} sealed segment(s), {} clean frame(s), \
                     {} WAL record(s) -> {}",
                    report.segments.len(),
                    report.clean_frames,
                    report.wal_records,
                    dir.display()
                ),
                Err(e) => {
                    eprintln!("--durable: verify failed for {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        if stats {
            println!("\n--- telemetry ({} metrics) ---", tel.snapshot().len());
            print!("{}", fs.telemetry_report());
        }
        if let Some(ops) = ops.as_mut() {
            // One frame past the end so the session's queries are folded in.
            ops.force_tick(last_end + TimeDelta::from_secs(1));
            if want_watch {
                print!("\n{}", ops.render_dashboard());
            }
            println!("\n--- health ---");
            print!("{}", ops.health_report());
        }
        if want_trace {
            println!(
                "\n--- trace ({} spans) ---",
                fs.trace_snapshot().spans.len()
            );
            print!("{}", fs.trace_report());
        }
        if want_profile {
            let snap = fs.profile_snapshot();
            println!("\n--- profile ({} paths) ---", snap.activities.len());
            print!("{}", snap.render_top(10));
            let path = std::path::Path::new("target").join("quickstart.collapsed");
            match std::fs::write(&path, snap.render_collapsed()) {
                Ok(()) => println!("collapsed stacks -> {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }
}
