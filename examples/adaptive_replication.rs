//! Adaptive replication (paper §VII, Fig. 6): replay a synthetic
//! enterprise query trace under five replication policies and compare
//! transfer volumes against the offline optimum.
//!
//! ```text
//! cargo run --example adaptive_replication
//! ```

use megastream_flow::time::TimeDelta;
use megastream_replication::policy::ReplicationPolicy;
use megastream_replication::simulator::{replay_with_history, training_volumes, Access};
use megastream_workloads::querytrace::{AccessDistribution, QueryTraceConfig};

fn trace(seed: u64, partitions: usize, accesses: AccessDistribution) -> Vec<Access> {
    QueryTraceConfig {
        seed,
        partitions,
        accesses,
        mean_gap: TimeDelta::from_secs(30),
        median_result_bytes: 900_000,
    }
    .generate()
    .into_iter()
    .map(|a| Access {
        partition: a.partition,
        ts: a.ts,
        result_bytes: a.result_bytes,
    })
    .collect()
}

fn main() {
    // Partition sizes: 64 partitions of 4 MB each.
    let partitions = 64usize;
    let replication_cost = vec![4_000_000u64; partitions];

    for (label, accesses) in [
        (
            "geometric(p=0.8)  — memoryless",
            AccessDistribution::Geometric(0.8),
        ),
        (
            "exponential(μ=6)  — light tail",
            AccessDistribution::Exponential(6.0),
        ),
        (
            "pareto(α=1.1)     — heavy tail",
            AccessDistribution::Pareto(1.1),
        ),
        (
            "fixed(12)         — fully predictable",
            AccessDistribution::Fixed(12),
        ),
    ] {
        // The paper's setup: older (retired) partitions provide the volume
        // distribution that predicts access to newer ones. Train on one
        // trace, evaluate on a fresh one from the same distribution.
        let training = trace(1, partitions, accesses);
        let history = training_volumes(&training, partitions);
        let eval = trace(7, partitions, accesses);

        println!(
            "== access distribution: {label} ({} accesses) ==",
            eval.len()
        );
        println!(
            "{:<20} {:>14} {:>14} {:>14} {:>10} {:>8}",
            "policy", "shipped B", "replication B", "total B", "replicas", "ratio"
        );
        for policy in [
            ReplicationPolicy::Never,
            ReplicationPolicy::Always,
            ReplicationPolicy::BreakEven { factor: 1.0 },
            ReplicationPolicy::Randomized { seed: 3 },
            ReplicationPolicy::DistributionAware { min_samples: 16 },
        ] {
            let report = replay_with_history(&eval, &replication_cost, &policy, &history);
            println!(
                "{:<20} {:>14} {:>14} {:>14} {:>10} {:>8.3}",
                report.policy,
                report.shipped_bytes,
                report.replication_bytes,
                report.total_bytes(),
                report.replicated_partitions,
                report.competitive_ratio()
            );
        }
        println!();
    }

    println!("ratio = total transfer volume / offline optimum (clairvoyant per-partition choice).");
    println!("break-even is guaranteed ≤ 2 + one-query overshoot; distribution-aware");
    println!("learns the trace's volume distribution online and undercuts it on average.");
}
