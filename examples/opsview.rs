//! Live terminal dashboard over a chaos deployment — the ops plane
//! end to end (sampler → health rules → dashboard/exposition).
//!
//! Three regions of two routers each feed the hierarchy for five
//! simulated minutes while region-1's NOC uplink is severed for the
//! window [90 s, 210 s). A standing `TOPK` query runs every 15 simulated
//! seconds with `DegradationPolicy::Partial`, so the query plane's
//! latency and completeness series stay populated — completeness dips
//! while region-1 is unreachable and recovers after the flush.
//!
//! ```text
//! cargo run --example opsview              # a dashboard frame every 30 s
//! cargo run --example opsview -- --live    # redraw in place (ANSI clear)
//! cargo run --example opsview -- --profile # + flamegraph profile at exit
//! ```
//!
//! The run ends with the final dashboard, the health report with the
//! full alert log, and a sample of the Prometheus exposition.

use megastream::flowstream::{DegradationPolicy, Flowstream, FlowstreamConfig};
use megastream::ops::OpsPlane;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_netsim::FaultPlan;
use megastream_telemetry::{Profiler, Telemetry};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

fn main() {
    let live = std::env::args().any(|a| a == "--live");
    let want_profile = std::env::args().any(|a| a == "--profile");
    let tel = Telemetry::new();
    let profiler = if want_profile {
        Profiler::new()
    } else {
        Profiler::disabled()
    };
    let mut fs = Flowstream::new(3, 2, FlowstreamConfig::default())
        .with_telemetry(&tel)
        .with_profiler(&profiler);
    let mut plan = FaultPlan::seeded(7);
    plan.link_down(
        fs.region_node(1),
        fs.noc_node(),
        Timestamp::from_secs(90),
        Timestamp::from_secs(210),
    );
    fs.network_mut().install_faults(plan);
    let mut ops = OpsPlane::standard(&tel).expect("telemetry is enabled");

    println!("opsview: 3 regions x 2 routers, 5 min of traffic");
    println!("chaos:   region-1 uplink down for [90 s, 210 s)\n");

    let mut last_query_s = 0u64;
    let mut last_end = Timestamp::ZERO;
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 7,
        flows_per_sec: 400.0,
        duration: TimeDelta::from_mins(5),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&rec);
        last_end = last_end.max(rec.ts);
        if ops.tick(rec.ts) {
            let s = rec.ts.as_micros() / 1_000_000;
            // A standing query keeps the query plane's latency and
            // completeness series moving; Partial answers what it can
            // while region-1 is severed.
            if s >= last_query_s + 15 {
                last_query_s = s;
                let _ = fs.query_with_policy("SELECT TOPK 3 FROM ALL", DegradationPolicy::Partial);
            }
            if ops.sampler().frames().is_multiple_of(30) {
                if live {
                    print!("\x1b[2J\x1b[H");
                }
                println!("t = {s} s");
                print!("{}", ops.render_dashboard());
                println!();
            }
        }
    }
    fs.finish();
    // Frames past the last rotation so post-recovery flushes (and the
    // alerts back to Healthy) are observed.
    for s in 1..=4u64 {
        ops.force_tick(last_end + TimeDelta::from_secs(s));
    }

    if live {
        print!("\x1b[2J\x1b[H");
    }
    println!("=== final dashboard ===");
    print!("{}", ops.render_dashboard());
    println!("\n=== health ===");
    print!("{}", ops.health_report());
    println!("\n=== prometheus exposition (first lines) ===");
    for line in tel.snapshot().render_prometheus().lines().take(10) {
        println!("{line}");
    }
    println!("...");
    if want_profile {
        let snap = fs.profile_snapshot();
        println!("\n=== profile ({} paths) ===", snap.activities.len());
        print!("{}", snap.render_top(10));
        let path = std::path::Path::new("target").join("opsview.collapsed");
        match std::fs::write(&path, snap.render_collapsed()) {
            Ok(()) => println!("collapsed stacks -> {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
