//! Network monitoring with Flowstream (paper Fig. 5 + §II-B).
//!
//! Two regions of routers feed per-region data stores running Flowtree
//! aggregators. A DDoS is injected mid-trace; the operator investigates
//! interactively with FlowQL, and a DDoS-detection application plus a
//! flow-score trigger close the fast control loop.
//!
//! ```text
//! cargo run --example network_monitoring
//! cargo run --example network_monitoring -- --stats     # + telemetry report
//! cargo run --example network_monitoring -- --trace     # + causal span trees
//! cargo run --example network_monitoring -- --chaos     # + mid-run uplink outage
//! cargo run --example network_monitoring -- --threads 4 # parallel data plane
//! cargo run --example network_monitoring -- --health    # + live health alerts
//! cargo run --example network_monitoring -- --watch     # + periodic dashboards
//! cargo run --example network_monitoring -- --profile   # + flamegraph profile
//! ```
//!
//! `--chaos --health` shows the ops plane reacting live: the flowstream
//! component flips Degraded when region-1's spill buffer fills during the
//! outage window and recovers to Healthy after the flush.

use megastream::application::{AppDirective, Application, DdosDetectionApp};
use megastream::flowstream::{DegradationPolicy, Flowstream, FlowstreamConfig};
use megastream::ops::OpsPlane;
use megastream::Parallelism;
use megastream_datastore::summary::Summary;
use megastream_flow::addr::Ipv4Addr;
use megastream_flow::mask::GeneralizationSchema;
use megastream_flow::score::Popularity;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_netsim::FaultPlan;
use megastream_telemetry::{Profiler, Telemetry, Tracer};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator, TrafficEvent};

/// The operator queries during the outage: `Partial` answers what it can
/// (annotated), `FailFast` refuses — both name the severed region.
fn mid_outage_session(fs: &Flowstream) {
    let q = "SELECT QUERY FROM ALL WHERE dst_ip = 100.64.0.1";
    println!("--- mid-outage (unreachable: {:?}) ---", {
        fs.unreachable_locations().into_iter().collect::<Vec<_>>()
    });
    println!("flowql> {q}  (degradation = partial)");
    match fs.query_with_policy(q, DegradationPolicy::Partial) {
        Ok(result) => print!("{result}"),
        Err(e) => println!("error: {e}"),
    }
    println!("flowql> {q}  (degradation = fail-fast)");
    match fs.query_with_policy(q, DegradationPolicy::FailFast) {
        Ok(result) => print!("{result}"),
        Err(e) => println!("error: {e}"),
    }
    println!();
}

/// `--threads N` from the command line, or the `Auto` default.
fn parallelism_flag() -> Parallelism {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            let n = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--threads needs a positive number, e.g. --threads 4");
                    std::process::exit(2);
                });
            Parallelism::Threads(n)
        }
        None => Parallelism::default(),
    }
}

fn main() {
    let stats = std::env::args().any(|a| a == "--stats");
    let want_trace = std::env::args().any(|a| a == "--trace");
    let chaos = std::env::args().any(|a| a == "--chaos");
    let want_health = std::env::args().any(|a| a == "--health");
    let want_watch = std::env::args().any(|a| a == "--watch");
    let parallelism = parallelism_flag();
    let tel = if stats || want_health || want_watch {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let tracer = if want_trace {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    let want_profile = std::env::args().any(|a| a == "--profile");
    let profiler = if want_profile {
        Profiler::new()
    } else {
        Profiler::disabled()
    };
    let victim: Ipv4Addr = "100.64.0.1".parse().unwrap();
    let attack_window =
        TimeWindow::starting_at(Timestamp::from_secs(120), TimeDelta::from_secs(60));

    // --- data plane: 2 regions × 4 routers, 5 minutes of traffic with an
    // injected DDoS in minute 3.
    let trace = FlowTraceGenerator::new(FlowTraceConfig {
        seed: 42,
        flows_per_sec: 300.0,
        duration: TimeDelta::from_mins(5),
        events: vec![TrafficEvent::Ddos {
            window: attack_window,
            target: victim,
            target_port: 53,
            flows_per_sec: 2_000.0,
        }],
        ..Default::default()
    });

    // Domain knowledge (property P5): for attack investigation, configure
    // the trees to keep *destinations* specific under compression — spoofed
    // sources carry no information, the victim address is the answer.
    let mut fs = Flowstream::new(
        2,
        4,
        FlowstreamConfig {
            schema: GeneralizationSchema::dst_preserving(),
            parallelism,
            ..Default::default()
        },
    )
    .with_telemetry(&tel)
    .with_tracer(&tracer)
    .with_profiler(&profiler);

    // --- chaos mode: region 1 loses its NOC uplink during the attack
    // minute. Exports spill locally and re-aggregate after recovery; the
    // operator sees annotated partial answers in the meantime.
    if chaos {
        let mut plan = FaultPlan::seeded(42);
        plan.link_down(
            fs.region_node(1),
            fs.noc_node(),
            Timestamp::from_secs(90),
            Timestamp::from_secs(210),
        );
        fs.network_mut().install_faults(plan);
        println!("chaos: region-1 uplink down for [90 s, 210 s)\n");
    }

    // --health / --watch: the ops plane samples the registry once per
    // simulated second, folds the windows through the standard health
    // rules, prints alerts as they fire, and (--watch) renders a dashboard
    // frame every 30 simulated seconds.
    let mut ops = if want_health || want_watch {
        OpsPlane::standard(&tel)
    } else {
        None
    };
    let mut alerts_printed = 0usize;
    let mut n = 0u64;
    let mut probed = false;
    let mut last_end = Timestamp::ZERO;
    for rec in trace {
        if chaos && !probed && rec.ts >= Timestamp::from_secs(150) {
            probed = true;
            mid_outage_session(&fs);
        }
        fs.ingest_round_robin(&rec);
        last_end = last_end.max(rec.ts);
        n += 1;
        if let Some(ops) = ops.as_mut() {
            if ops.tick(rec.ts) {
                for alert in &ops.health().alerts()[alerts_printed..] {
                    println!("health: {alert}");
                }
                alerts_printed = ops.health().alerts().len();
                if want_watch && ops.sampler().frames().is_multiple_of(30) {
                    print!("{}", ops.render_dashboard());
                }
            }
        }
    }
    fs.finish();
    if let Some(ops) = ops.as_mut() {
        // A final frame past the last rotation, so post-recovery flushes
        // (and the alert back to Healthy) are observed.
        for s in 1..=4u64 {
            ops.force_tick(last_end + TimeDelta::from_secs(s));
        }
        for alert in &ops.health().alerts()[alerts_printed..] {
            println!("health: {alert}");
        }
        println!("\n--- health ---");
        print!("{}", ops.health_report());
    }
    println!(
        "ingested {n} flow records into {} region stores ({} summaries indexed, {} bytes moved)\n",
        fs.regions(),
        fs.flowdb().len(),
        fs.network().total_bytes()
    );

    // --- the operator's FlowQL session.
    let session = [
        // What are the heavy flows overall?
        "SELECT TOPK 5 FROM ALL WHERE location = \"region-0\"",
        // Anything unusual in minute 3?
        "SELECT HHH 20000 FROM [120, 180) WHERE location = \"region-0\"",
        // Drill into the victim.
        "SELECT QUERY FROM [120, 180) WHERE location = \"region-0\" AND dst_ip = 100.64.0.1",
        // Compare against the minute before the attack.
        "SELECT QUERY FROM [60, 120) WHERE location = \"region-0\" AND dst_ip = 100.64.0.1",
        // Is the other region seeing it too?
        "SELECT QUERY FROM [120, 180) WHERE location = \"region-1\" AND dst_ip = 100.64.0.1",
    ];
    for q in session {
        println!("flowql> {q}");
        match fs.query(q) {
            Ok(result) => print!("{result}"),
            Err(e) => println!("error: {e}"),
        }
        println!();
    }

    // --- the application view: DDoS detection over the indexed summaries.
    let mut app = DdosDetectionApp::new(Popularity::new(10_000));
    let mut directives = Vec::new();
    for g in 0..fs.regions() {
        let store = fs.region_store(g);
        for summary in store.summaries().iter() {
            if matches!(summary.summary, Summary::Flowtree(_)) {
                directives.extend(app.on_summary(summary, summary.window.end));
            }
        }
    }
    println!("--- ddos-detection application ---");
    for d in &directives {
        match d {
            AppDirective::Report(msg) => println!("report:   {msg}"),
            AppDirective::MitigateFlow { key, reason } => {
                println!("mitigate: {key}  ({reason})")
            }
            AppDirective::RequestTrigger { condition, .. } => {
                println!("trigger:  install {condition:?}")
            }
            other => println!("other:    {other:?}"),
        }
    }
    assert!(
        directives
            .iter()
            .any(|d| matches!(d, AppDirective::MitigateFlow { .. })),
        "the injected attack must be detected"
    );
    println!("\nvictims identified: {}", app.victims().count());

    // --- fault accounting: what did the outage cost, and did we recover?
    if chaos {
        let s = fs.stats();
        println!("--- fault accounting ---");
        println!("export retries:    {}", s.export_retries);
        println!("summaries spilled: {}", s.spilled_summaries);
        println!("summaries flushed: {}", s.flushed_summaries);
        println!("summaries dropped: {}", s.dropped_summaries);
        println!("partial queries:   {}", s.partial_queries);
        println!(
            "unreachable now:   {:?}\n",
            fs.unreachable_locations().into_iter().collect::<Vec<_>>()
        );
    }

    // --- operations view: what did that run cost, per component?
    if stats {
        let s = fs.stats();
        println!("\n--- operating stats ---");
        println!("flows ingested:    {}", s.flows);
        println!("raw bytes:         {}", s.raw_bytes);
        println!("region epochs:     {}", s.region_epochs);
        println!("exported bytes:    {}", s.exported_bytes);
        println!("flowdb summaries:  {}", s.flowdb_summaries);
        println!("network bytes:     {}", s.network_bytes);
        println!("\n--- telemetry ---");
        print!("{}", fs.telemetry_report());
    }

    // --- causality view: the span tree of every query in the session.
    if want_trace {
        println!(
            "\n--- trace ({} spans across {} queries) ---",
            fs.trace_snapshot().spans.len(),
            fs.trace_snapshot().trace_ids().len()
        );
        print!("{}", fs.trace_report());
    }

    // --- cost view: where the run's time went, and which FlowQL queries
    // did the most deterministic work.
    if want_profile {
        let snap = fs.profile_snapshot();
        println!("\n--- profile ({} paths) ---", snap.activities.len());
        print!("{}", snap.render_top(10));
        println!("\n--- heaviest queries (by work units) ---");
        for (q, work) in fs.heavy_queries(3) {
            println!("{work:>12}  {q}");
        }
        let path = std::path::Path::new("target").join("network_monitoring.collapsed");
        match std::fs::write(&path, snap.render_collapsed()) {
            Ok(()) => println!("collapsed stacks -> {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
