//! An interactive FlowQL shell over a generated two-region trace
//! (paper Fig. 5 ⑤: "answer user queries via the FlowQL API").
//!
//! ```text
//! cargo run --example flowql_repl
//! cargo run --example flowql_repl -- --trace   # span tree after each query
//! flowql> SELECT TOPK 5 FROM ALL WHERE location = "region-0"
//! flowql> SELECT QUERY FROM [0, 120) WHERE src_ip = 10.0.0.0/8
//! flowql> :explain SELECT TOPK 5 FROM ALL WHERE location = "region-0"
//! flowql> :health
//! flowql> :metrics prom
//! flowql> \help
//! ```
//!
//! Reads queries from stdin; when stdin is closed (e.g. piped `echo`), a
//! small demo session runs instead.

use std::io::{self, BufRead, Write};

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream::ops::OpsPlane;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_telemetry::{Profiler, Telemetry, Tracer};
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

const HELP: &str = "\
FlowQL grammar:
  SELECT <op> FROM <periods> [WHERE <cond> [AND <cond>]...] [GROUP BY location]
  op      := QUERY | TOPK <k> | ABOVE <x> | HHH <x> | DRILLDOWN
  periods := ALL | [<start_s>, <end_s>) , ...
  cond    := location = \"<name>\"
           | src_ip = <a.b.c.d[/len]> | dst_ip = <a.b.c.d[/len]>
           | proto = <n> | src_port = <n> | dst_port = <n>
meta commands: \\help  \\locations  \\windows <location>
               :explain <query>  (EXPLAIN ANALYZE — result + span tree)
               :health           (component states + alert log)
               :metrics [prom]   (metric snapshot — text or Prometheus)
               :profile [<file>] (top activities + heaviest queries;
                                  with <file>, write collapsed stacks)
               \\quit";

fn main() {
    let trace = std::env::args().any(|a| a == "--trace");
    // Build a deployment worth querying: 2 regions × 4 routers, 4 minutes.
    eprintln!("generating trace and building flowstream (2 regions x 4 routers)...");
    let tracer = if trace {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    // Telemetry and the profiler are always on in the shell so `:health`
    // / `:metrics` / `:profile` have something to show; the ops plane
    // samples once per simulated second.
    let tel = Telemetry::new();
    let profiler = Profiler::new();
    let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default())
        .with_telemetry(&tel)
        .with_tracer(&tracer)
        .with_profiler(&profiler);
    let mut ops = OpsPlane::standard(&tel).expect("telemetry is enabled");
    let mut clock = Timestamp::ZERO;
    for rec in FlowTraceGenerator::new(FlowTraceConfig {
        seed: 2026,
        flows_per_sec: 250.0,
        duration: TimeDelta::from_mins(4),
        ..Default::default()
    }) {
        fs.ingest_round_robin(&rec);
        clock = clock.max(rec.ts);
        ops.tick(rec.ts);
    }
    fs.finish();
    eprintln!(
        "{} summaries indexed from locations {:?}\n{HELP}\n",
        fs.flowdb().len(),
        fs.flowdb().locations()
    );

    let stdin = io::stdin();
    let mut saw_input = false;
    print!("flowql> ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        saw_input = true;
        let line = line.trim();
        match line {
            "" => {}
            "\\quit" | "\\q" | "exit" => break,
            "\\help" | "\\h" => println!("{HELP}"),
            "\\locations" => println!("{:?}", fs.flowdb().locations()),
            _ if line.starts_with("\\windows") => {
                let loc = line.trim_start_matches("\\windows").trim();
                for w in fs.flowdb().windows_of(loc) {
                    println!("{w}");
                }
            }
            ":health" | "\\health" => {
                // Fold the queries run since the last frame into a fresh
                // one, then report.
                clock += TimeDelta::from_secs(1);
                ops.force_tick(clock);
                print!("{}", ops.health_report());
            }
            ":metrics" | "\\metrics" => {
                clock += TimeDelta::from_secs(1);
                ops.force_tick(clock);
                print!("{}", tel.snapshot().render_text());
            }
            ":metrics prom" | "\\metrics prom" => {
                clock += TimeDelta::from_secs(1);
                ops.force_tick(clock);
                print!("{}", tel.snapshot().render_prometheus());
            }
            _ if line.starts_with(":profile") || line.starts_with("\\profile") => {
                let file = line
                    .trim_start_matches(":profile")
                    .trim_start_matches("\\profile")
                    .trim();
                let snap = fs.profile_snapshot();
                print!("{}", snap.render_top(10));
                println!("heaviest queries (by work units):");
                for (q, work) in fs.heavy_queries(5) {
                    println!("{work:>12}  {q}");
                }
                if !file.is_empty() {
                    match std::fs::write(file, snap.render_collapsed()) {
                        Ok(()) => println!("collapsed stacks -> {file}"),
                        Err(e) => println!("could not write {file}: {e}"),
                    }
                }
            }
            _ if line.starts_with(":explain") || line.starts_with("\\explain") => {
                let q = line
                    .trim_start_matches(":explain")
                    .trim_start_matches("\\explain")
                    .trim();
                let (result, explanation) = fs.explain(q);
                match result {
                    Ok(result) => print!("{result}"),
                    Err(e) => println!("error: {e}"),
                }
                print!("{explanation}");
            }
            query => {
                match fs.query(query) {
                    Ok(result) => print!("{result}"),
                    Err(e) => println!("error: {e}"),
                }
                if trace {
                    print!("{}", fs.trace_report());
                    fs.tracer().clear();
                }
            }
        }
        print!("flowql> ");
        io::stdout().flush().ok();
    }
    println!();

    if !saw_input {
        // Non-interactive fallback: run a demo session.
        println!("(no stdin — running demo session)\n");
        for q in [
            "SELECT TOPK 5 FROM ALL WHERE location = \"region-0\"",
            "SELECT QUERY FROM [0, 120) WHERE src_ip = 10.0.0.0/8 AND location = \"region-0\"",
            "SELECT HHH 5000 FROM ALL WHERE location = \"region-1\"",
            "SELECT TOPK 2 FROM ALL GROUP BY location",
        ] {
            println!("flowql> {q}");
            match fs.query(q) {
                Ok(result) => println!("{result}"),
                Err(e) => println!("error: {e}\n"),
            }
            if trace {
                print!("{}", fs.trace_report());
                fs.tracer().clear();
            }
        }
        let explain_q = "SELECT TOPK 3 FROM ALL WHERE location = \"region-0\"";
        println!("flowql> :explain {explain_q}");
        let (result, explanation) = fs.explain(explain_q);
        if let Ok(result) = result {
            println!("{result}");
        }
        print!("{explanation}");
        println!("flowql> :health");
        clock += TimeDelta::from_secs(1);
        ops.force_tick(clock);
        print!("{}", ops.health_report());
        println!("flowql> :metrics prom");
        clock += TimeDelta::from_secs(1);
        ops.force_tick(clock);
        for line in tel.snapshot().render_prometheus().lines().take(12) {
            println!("{line}");
        }
        println!("...");
        println!("flowql> :profile");
        print!("{}", fs.profile_snapshot().render_top(5));
        println!("heaviest queries (by work units):");
        for (q, work) in fs.heavy_queries(3) {
            println!("{work:>12}  {q}");
        }
    }
}
