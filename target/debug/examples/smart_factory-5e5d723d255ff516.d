/root/repo/target/debug/examples/smart_factory-5e5d723d255ff516.d: examples/smart_factory.rs

/root/repo/target/debug/examples/smart_factory-5e5d723d255ff516: examples/smart_factory.rs

examples/smart_factory.rs:
