/root/repo/target/debug/examples/flowql_repl-30f1022830b74566.d: examples/flowql_repl.rs

/root/repo/target/debug/examples/flowql_repl-30f1022830b74566: examples/flowql_repl.rs

examples/flowql_repl.rs:
