/root/repo/target/debug/examples/smart_factory-fbc46beb75730e55.d: examples/smart_factory.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_factory-fbc46beb75730e55.rmeta: examples/smart_factory.rs Cargo.toml

examples/smart_factory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
