/root/repo/target/debug/examples/network_monitoring-51d096d1adff7cd0.d: examples/network_monitoring.rs

/root/repo/target/debug/examples/network_monitoring-51d096d1adff7cd0: examples/network_monitoring.rs

examples/network_monitoring.rs:
