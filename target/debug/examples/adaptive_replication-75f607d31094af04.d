/root/repo/target/debug/examples/adaptive_replication-75f607d31094af04.d: examples/adaptive_replication.rs

/root/repo/target/debug/examples/adaptive_replication-75f607d31094af04: examples/adaptive_replication.rs

examples/adaptive_replication.rs:
