/root/repo/target/debug/examples/adaptive_replication-3bcbb9966b7a2051.d: examples/adaptive_replication.rs

/root/repo/target/debug/examples/adaptive_replication-3bcbb9966b7a2051: examples/adaptive_replication.rs

examples/adaptive_replication.rs:
