/root/repo/target/debug/examples/smart_factory-aec8eabbdbae83f6.d: examples/smart_factory.rs

/root/repo/target/debug/examples/smart_factory-aec8eabbdbae83f6: examples/smart_factory.rs

examples/smart_factory.rs:
