/root/repo/target/debug/examples/quickstart-6f530034e8235aa8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6f530034e8235aa8: examples/quickstart.rs

examples/quickstart.rs:
