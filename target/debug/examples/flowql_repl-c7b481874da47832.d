/root/repo/target/debug/examples/flowql_repl-c7b481874da47832.d: examples/flowql_repl.rs Cargo.toml

/root/repo/target/debug/examples/libflowql_repl-c7b481874da47832.rmeta: examples/flowql_repl.rs Cargo.toml

examples/flowql_repl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
