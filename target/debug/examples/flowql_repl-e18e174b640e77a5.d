/root/repo/target/debug/examples/flowql_repl-e18e174b640e77a5.d: examples/flowql_repl.rs

/root/repo/target/debug/examples/flowql_repl-e18e174b640e77a5: examples/flowql_repl.rs

examples/flowql_repl.rs:
