/root/repo/target/debug/examples/adaptive_replication-d00f18d72dd0942c.d: examples/adaptive_replication.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_replication-d00f18d72dd0942c.rmeta: examples/adaptive_replication.rs Cargo.toml

examples/adaptive_replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
