/root/repo/target/debug/examples/quickstart-d96e5702661aa3ea.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d96e5702661aa3ea.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
