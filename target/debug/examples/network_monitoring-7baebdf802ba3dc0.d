/root/repo/target/debug/examples/network_monitoring-7baebdf802ba3dc0.d: examples/network_monitoring.rs

/root/repo/target/debug/examples/network_monitoring-7baebdf802ba3dc0: examples/network_monitoring.rs

examples/network_monitoring.rs:
