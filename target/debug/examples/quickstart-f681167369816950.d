/root/repo/target/debug/examples/quickstart-f681167369816950.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f681167369816950: examples/quickstart.rs

examples/quickstart.rs:
