/root/repo/target/debug/examples/network_monitoring-a98e2a14e339e41f.d: examples/network_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libnetwork_monitoring-a98e2a14e339e41f.rmeta: examples/network_monitoring.rs Cargo.toml

examples/network_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
