/root/repo/target/debug/deps/megastream_bench-6dd2d52813bb3c49.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/megastream_bench-6dd2d52813bb3c49: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
