/root/repo/target/debug/deps/megastream_replication-e1b1c96408fbc9d7.d: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

/root/repo/target/debug/deps/libmegastream_replication-e1b1c96408fbc9d7.rmeta: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

crates/replication/src/lib.rs:
crates/replication/src/policy.rs:
crates/replication/src/simulator.rs:
crates/replication/src/skirental.rs:
crates/replication/src/tracker.rs:
