/root/repo/target/debug/deps/megastream_datastore-8b4a9de88d7635a3.d: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/debug/deps/libmegastream_datastore-8b4a9de88d7635a3.rmeta: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

crates/datastore/src/lib.rs:
crates/datastore/src/aggregator.rs:
crates/datastore/src/storage.rs:
crates/datastore/src/store.rs:
crates/datastore/src/summary.rs:
crates/datastore/src/trigger.rs:
