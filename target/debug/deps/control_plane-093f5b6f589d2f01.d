/root/repo/target/debug/deps/control_plane-093f5b6f589d2f01.d: tests/control_plane.rs

/root/repo/target/debug/deps/control_plane-093f5b6f589d2f01: tests/control_plane.rs

tests/control_plane.rs:
