/root/repo/target/debug/deps/megastream_analytics-9c0c932c3652a037.d: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

/root/repo/target/debug/deps/libmegastream_analytics-9c0c932c3652a037.rlib: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

/root/repo/target/debug/deps/libmegastream_analytics-9c0c932c3652a037.rmeta: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

crates/analytics/src/lib.rs:
crates/analytics/src/inference.rs:
crates/analytics/src/pipeline.rs:
crates/analytics/src/transfer.rs:
