/root/repo/target/debug/deps/megastream_datastore-0db8f94a907ef8b9.d: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/debug/deps/libmegastream_datastore-0db8f94a907ef8b9.rmeta: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

crates/datastore/src/lib.rs:
crates/datastore/src/aggregator.rs:
crates/datastore/src/storage.rs:
crates/datastore/src/store.rs:
crates/datastore/src/summary.rs:
crates/datastore/src/trigger.rs:
