/root/repo/target/debug/deps/megastream_manager-39542483288e5c14.d: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/debug/deps/megastream_manager-39542483288e5c14: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

crates/manager/src/lib.rs:
crates/manager/src/manager.rs:
crates/manager/src/placement.rs:
crates/manager/src/replication_ctl.rs:
crates/manager/src/requirements.rs:
crates/manager/src/resources.rs:
