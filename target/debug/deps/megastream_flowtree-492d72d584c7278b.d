/root/repo/target/debug/deps/megastream_flowtree-492d72d584c7278b.d: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

/root/repo/target/debug/deps/libmegastream_flowtree-492d72d584c7278b.rmeta: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

crates/flowtree/src/lib.rs:
crates/flowtree/src/builder.rs:
crates/flowtree/src/ops.rs:
crates/flowtree/src/query.rs:
crates/flowtree/src/tree.rs:
