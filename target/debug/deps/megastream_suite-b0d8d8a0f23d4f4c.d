/root/repo/target/debug/deps/megastream_suite-b0d8d8a0f23d4f4c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_suite-b0d8d8a0f23d4f4c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
