/root/repo/target/debug/deps/flowstream_e2e-99fbb943d451bc54.d: tests/flowstream_e2e.rs

/root/repo/target/debug/deps/flowstream_e2e-99fbb943d451bc54: tests/flowstream_e2e.rs

tests/flowstream_e2e.rs:
