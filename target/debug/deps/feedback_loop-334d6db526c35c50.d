/root/repo/target/debug/deps/feedback_loop-334d6db526c35c50.d: tests/feedback_loop.rs

/root/repo/target/debug/deps/feedback_loop-334d6db526c35c50: tests/feedback_loop.rs

tests/feedback_loop.rs:
