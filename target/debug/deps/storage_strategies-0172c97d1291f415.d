/root/repo/target/debug/deps/storage_strategies-0172c97d1291f415.d: tests/storage_strategies.rs

/root/repo/target/debug/deps/storage_strategies-0172c97d1291f415: tests/storage_strategies.rs

tests/storage_strategies.rs:
