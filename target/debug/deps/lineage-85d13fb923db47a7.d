/root/repo/target/debug/deps/lineage-85d13fb923db47a7.d: tests/lineage.rs

/root/repo/target/debug/deps/lineage-85d13fb923db47a7: tests/lineage.rs

tests/lineage.rs:
