/root/repo/target/debug/deps/e5_control_plane-1f3e4b58517cdcf0.d: crates/bench/benches/e5_control_plane.rs Cargo.toml

/root/repo/target/debug/deps/libe5_control_plane-1f3e4b58517cdcf0.rmeta: crates/bench/benches/e5_control_plane.rs Cargo.toml

crates/bench/benches/e5_control_plane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
