/root/repo/target/debug/deps/megastream_replication-00ff2c4a1a3f1082.d: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

/root/repo/target/debug/deps/megastream_replication-00ff2c4a1a3f1082: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

crates/replication/src/lib.rs:
crates/replication/src/policy.rs:
crates/replication/src/simulator.rs:
crates/replication/src/skirental.rs:
crates/replication/src/tracker.rs:
