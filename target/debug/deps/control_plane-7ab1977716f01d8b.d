/root/repo/target/debug/deps/control_plane-7ab1977716f01d8b.d: tests/control_plane.rs

/root/repo/target/debug/deps/control_plane-7ab1977716f01d8b: tests/control_plane.rs

tests/control_plane.rs:
