/root/repo/target/debug/deps/e9_toy_primitive-c073958389b56b0c.d: crates/bench/benches/e9_toy_primitive.rs Cargo.toml

/root/repo/target/debug/deps/libe9_toy_primitive-c073958389b56b0c.rmeta: crates/bench/benches/e9_toy_primitive.rs Cargo.toml

crates/bench/benches/e9_toy_primitive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
