/root/repo/target/debug/deps/megastream-80a1f0fd96a1b490.d: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/debug/deps/libmegastream-80a1f0fd96a1b490.rmeta: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

crates/core/src/lib.rs:
crates/core/src/application.rs:
crates/core/src/controller.rs:
crates/core/src/flowstream.rs:
crates/core/src/hierarchy.rs:
