/root/repo/target/debug/deps/megastream_flowdb-291f0370345c492e.d: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

/root/repo/target/debug/deps/libmegastream_flowdb-291f0370345c492e.rlib: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

/root/repo/target/debug/deps/libmegastream_flowdb-291f0370345c492e.rmeta: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

crates/flowdb/src/lib.rs:
crates/flowdb/src/ast.rs:
crates/flowdb/src/db.rs:
crates/flowdb/src/exec.rs:
crates/flowdb/src/lexer.rs:
crates/flowdb/src/parser.rs:
