/root/repo/target/debug/deps/e11_telemetry_overhead-0ce94e901f4e06ea.d: crates/bench/benches/e11_telemetry_overhead.rs

/root/repo/target/debug/deps/libe11_telemetry_overhead-0ce94e901f4e06ea.rmeta: crates/bench/benches/e11_telemetry_overhead.rs

crates/bench/benches/e11_telemetry_overhead.rs:
