/root/repo/target/debug/deps/megastream-633521ab24680eaa.d: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/debug/deps/libmegastream-633521ab24680eaa.rlib: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/debug/deps/libmegastream-633521ab24680eaa.rmeta: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

crates/core/src/lib.rs:
crates/core/src/application.rs:
crates/core/src/controller.rs:
crates/core/src/flowstream.rs:
crates/core/src/hierarchy.rs:
