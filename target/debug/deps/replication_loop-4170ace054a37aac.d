/root/repo/target/debug/deps/replication_loop-4170ace054a37aac.d: tests/replication_loop.rs

/root/repo/target/debug/deps/replication_loop-4170ace054a37aac: tests/replication_loop.rs

tests/replication_loop.rs:
