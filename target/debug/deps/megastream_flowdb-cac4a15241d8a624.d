/root/repo/target/debug/deps/megastream_flowdb-cac4a15241d8a624.d: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_flowdb-cac4a15241d8a624.rmeta: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs Cargo.toml

crates/flowdb/src/lib.rs:
crates/flowdb/src/ast.rs:
crates/flowdb/src/db.rs:
crates/flowdb/src/exec.rs:
crates/flowdb/src/lexer.rs:
crates/flowdb/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
