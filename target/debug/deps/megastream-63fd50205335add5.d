/root/repo/target/debug/deps/megastream-63fd50205335add5.d: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/debug/deps/libmegastream-63fd50205335add5.rlib: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/debug/deps/libmegastream-63fd50205335add5.rmeta: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

crates/core/src/lib.rs:
crates/core/src/application.rs:
crates/core/src/controller.rs:
crates/core/src/flowstream.rs:
crates/core/src/hierarchy.rs:
