/root/repo/target/debug/deps/megastream_manager-d6614c112ef2ea4c.d: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/debug/deps/libmegastream_manager-d6614c112ef2ea4c.rmeta: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

crates/manager/src/lib.rs:
crates/manager/src/manager.rs:
crates/manager/src/placement.rs:
crates/manager/src/replication_ctl.rs:
crates/manager/src/requirements.rs:
crates/manager/src/resources.rs:
