/root/repo/target/debug/deps/lineage-e19c0cdac74c3a65.d: tests/lineage.rs

/root/repo/target/debug/deps/lineage-e19c0cdac74c3a65: tests/lineage.rs

tests/lineage.rs:
