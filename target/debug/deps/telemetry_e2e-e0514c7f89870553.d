/root/repo/target/debug/deps/telemetry_e2e-e0514c7f89870553.d: tests/telemetry_e2e.rs

/root/repo/target/debug/deps/telemetry_e2e-e0514c7f89870553: tests/telemetry_e2e.rs

tests/telemetry_e2e.rs:
