/root/repo/target/debug/deps/e3_hierarchy-886a090e5a91bdfa.d: crates/bench/benches/e3_hierarchy.rs

/root/repo/target/debug/deps/libe3_hierarchy-886a090e5a91bdfa.rmeta: crates/bench/benches/e3_hierarchy.rs

crates/bench/benches/e3_hierarchy.rs:
