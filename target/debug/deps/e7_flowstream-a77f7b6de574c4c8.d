/root/repo/target/debug/deps/e7_flowstream-a77f7b6de574c4c8.d: crates/bench/benches/e7_flowstream.rs

/root/repo/target/debug/deps/libe7_flowstream-a77f7b6de574c4c8.rmeta: crates/bench/benches/e7_flowstream.rs

crates/bench/benches/e7_flowstream.rs:
