/root/repo/target/debug/deps/megastream_suite-23522505fe151575.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_suite-23522505fe151575.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
