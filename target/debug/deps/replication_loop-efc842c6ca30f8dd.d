/root/repo/target/debug/deps/replication_loop-efc842c6ca30f8dd.d: tests/replication_loop.rs

/root/repo/target/debug/deps/replication_loop-efc842c6ca30f8dd: tests/replication_loop.rs

tests/replication_loop.rs:
