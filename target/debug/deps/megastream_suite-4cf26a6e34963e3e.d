/root/repo/target/debug/deps/megastream_suite-4cf26a6e34963e3e.d: src/lib.rs

/root/repo/target/debug/deps/libmegastream_suite-4cf26a6e34963e3e.rlib: src/lib.rs

/root/repo/target/debug/deps/libmegastream_suite-4cf26a6e34963e3e.rmeta: src/lib.rs

src/lib.rs:
