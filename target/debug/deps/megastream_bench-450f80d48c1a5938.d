/root/repo/target/debug/deps/megastream_bench-450f80d48c1a5938.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmegastream_bench-450f80d48c1a5938.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmegastream_bench-450f80d48c1a5938.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
