/root/repo/target/debug/deps/megastream_netsim-4fb0b9641c22ab40.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/megastream_netsim-4fb0b9641c22ab40: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/event.rs:
crates/netsim/src/hierarchy.rs:
crates/netsim/src/topology.rs:
