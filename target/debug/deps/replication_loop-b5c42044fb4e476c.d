/root/repo/target/debug/deps/replication_loop-b5c42044fb4e476c.d: tests/replication_loop.rs Cargo.toml

/root/repo/target/debug/deps/libreplication_loop-b5c42044fb4e476c.rmeta: tests/replication_loop.rs Cargo.toml

tests/replication_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
