/root/repo/target/debug/deps/challenges-7b69215d6cdb99c6.d: tests/challenges.rs

/root/repo/target/debug/deps/challenges-7b69215d6cdb99c6: tests/challenges.rs

tests/challenges.rs:
