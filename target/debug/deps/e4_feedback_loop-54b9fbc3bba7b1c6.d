/root/repo/target/debug/deps/e4_feedback_loop-54b9fbc3bba7b1c6.d: crates/bench/benches/e4_feedback_loop.rs

/root/repo/target/debug/deps/libe4_feedback_loop-54b9fbc3bba7b1c6.rmeta: crates/bench/benches/e4_feedback_loop.rs

crates/bench/benches/e4_feedback_loop.rs:
