/root/repo/target/debug/deps/megastream_telemetry-01b73e3c6dac11ed.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmegastream_telemetry-01b73e3c6dac11ed.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
