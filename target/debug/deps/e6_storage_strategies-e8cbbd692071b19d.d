/root/repo/target/debug/deps/e6_storage_strategies-e8cbbd692071b19d.d: crates/bench/benches/e6_storage_strategies.rs

/root/repo/target/debug/deps/libe6_storage_strategies-e8cbbd692071b19d.rmeta: crates/bench/benches/e6_storage_strategies.rs

crates/bench/benches/e6_storage_strategies.rs:
