/root/repo/target/debug/deps/megastream_flowdb-9b3161c12a5df6ea.d: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

/root/repo/target/debug/deps/megastream_flowdb-9b3161c12a5df6ea: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

crates/flowdb/src/lib.rs:
crates/flowdb/src/ast.rs:
crates/flowdb/src/db.rs:
crates/flowdb/src/exec.rs:
crates/flowdb/src/lexer.rs:
crates/flowdb/src/parser.rs:
