/root/repo/target/debug/deps/megastream_manager-dd6d5339ff4b89d6.d: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/debug/deps/libmegastream_manager-dd6d5339ff4b89d6.rlib: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/debug/deps/libmegastream_manager-dd6d5339ff4b89d6.rmeta: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

crates/manager/src/lib.rs:
crates/manager/src/manager.rs:
crates/manager/src/placement.rs:
crates/manager/src/replication_ctl.rs:
crates/manager/src/requirements.rs:
crates/manager/src/resources.rs:
