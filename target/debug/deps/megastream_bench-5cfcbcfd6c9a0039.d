/root/repo/target/debug/deps/megastream_bench-5cfcbcfd6c9a0039.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmegastream_bench-5cfcbcfd6c9a0039.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmegastream_bench-5cfcbcfd6c9a0039.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
