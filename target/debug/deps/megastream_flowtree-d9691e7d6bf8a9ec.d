/root/repo/target/debug/deps/megastream_flowtree-d9691e7d6bf8a9ec.d: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

/root/repo/target/debug/deps/megastream_flowtree-d9691e7d6bf8a9ec: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

crates/flowtree/src/lib.rs:
crates/flowtree/src/builder.rs:
crates/flowtree/src/ops.rs:
crates/flowtree/src/query.rs:
crates/flowtree/src/tree.rs:
