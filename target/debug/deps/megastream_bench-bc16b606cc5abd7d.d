/root/repo/target/debug/deps/megastream_bench-bc16b606cc5abd7d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/megastream_bench-bc16b606cc5abd7d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
