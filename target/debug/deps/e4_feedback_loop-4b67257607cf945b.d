/root/repo/target/debug/deps/e4_feedback_loop-4b67257607cf945b.d: crates/bench/benches/e4_feedback_loop.rs Cargo.toml

/root/repo/target/debug/deps/libe4_feedback_loop-4b67257607cf945b.rmeta: crates/bench/benches/e4_feedback_loop.rs Cargo.toml

crates/bench/benches/e4_feedback_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
