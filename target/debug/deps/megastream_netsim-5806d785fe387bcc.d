/root/repo/target/debug/deps/megastream_netsim-5806d785fe387bcc.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libmegastream_netsim-5806d785fe387bcc.rmeta: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/event.rs:
crates/netsim/src/hierarchy.rs:
crates/netsim/src/topology.rs:
