/root/repo/target/debug/deps/megastream_workloads-233baa9984597597.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_workloads-233baa9984597597.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/factory.rs:
crates/workloads/src/netflow.rs:
crates/workloads/src/querytrace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
