/root/repo/target/debug/deps/megastream_workloads-308d12e607e47fdb.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

/root/repo/target/debug/deps/libmegastream_workloads-308d12e607e47fdb.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/factory.rs:
crates/workloads/src/netflow.rs:
crates/workloads/src/querytrace.rs:
