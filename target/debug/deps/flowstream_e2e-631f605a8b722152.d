/root/repo/target/debug/deps/flowstream_e2e-631f605a8b722152.d: tests/flowstream_e2e.rs

/root/repo/target/debug/deps/flowstream_e2e-631f605a8b722152: tests/flowstream_e2e.rs

tests/flowstream_e2e.rs:
