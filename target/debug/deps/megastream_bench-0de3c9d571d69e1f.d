/root/repo/target/debug/deps/megastream_bench-0de3c9d571d69e1f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmegastream_bench-0de3c9d571d69e1f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
