/root/repo/target/debug/deps/megastream_flow-ea879a0d19530122.d: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs

/root/repo/target/debug/deps/libmegastream_flow-ea879a0d19530122.rmeta: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs

crates/flow/src/lib.rs:
crates/flow/src/addr.rs:
crates/flow/src/key.rs:
crates/flow/src/mask.rs:
crates/flow/src/record.rs:
crates/flow/src/score.rs:
crates/flow/src/time.rs:
