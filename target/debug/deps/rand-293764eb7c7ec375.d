/root/repo/target/debug/deps/rand-293764eb7c7ec375.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-293764eb7c7ec375.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
