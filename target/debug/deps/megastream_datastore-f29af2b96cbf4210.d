/root/repo/target/debug/deps/megastream_datastore-f29af2b96cbf4210.d: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/debug/deps/libmegastream_datastore-f29af2b96cbf4210.rlib: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/debug/deps/libmegastream_datastore-f29af2b96cbf4210.rmeta: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

crates/datastore/src/lib.rs:
crates/datastore/src/aggregator.rs:
crates/datastore/src/storage.rs:
crates/datastore/src/store.rs:
crates/datastore/src/summary.rs:
crates/datastore/src/trigger.rs:
