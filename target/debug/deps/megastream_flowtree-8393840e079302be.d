/root/repo/target/debug/deps/megastream_flowtree-8393840e079302be.d: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_flowtree-8393840e079302be.rmeta: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs Cargo.toml

crates/flowtree/src/lib.rs:
crates/flowtree/src/builder.rs:
crates/flowtree/src/ops.rs:
crates/flowtree/src/query.rs:
crates/flowtree/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
