/root/repo/target/debug/deps/e7_flowstream-7a995e603b29d66c.d: crates/bench/benches/e7_flowstream.rs Cargo.toml

/root/repo/target/debug/deps/libe7_flowstream-7a995e603b29d66c.rmeta: crates/bench/benches/e7_flowstream.rs Cargo.toml

crates/bench/benches/e7_flowstream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
