/root/repo/target/debug/deps/megastream_manager-e794589b01f60eba.d: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/debug/deps/megastream_manager-e794589b01f60eba: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

crates/manager/src/lib.rs:
crates/manager/src/manager.rs:
crates/manager/src/placement.rs:
crates/manager/src/replication_ctl.rs:
crates/manager/src/requirements.rs:
crates/manager/src/resources.rs:
