/root/repo/target/debug/deps/e10_sampling-8a33322e671fb3d7.d: crates/bench/benches/e10_sampling.rs

/root/repo/target/debug/deps/libe10_sampling-8a33322e671fb3d7.rmeta: crates/bench/benches/e10_sampling.rs

crates/bench/benches/e10_sampling.rs:
