/root/repo/target/debug/deps/e10_sampling-f4486fe4f08c1d6c.d: crates/bench/benches/e10_sampling.rs Cargo.toml

/root/repo/target/debug/deps/libe10_sampling-f4486fe4f08c1d6c.rmeta: crates/bench/benches/e10_sampling.rs Cargo.toml

crates/bench/benches/e10_sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
