/root/repo/target/debug/deps/megastream_datastore-01a575c379a3e3dd.d: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/debug/deps/megastream_datastore-01a575c379a3e3dd: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

crates/datastore/src/lib.rs:
crates/datastore/src/aggregator.rs:
crates/datastore/src/storage.rs:
crates/datastore/src/store.rs:
crates/datastore/src/summary.rs:
crates/datastore/src/trigger.rs:
