/root/repo/target/debug/deps/megastream-6da791723f85ef1a.d: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/debug/deps/megastream-6da791723f85ef1a: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

crates/core/src/lib.rs:
crates/core/src/application.rs:
crates/core/src/controller.rs:
crates/core/src/flowstream.rs:
crates/core/src/hierarchy.rs:
