/root/repo/target/debug/deps/proptest-1cee4659af87280f.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1cee4659af87280f.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
