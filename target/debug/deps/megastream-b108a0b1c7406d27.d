/root/repo/target/debug/deps/megastream-b108a0b1c7406d27.d: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/debug/deps/megastream-b108a0b1c7406d27: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

crates/core/src/lib.rs:
crates/core/src/application.rs:
crates/core/src/controller.rs:
crates/core/src/flowstream.rs:
crates/core/src/hierarchy.rs:
