/root/repo/target/debug/deps/megastream_suite-0b4435c4f42a444a.d: src/lib.rs

/root/repo/target/debug/deps/libmegastream_suite-0b4435c4f42a444a.rmeta: src/lib.rs

src/lib.rs:
