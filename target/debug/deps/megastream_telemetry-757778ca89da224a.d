/root/repo/target/debug/deps/megastream_telemetry-757778ca89da224a.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libmegastream_telemetry-757778ca89da224a.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libmegastream_telemetry-757778ca89da224a.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/trace.rs:
