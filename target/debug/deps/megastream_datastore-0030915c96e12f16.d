/root/repo/target/debug/deps/megastream_datastore-0030915c96e12f16.d: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/debug/deps/libmegastream_datastore-0030915c96e12f16.rlib: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/debug/deps/libmegastream_datastore-0030915c96e12f16.rmeta: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

crates/datastore/src/lib.rs:
crates/datastore/src/aggregator.rs:
crates/datastore/src/storage.rs:
crates/datastore/src/store.rs:
crates/datastore/src/summary.rs:
crates/datastore/src/trigger.rs:
