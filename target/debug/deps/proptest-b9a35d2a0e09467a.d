/root/repo/target/debug/deps/proptest-b9a35d2a0e09467a.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-b9a35d2a0e09467a.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
