/root/repo/target/debug/deps/megastream_analytics-ea384db1f8eea0f2.d: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

/root/repo/target/debug/deps/libmegastream_analytics-ea384db1f8eea0f2.rmeta: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

crates/analytics/src/lib.rs:
crates/analytics/src/inference.rs:
crates/analytics/src/pipeline.rs:
crates/analytics/src/transfer.rs:
