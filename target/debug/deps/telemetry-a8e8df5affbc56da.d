/root/repo/target/debug/deps/telemetry-a8e8df5affbc56da.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-a8e8df5affbc56da: tests/telemetry.rs

tests/telemetry.rs:
