/root/repo/target/debug/deps/megastream_suite-c3cf9290d6f26060.d: src/lib.rs

/root/repo/target/debug/deps/megastream_suite-c3cf9290d6f26060: src/lib.rs

src/lib.rs:
