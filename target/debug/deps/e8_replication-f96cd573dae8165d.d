/root/repo/target/debug/deps/e8_replication-f96cd573dae8165d.d: crates/bench/benches/e8_replication.rs

/root/repo/target/debug/deps/libe8_replication-f96cd573dae8165d.rmeta: crates/bench/benches/e8_replication.rs

crates/bench/benches/e8_replication.rs:
