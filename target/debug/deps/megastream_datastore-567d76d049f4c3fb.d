/root/repo/target/debug/deps/megastream_datastore-567d76d049f4c3fb.d: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/debug/deps/megastream_datastore-567d76d049f4c3fb: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

crates/datastore/src/lib.rs:
crates/datastore/src/aggregator.rs:
crates/datastore/src/storage.rs:
crates/datastore/src/store.rs:
crates/datastore/src/summary.rs:
crates/datastore/src/trigger.rs:
