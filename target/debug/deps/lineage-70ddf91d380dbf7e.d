/root/repo/target/debug/deps/lineage-70ddf91d380dbf7e.d: tests/lineage.rs Cargo.toml

/root/repo/target/debug/deps/liblineage-70ddf91d380dbf7e.rmeta: tests/lineage.rs Cargo.toml

tests/lineage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
