/root/repo/target/debug/deps/feedback_loop-12bcd38f8268e466.d: tests/feedback_loop.rs Cargo.toml

/root/repo/target/debug/deps/libfeedback_loop-12bcd38f8268e466.rmeta: tests/feedback_loop.rs Cargo.toml

tests/feedback_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
