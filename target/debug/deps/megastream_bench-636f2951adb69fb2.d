/root/repo/target/debug/deps/megastream_bench-636f2951adb69fb2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmegastream_bench-636f2951adb69fb2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmegastream_bench-636f2951adb69fb2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
