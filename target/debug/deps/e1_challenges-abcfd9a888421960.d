/root/repo/target/debug/deps/e1_challenges-abcfd9a888421960.d: crates/bench/benches/e1_challenges.rs

/root/repo/target/debug/deps/libe1_challenges-abcfd9a888421960.rmeta: crates/bench/benches/e1_challenges.rs

crates/bench/benches/e1_challenges.rs:
