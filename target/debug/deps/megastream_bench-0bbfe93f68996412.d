/root/repo/target/debug/deps/megastream_bench-0bbfe93f68996412.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_bench-0bbfe93f68996412.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
