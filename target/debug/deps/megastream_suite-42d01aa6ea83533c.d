/root/repo/target/debug/deps/megastream_suite-42d01aa6ea83533c.d: src/lib.rs

/root/repo/target/debug/deps/megastream_suite-42d01aa6ea83533c: src/lib.rs

src/lib.rs:
