/root/repo/target/debug/deps/megastream_datastore-8a9d0ec11fb6ae29.d: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_datastore-8a9d0ec11fb6ae29.rmeta: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs Cargo.toml

crates/datastore/src/lib.rs:
crates/datastore/src/aggregator.rs:
crates/datastore/src/storage.rs:
crates/datastore/src/store.rs:
crates/datastore/src/summary.rs:
crates/datastore/src/trigger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
