/root/repo/target/debug/deps/megastream-6caedb6afdd77091.d: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream-6caedb6afdd77091.rmeta: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/application.rs:
crates/core/src/controller.rs:
crates/core/src/flowstream.rs:
crates/core/src/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
