/root/repo/target/debug/deps/megastream_telemetry-31980c3b02e9c23c.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmegastream_telemetry-31980c3b02e9c23c.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
