/root/repo/target/debug/deps/megastream_workloads-d74b0b4cdd17a0d8.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

/root/repo/target/debug/deps/megastream_workloads-d74b0b4cdd17a0d8: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/factory.rs:
crates/workloads/src/netflow.rs:
crates/workloads/src/querytrace.rs:
