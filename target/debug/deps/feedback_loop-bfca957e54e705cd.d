/root/repo/target/debug/deps/feedback_loop-bfca957e54e705cd.d: tests/feedback_loop.rs

/root/repo/target/debug/deps/feedback_loop-bfca957e54e705cd: tests/feedback_loop.rs

tests/feedback_loop.rs:
