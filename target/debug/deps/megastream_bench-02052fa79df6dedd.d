/root/repo/target/debug/deps/megastream_bench-02052fa79df6dedd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/megastream_bench-02052fa79df6dedd: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
