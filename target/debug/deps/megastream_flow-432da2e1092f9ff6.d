/root/repo/target/debug/deps/megastream_flow-432da2e1092f9ff6.d: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_flow-432da2e1092f9ff6.rmeta: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs Cargo.toml

crates/flow/src/lib.rs:
crates/flow/src/addr.rs:
crates/flow/src/key.rs:
crates/flow/src/mask.rs:
crates/flow/src/record.rs:
crates/flow/src/score.rs:
crates/flow/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
