/root/repo/target/debug/deps/megastream_flowdb-740d2e8ba6426873.d: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

/root/repo/target/debug/deps/megastream_flowdb-740d2e8ba6426873: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

crates/flowdb/src/lib.rs:
crates/flowdb/src/ast.rs:
crates/flowdb/src/db.rs:
crates/flowdb/src/exec.rs:
crates/flowdb/src/lexer.rs:
crates/flowdb/src/parser.rs:
