/root/repo/target/debug/deps/megastream_primitives-18e953269cefc442.d: crates/primitives/src/lib.rs crates/primitives/src/adaptive.rs crates/primitives/src/aggregator.rs crates/primitives/src/cms.rs crates/primitives/src/exact.rs crates/primitives/src/reservoir.rs crates/primitives/src/sampling.rs crates/primitives/src/spacesaving.rs crates/primitives/src/timebin.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_primitives-18e953269cefc442.rmeta: crates/primitives/src/lib.rs crates/primitives/src/adaptive.rs crates/primitives/src/aggregator.rs crates/primitives/src/cms.rs crates/primitives/src/exact.rs crates/primitives/src/reservoir.rs crates/primitives/src/sampling.rs crates/primitives/src/spacesaving.rs crates/primitives/src/timebin.rs Cargo.toml

crates/primitives/src/lib.rs:
crates/primitives/src/adaptive.rs:
crates/primitives/src/aggregator.rs:
crates/primitives/src/cms.rs:
crates/primitives/src/exact.rs:
crates/primitives/src/reservoir.rs:
crates/primitives/src/sampling.rs:
crates/primitives/src/spacesaving.rs:
crates/primitives/src/timebin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
