/root/repo/target/debug/deps/storage_strategies-cd09849288dbe021.d: tests/storage_strategies.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_strategies-cd09849288dbe021.rmeta: tests/storage_strategies.rs Cargo.toml

tests/storage_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
