/root/repo/target/debug/deps/megastream_workloads-34cd082b99c8f2e9.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

/root/repo/target/debug/deps/libmegastream_workloads-34cd082b99c8f2e9.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/factory.rs:
crates/workloads/src/netflow.rs:
crates/workloads/src/querytrace.rs:
