/root/repo/target/debug/deps/e6_storage_strategies-02e0f60b8be12bf8.d: crates/bench/benches/e6_storage_strategies.rs Cargo.toml

/root/repo/target/debug/deps/libe6_storage_strategies-02e0f60b8be12bf8.rmeta: crates/bench/benches/e6_storage_strategies.rs Cargo.toml

crates/bench/benches/e6_storage_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
