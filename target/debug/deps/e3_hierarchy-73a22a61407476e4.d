/root/repo/target/debug/deps/e3_hierarchy-73a22a61407476e4.d: crates/bench/benches/e3_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libe3_hierarchy-73a22a61407476e4.rmeta: crates/bench/benches/e3_hierarchy.rs Cargo.toml

crates/bench/benches/e3_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
