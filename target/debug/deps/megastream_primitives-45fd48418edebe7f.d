/root/repo/target/debug/deps/megastream_primitives-45fd48418edebe7f.d: crates/primitives/src/lib.rs crates/primitives/src/adaptive.rs crates/primitives/src/aggregator.rs crates/primitives/src/cms.rs crates/primitives/src/exact.rs crates/primitives/src/reservoir.rs crates/primitives/src/sampling.rs crates/primitives/src/spacesaving.rs crates/primitives/src/timebin.rs

/root/repo/target/debug/deps/libmegastream_primitives-45fd48418edebe7f.rlib: crates/primitives/src/lib.rs crates/primitives/src/adaptive.rs crates/primitives/src/aggregator.rs crates/primitives/src/cms.rs crates/primitives/src/exact.rs crates/primitives/src/reservoir.rs crates/primitives/src/sampling.rs crates/primitives/src/spacesaving.rs crates/primitives/src/timebin.rs

/root/repo/target/debug/deps/libmegastream_primitives-45fd48418edebe7f.rmeta: crates/primitives/src/lib.rs crates/primitives/src/adaptive.rs crates/primitives/src/aggregator.rs crates/primitives/src/cms.rs crates/primitives/src/exact.rs crates/primitives/src/reservoir.rs crates/primitives/src/sampling.rs crates/primitives/src/spacesaving.rs crates/primitives/src/timebin.rs

crates/primitives/src/lib.rs:
crates/primitives/src/adaptive.rs:
crates/primitives/src/aggregator.rs:
crates/primitives/src/cms.rs:
crates/primitives/src/exact.rs:
crates/primitives/src/reservoir.rs:
crates/primitives/src/sampling.rs:
crates/primitives/src/spacesaving.rs:
crates/primitives/src/timebin.rs:
