/root/repo/target/debug/deps/flowstream_e2e-ef16d061111aa791.d: tests/flowstream_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libflowstream_e2e-ef16d061111aa791.rmeta: tests/flowstream_e2e.rs Cargo.toml

tests/flowstream_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
