/root/repo/target/debug/deps/challenges-60063d50ba3ad602.d: tests/challenges.rs

/root/repo/target/debug/deps/challenges-60063d50ba3ad602: tests/challenges.rs

tests/challenges.rs:
