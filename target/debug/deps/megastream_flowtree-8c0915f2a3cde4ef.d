/root/repo/target/debug/deps/megastream_flowtree-8c0915f2a3cde4ef.d: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

/root/repo/target/debug/deps/libmegastream_flowtree-8c0915f2a3cde4ef.rlib: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

/root/repo/target/debug/deps/libmegastream_flowtree-8c0915f2a3cde4ef.rmeta: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

crates/flowtree/src/lib.rs:
crates/flowtree/src/builder.rs:
crates/flowtree/src/ops.rs:
crates/flowtree/src/query.rs:
crates/flowtree/src/tree.rs:
