/root/repo/target/debug/deps/tracing_e2e-27ba11d76db78bd6.d: tests/tracing_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libtracing_e2e-27ba11d76db78bd6.rmeta: tests/tracing_e2e.rs Cargo.toml

tests/tracing_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
