/root/repo/target/debug/deps/criterion-d7897de766ffa15d.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d7897de766ffa15d.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
