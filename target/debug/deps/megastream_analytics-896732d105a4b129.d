/root/repo/target/debug/deps/megastream_analytics-896732d105a4b129.d: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

/root/repo/target/debug/deps/megastream_analytics-896732d105a4b129: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

crates/analytics/src/lib.rs:
crates/analytics/src/inference.rs:
crates/analytics/src/pipeline.rs:
crates/analytics/src/transfer.rs:
