/root/repo/target/debug/deps/megastream_netsim-2644c3f88ed9562e.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libmegastream_netsim-2644c3f88ed9562e.rmeta: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/event.rs:
crates/netsim/src/hierarchy.rs:
crates/netsim/src/topology.rs:
