/root/repo/target/debug/deps/megastream_workloads-30d9e6883f9ff3ab.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

/root/repo/target/debug/deps/libmegastream_workloads-30d9e6883f9ff3ab.rlib: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

/root/repo/target/debug/deps/libmegastream_workloads-30d9e6883f9ff3ab.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/factory.rs:
crates/workloads/src/netflow.rs:
crates/workloads/src/querytrace.rs:
