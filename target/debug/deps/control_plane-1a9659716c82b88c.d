/root/repo/target/debug/deps/control_plane-1a9659716c82b88c.d: tests/control_plane.rs Cargo.toml

/root/repo/target/debug/deps/libcontrol_plane-1a9659716c82b88c.rmeta: tests/control_plane.rs Cargo.toml

tests/control_plane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
