/root/repo/target/debug/deps/megastream_replication-a5828e060f334bb6.d: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_replication-a5828e060f334bb6.rmeta: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs Cargo.toml

crates/replication/src/lib.rs:
crates/replication/src/policy.rs:
crates/replication/src/simulator.rs:
crates/replication/src/skirental.rs:
crates/replication/src/tracker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
