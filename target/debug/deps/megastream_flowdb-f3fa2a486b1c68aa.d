/root/repo/target/debug/deps/megastream_flowdb-f3fa2a486b1c68aa.d: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

/root/repo/target/debug/deps/libmegastream_flowdb-f3fa2a486b1c68aa.rmeta: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

crates/flowdb/src/lib.rs:
crates/flowdb/src/ast.rs:
crates/flowdb/src/db.rs:
crates/flowdb/src/exec.rs:
crates/flowdb/src/lexer.rs:
crates/flowdb/src/parser.rs:
