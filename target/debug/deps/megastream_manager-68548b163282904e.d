/root/repo/target/debug/deps/megastream_manager-68548b163282904e.d: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/debug/deps/libmegastream_manager-68548b163282904e.rlib: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/debug/deps/libmegastream_manager-68548b163282904e.rmeta: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

crates/manager/src/lib.rs:
crates/manager/src/manager.rs:
crates/manager/src/placement.rs:
crates/manager/src/replication_ctl.rs:
crates/manager/src/requirements.rs:
crates/manager/src/resources.rs:
