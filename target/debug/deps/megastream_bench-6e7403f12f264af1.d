/root/repo/target/debug/deps/megastream_bench-6e7403f12f264af1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmegastream_bench-6e7403f12f264af1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
