/root/repo/target/debug/deps/e12_tracing_overhead-35b001a321945652.d: crates/bench/benches/e12_tracing_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libe12_tracing_overhead-35b001a321945652.rmeta: crates/bench/benches/e12_tracing_overhead.rs Cargo.toml

crates/bench/benches/e12_tracing_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
