/root/repo/target/debug/deps/megastream_analytics-f7c6ae76b5090d17.d: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_analytics-f7c6ae76b5090d17.rmeta: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs Cargo.toml

crates/analytics/src/lib.rs:
crates/analytics/src/inference.rs:
crates/analytics/src/pipeline.rs:
crates/analytics/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
