/root/repo/target/debug/deps/storage_strategies-adc7aee06f500dec.d: tests/storage_strategies.rs

/root/repo/target/debug/deps/storage_strategies-adc7aee06f500dec: tests/storage_strategies.rs

tests/storage_strategies.rs:
