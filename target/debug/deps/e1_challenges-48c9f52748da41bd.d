/root/repo/target/debug/deps/e1_challenges-48c9f52748da41bd.d: crates/bench/benches/e1_challenges.rs Cargo.toml

/root/repo/target/debug/deps/libe1_challenges-48c9f52748da41bd.rmeta: crates/bench/benches/e1_challenges.rs Cargo.toml

crates/bench/benches/e1_challenges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
