/root/repo/target/debug/deps/megastream_analytics-625b366f1fccc0ee.d: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

/root/repo/target/debug/deps/libmegastream_analytics-625b366f1fccc0ee.rmeta: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

crates/analytics/src/lib.rs:
crates/analytics/src/inference.rs:
crates/analytics/src/pipeline.rs:
crates/analytics/src/transfer.rs:
