/root/repo/target/debug/deps/e11_telemetry_overhead-08b4b3e6b3e3960f.d: crates/bench/benches/e11_telemetry_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libe11_telemetry_overhead-08b4b3e6b3e3960f.rmeta: crates/bench/benches/e11_telemetry_overhead.rs Cargo.toml

crates/bench/benches/e11_telemetry_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
