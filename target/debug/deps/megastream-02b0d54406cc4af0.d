/root/repo/target/debug/deps/megastream-02b0d54406cc4af0.d: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/debug/deps/libmegastream-02b0d54406cc4af0.rmeta: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

crates/core/src/lib.rs:
crates/core/src/application.rs:
crates/core/src/controller.rs:
crates/core/src/flowstream.rs:
crates/core/src/hierarchy.rs:
