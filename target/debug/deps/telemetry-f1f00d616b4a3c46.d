/root/repo/target/debug/deps/telemetry-f1f00d616b4a3c46.d: tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-f1f00d616b4a3c46.rmeta: tests/telemetry.rs Cargo.toml

tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
