/root/repo/target/debug/deps/tracing_e2e-b937a27001482f9e.d: tests/tracing_e2e.rs

/root/repo/target/debug/deps/tracing_e2e-b937a27001482f9e: tests/tracing_e2e.rs

tests/tracing_e2e.rs:
