/root/repo/target/debug/deps/megastream_flow-0b89a7a2dc71e74a.d: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs

/root/repo/target/debug/deps/libmegastream_flow-0b89a7a2dc71e74a.rmeta: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs

crates/flow/src/lib.rs:
crates/flow/src/addr.rs:
crates/flow/src/key.rs:
crates/flow/src/mask.rs:
crates/flow/src/record.rs:
crates/flow/src/score.rs:
crates/flow/src/time.rs:
