/root/repo/target/debug/deps/megastream_telemetry-fc1896046e247f27.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_telemetry-fc1896046e247f27.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
