/root/repo/target/debug/deps/megastream_flowtree-a1e7287be3c421c3.d: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

/root/repo/target/debug/deps/libmegastream_flowtree-a1e7287be3c421c3.rmeta: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

crates/flowtree/src/lib.rs:
crates/flowtree/src/builder.rs:
crates/flowtree/src/ops.rs:
crates/flowtree/src/query.rs:
crates/flowtree/src/tree.rs:
