/root/repo/target/debug/deps/criterion-136f6ea8de9a009c.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-136f6ea8de9a009c.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
