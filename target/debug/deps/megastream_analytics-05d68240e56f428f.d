/root/repo/target/debug/deps/megastream_analytics-05d68240e56f428f.d: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_analytics-05d68240e56f428f.rmeta: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs Cargo.toml

crates/analytics/src/lib.rs:
crates/analytics/src/inference.rs:
crates/analytics/src/pipeline.rs:
crates/analytics/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
