/root/repo/target/debug/deps/megastream_manager-3c9c8448821a6adf.d: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_manager-3c9c8448821a6adf.rmeta: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs Cargo.toml

crates/manager/src/lib.rs:
crates/manager/src/manager.rs:
crates/manager/src/placement.rs:
crates/manager/src/replication_ctl.rs:
crates/manager/src/requirements.rs:
crates/manager/src/resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
