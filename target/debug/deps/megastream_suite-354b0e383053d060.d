/root/repo/target/debug/deps/megastream_suite-354b0e383053d060.d: src/lib.rs

/root/repo/target/debug/deps/libmegastream_suite-354b0e383053d060.rlib: src/lib.rs

/root/repo/target/debug/deps/libmegastream_suite-354b0e383053d060.rmeta: src/lib.rs

src/lib.rs:
