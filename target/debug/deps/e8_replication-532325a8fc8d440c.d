/root/repo/target/debug/deps/e8_replication-532325a8fc8d440c.d: crates/bench/benches/e8_replication.rs Cargo.toml

/root/repo/target/debug/deps/libe8_replication-532325a8fc8d440c.rmeta: crates/bench/benches/e8_replication.rs Cargo.toml

crates/bench/benches/e8_replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
