/root/repo/target/debug/deps/megastream_netsim-f7c26cf1461b6aa9.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libmegastream_netsim-f7c26cf1461b6aa9.rlib: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libmegastream_netsim-f7c26cf1461b6aa9.rmeta: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/event.rs:
crates/netsim/src/hierarchy.rs:
crates/netsim/src/topology.rs:
