/root/repo/target/debug/deps/e2_flowtree_ops-48fc97be5aa22d9f.d: crates/bench/benches/e2_flowtree_ops.rs

/root/repo/target/debug/deps/libe2_flowtree_ops-48fc97be5aa22d9f.rmeta: crates/bench/benches/e2_flowtree_ops.rs

crates/bench/benches/e2_flowtree_ops.rs:
