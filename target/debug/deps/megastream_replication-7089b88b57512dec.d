/root/repo/target/debug/deps/megastream_replication-7089b88b57512dec.d: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

/root/repo/target/debug/deps/megastream_replication-7089b88b57512dec: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

crates/replication/src/lib.rs:
crates/replication/src/policy.rs:
crates/replication/src/simulator.rs:
crates/replication/src/skirental.rs:
crates/replication/src/tracker.rs:
