/root/repo/target/debug/deps/megastream_flow-cf01c246bfb638f9.d: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_flow-cf01c246bfb638f9.rmeta: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs Cargo.toml

crates/flow/src/lib.rs:
crates/flow/src/addr.rs:
crates/flow/src/key.rs:
crates/flow/src/mask.rs:
crates/flow/src/record.rs:
crates/flow/src/score.rs:
crates/flow/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
