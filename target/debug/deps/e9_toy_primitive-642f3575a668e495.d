/root/repo/target/debug/deps/e9_toy_primitive-642f3575a668e495.d: crates/bench/benches/e9_toy_primitive.rs

/root/repo/target/debug/deps/libe9_toy_primitive-642f3575a668e495.rmeta: crates/bench/benches/e9_toy_primitive.rs

crates/bench/benches/e9_toy_primitive.rs:
