/root/repo/target/debug/deps/megastream_flow-efcc530862e914b7.d: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs

/root/repo/target/debug/deps/megastream_flow-efcc530862e914b7: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs

crates/flow/src/lib.rs:
crates/flow/src/addr.rs:
crates/flow/src/key.rs:
crates/flow/src/mask.rs:
crates/flow/src/record.rs:
crates/flow/src/score.rs:
crates/flow/src/time.rs:
