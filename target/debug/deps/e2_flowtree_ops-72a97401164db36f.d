/root/repo/target/debug/deps/e2_flowtree_ops-72a97401164db36f.d: crates/bench/benches/e2_flowtree_ops.rs Cargo.toml

/root/repo/target/debug/deps/libe2_flowtree_ops-72a97401164db36f.rmeta: crates/bench/benches/e2_flowtree_ops.rs Cargo.toml

crates/bench/benches/e2_flowtree_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
