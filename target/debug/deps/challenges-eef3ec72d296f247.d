/root/repo/target/debug/deps/challenges-eef3ec72d296f247.d: tests/challenges.rs Cargo.toml

/root/repo/target/debug/deps/libchallenges-eef3ec72d296f247.rmeta: tests/challenges.rs Cargo.toml

tests/challenges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
