/root/repo/target/debug/deps/megastream_telemetry-3a21fb7153b57a7b.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/megastream_telemetry-3a21fb7153b57a7b: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/trace.rs:
