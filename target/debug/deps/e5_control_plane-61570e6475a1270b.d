/root/repo/target/debug/deps/e5_control_plane-61570e6475a1270b.d: crates/bench/benches/e5_control_plane.rs

/root/repo/target/debug/deps/libe5_control_plane-61570e6475a1270b.rmeta: crates/bench/benches/e5_control_plane.rs

crates/bench/benches/e5_control_plane.rs:
