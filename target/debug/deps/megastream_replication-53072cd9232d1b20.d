/root/repo/target/debug/deps/megastream_replication-53072cd9232d1b20.d: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

/root/repo/target/debug/deps/libmegastream_replication-53072cd9232d1b20.rlib: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

/root/repo/target/debug/deps/libmegastream_replication-53072cd9232d1b20.rmeta: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

crates/replication/src/lib.rs:
crates/replication/src/policy.rs:
crates/replication/src/simulator.rs:
crates/replication/src/skirental.rs:
crates/replication/src/tracker.rs:
