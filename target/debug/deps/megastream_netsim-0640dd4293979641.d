/root/repo/target/debug/deps/megastream_netsim-0640dd4293979641.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmegastream_netsim-0640dd4293979641.rmeta: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/event.rs:
crates/netsim/src/hierarchy.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
