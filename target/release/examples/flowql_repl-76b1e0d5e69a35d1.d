/root/repo/target/release/examples/flowql_repl-76b1e0d5e69a35d1.d: examples/flowql_repl.rs

/root/repo/target/release/examples/flowql_repl-76b1e0d5e69a35d1: examples/flowql_repl.rs

examples/flowql_repl.rs:
