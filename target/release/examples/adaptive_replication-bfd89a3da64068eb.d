/root/repo/target/release/examples/adaptive_replication-bfd89a3da64068eb.d: examples/adaptive_replication.rs

/root/repo/target/release/examples/adaptive_replication-bfd89a3da64068eb: examples/adaptive_replication.rs

examples/adaptive_replication.rs:
