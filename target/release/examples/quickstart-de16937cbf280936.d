/root/repo/target/release/examples/quickstart-de16937cbf280936.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-de16937cbf280936: examples/quickstart.rs

examples/quickstart.rs:
