/root/repo/target/release/examples/network_monitoring-2167bb2c95e3c3ee.d: examples/network_monitoring.rs

/root/repo/target/release/examples/network_monitoring-2167bb2c95e3c3ee: examples/network_monitoring.rs

examples/network_monitoring.rs:
