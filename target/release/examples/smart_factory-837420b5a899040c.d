/root/repo/target/release/examples/smart_factory-837420b5a899040c.d: examples/smart_factory.rs

/root/repo/target/release/examples/smart_factory-837420b5a899040c: examples/smart_factory.rs

examples/smart_factory.rs:
