/root/repo/target/release/deps/megastream_replication-43f992afc77afbb0.d: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

/root/repo/target/release/deps/libmegastream_replication-43f992afc77afbb0.rlib: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

/root/repo/target/release/deps/libmegastream_replication-43f992afc77afbb0.rmeta: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

crates/replication/src/lib.rs:
crates/replication/src/policy.rs:
crates/replication/src/simulator.rs:
crates/replication/src/skirental.rs:
crates/replication/src/tracker.rs:
