/root/repo/target/release/deps/megastream-e4127e4faf2ec5b8.d: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/release/deps/libmegastream-e4127e4faf2ec5b8.rlib: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/release/deps/libmegastream-e4127e4faf2ec5b8.rmeta: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

crates/core/src/lib.rs:
crates/core/src/application.rs:
crates/core/src/controller.rs:
crates/core/src/flowstream.rs:
crates/core/src/hierarchy.rs:
