/root/repo/target/release/deps/megastream_suite-5227b7334c777591.d: src/lib.rs

/root/repo/target/release/deps/libmegastream_suite-5227b7334c777591.rlib: src/lib.rs

/root/repo/target/release/deps/libmegastream_suite-5227b7334c777591.rmeta: src/lib.rs

src/lib.rs:
