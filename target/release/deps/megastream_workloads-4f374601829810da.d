/root/repo/target/release/deps/megastream_workloads-4f374601829810da.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

/root/repo/target/release/deps/libmegastream_workloads-4f374601829810da.rlib: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

/root/repo/target/release/deps/libmegastream_workloads-4f374601829810da.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/factory.rs crates/workloads/src/netflow.rs crates/workloads/src/querytrace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/factory.rs:
crates/workloads/src/netflow.rs:
crates/workloads/src/querytrace.rs:
