/root/repo/target/release/deps/megastream_flowdb-039e764bdc8b3bb4.d: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

/root/repo/target/release/deps/libmegastream_flowdb-039e764bdc8b3bb4.rlib: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

/root/repo/target/release/deps/libmegastream_flowdb-039e764bdc8b3bb4.rmeta: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

crates/flowdb/src/lib.rs:
crates/flowdb/src/ast.rs:
crates/flowdb/src/db.rs:
crates/flowdb/src/exec.rs:
crates/flowdb/src/lexer.rs:
crates/flowdb/src/parser.rs:
