/root/repo/target/release/deps/megastream_flowdb-e15eb0ea8193fb98.d: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

/root/repo/target/release/deps/libmegastream_flowdb-e15eb0ea8193fb98.rlib: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

/root/repo/target/release/deps/libmegastream_flowdb-e15eb0ea8193fb98.rmeta: crates/flowdb/src/lib.rs crates/flowdb/src/ast.rs crates/flowdb/src/db.rs crates/flowdb/src/exec.rs crates/flowdb/src/lexer.rs crates/flowdb/src/parser.rs

crates/flowdb/src/lib.rs:
crates/flowdb/src/ast.rs:
crates/flowdb/src/db.rs:
crates/flowdb/src/exec.rs:
crates/flowdb/src/lexer.rs:
crates/flowdb/src/parser.rs:
