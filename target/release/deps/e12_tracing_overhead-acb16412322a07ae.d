/root/repo/target/release/deps/e12_tracing_overhead-acb16412322a07ae.d: crates/bench/benches/e12_tracing_overhead.rs

/root/repo/target/release/deps/e12_tracing_overhead-acb16412322a07ae: crates/bench/benches/e12_tracing_overhead.rs

crates/bench/benches/e12_tracing_overhead.rs:
