/root/repo/target/release/deps/megastream_analytics-6f4ec0c975815edd.d: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

/root/repo/target/release/deps/libmegastream_analytics-6f4ec0c975815edd.rlib: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

/root/repo/target/release/deps/libmegastream_analytics-6f4ec0c975815edd.rmeta: crates/analytics/src/lib.rs crates/analytics/src/inference.rs crates/analytics/src/pipeline.rs crates/analytics/src/transfer.rs

crates/analytics/src/lib.rs:
crates/analytics/src/inference.rs:
crates/analytics/src/pipeline.rs:
crates/analytics/src/transfer.rs:
