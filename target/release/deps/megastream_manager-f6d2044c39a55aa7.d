/root/repo/target/release/deps/megastream_manager-f6d2044c39a55aa7.d: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/release/deps/libmegastream_manager-f6d2044c39a55aa7.rlib: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/release/deps/libmegastream_manager-f6d2044c39a55aa7.rmeta: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

crates/manager/src/lib.rs:
crates/manager/src/manager.rs:
crates/manager/src/placement.rs:
crates/manager/src/replication_ctl.rs:
crates/manager/src/requirements.rs:
crates/manager/src/resources.rs:
