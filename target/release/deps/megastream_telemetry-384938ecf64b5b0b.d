/root/repo/target/release/deps/megastream_telemetry-384938ecf64b5b0b.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libmegastream_telemetry-384938ecf64b5b0b.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libmegastream_telemetry-384938ecf64b5b0b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/trace.rs:
