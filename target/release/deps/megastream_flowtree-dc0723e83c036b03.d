/root/repo/target/release/deps/megastream_flowtree-dc0723e83c036b03.d: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

/root/repo/target/release/deps/libmegastream_flowtree-dc0723e83c036b03.rlib: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

/root/repo/target/release/deps/libmegastream_flowtree-dc0723e83c036b03.rmeta: crates/flowtree/src/lib.rs crates/flowtree/src/builder.rs crates/flowtree/src/ops.rs crates/flowtree/src/query.rs crates/flowtree/src/tree.rs

crates/flowtree/src/lib.rs:
crates/flowtree/src/builder.rs:
crates/flowtree/src/ops.rs:
crates/flowtree/src/query.rs:
crates/flowtree/src/tree.rs:
