/root/repo/target/release/deps/megastream_replication-027b0452aa9d1da5.d: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

/root/repo/target/release/deps/libmegastream_replication-027b0452aa9d1da5.rlib: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

/root/repo/target/release/deps/libmegastream_replication-027b0452aa9d1da5.rmeta: crates/replication/src/lib.rs crates/replication/src/policy.rs crates/replication/src/simulator.rs crates/replication/src/skirental.rs crates/replication/src/tracker.rs

crates/replication/src/lib.rs:
crates/replication/src/policy.rs:
crates/replication/src/simulator.rs:
crates/replication/src/skirental.rs:
crates/replication/src/tracker.rs:
