/root/repo/target/release/deps/proptest-2ed0f0d2fbb1f97a.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2ed0f0d2fbb1f97a.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2ed0f0d2fbb1f97a.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
