/root/repo/target/release/deps/megastream_flow-ca99c2708fa55f1f.d: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs

/root/repo/target/release/deps/libmegastream_flow-ca99c2708fa55f1f.rlib: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs

/root/repo/target/release/deps/libmegastream_flow-ca99c2708fa55f1f.rmeta: crates/flow/src/lib.rs crates/flow/src/addr.rs crates/flow/src/key.rs crates/flow/src/mask.rs crates/flow/src/record.rs crates/flow/src/score.rs crates/flow/src/time.rs

crates/flow/src/lib.rs:
crates/flow/src/addr.rs:
crates/flow/src/key.rs:
crates/flow/src/mask.rs:
crates/flow/src/record.rs:
crates/flow/src/score.rs:
crates/flow/src/time.rs:
