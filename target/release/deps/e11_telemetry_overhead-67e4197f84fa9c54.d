/root/repo/target/release/deps/e11_telemetry_overhead-67e4197f84fa9c54.d: crates/bench/benches/e11_telemetry_overhead.rs

/root/repo/target/release/deps/e11_telemetry_overhead-67e4197f84fa9c54: crates/bench/benches/e11_telemetry_overhead.rs

crates/bench/benches/e11_telemetry_overhead.rs:
