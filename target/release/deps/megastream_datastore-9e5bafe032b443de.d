/root/repo/target/release/deps/megastream_datastore-9e5bafe032b443de.d: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/release/deps/libmegastream_datastore-9e5bafe032b443de.rlib: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/release/deps/libmegastream_datastore-9e5bafe032b443de.rmeta: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

crates/datastore/src/lib.rs:
crates/datastore/src/aggregator.rs:
crates/datastore/src/storage.rs:
crates/datastore/src/store.rs:
crates/datastore/src/summary.rs:
crates/datastore/src/trigger.rs:
