/root/repo/target/release/deps/megastream_bench-3f888b718971c2e9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmegastream_bench-3f888b718971c2e9.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmegastream_bench-3f888b718971c2e9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
