/root/repo/target/release/deps/megastream_datastore-94676bbc7cc8a9c0.d: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/release/deps/libmegastream_datastore-94676bbc7cc8a9c0.rlib: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

/root/repo/target/release/deps/libmegastream_datastore-94676bbc7cc8a9c0.rmeta: crates/datastore/src/lib.rs crates/datastore/src/aggregator.rs crates/datastore/src/storage.rs crates/datastore/src/store.rs crates/datastore/src/summary.rs crates/datastore/src/trigger.rs

crates/datastore/src/lib.rs:
crates/datastore/src/aggregator.rs:
crates/datastore/src/storage.rs:
crates/datastore/src/store.rs:
crates/datastore/src/summary.rs:
crates/datastore/src/trigger.rs:
