/root/repo/target/release/deps/megastream_bench-049c060c2767c903.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmegastream_bench-049c060c2767c903.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmegastream_bench-049c060c2767c903.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
