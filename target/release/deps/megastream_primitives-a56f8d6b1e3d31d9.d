/root/repo/target/release/deps/megastream_primitives-a56f8d6b1e3d31d9.d: crates/primitives/src/lib.rs crates/primitives/src/adaptive.rs crates/primitives/src/aggregator.rs crates/primitives/src/cms.rs crates/primitives/src/exact.rs crates/primitives/src/reservoir.rs crates/primitives/src/sampling.rs crates/primitives/src/spacesaving.rs crates/primitives/src/timebin.rs

/root/repo/target/release/deps/libmegastream_primitives-a56f8d6b1e3d31d9.rlib: crates/primitives/src/lib.rs crates/primitives/src/adaptive.rs crates/primitives/src/aggregator.rs crates/primitives/src/cms.rs crates/primitives/src/exact.rs crates/primitives/src/reservoir.rs crates/primitives/src/sampling.rs crates/primitives/src/spacesaving.rs crates/primitives/src/timebin.rs

/root/repo/target/release/deps/libmegastream_primitives-a56f8d6b1e3d31d9.rmeta: crates/primitives/src/lib.rs crates/primitives/src/adaptive.rs crates/primitives/src/aggregator.rs crates/primitives/src/cms.rs crates/primitives/src/exact.rs crates/primitives/src/reservoir.rs crates/primitives/src/sampling.rs crates/primitives/src/spacesaving.rs crates/primitives/src/timebin.rs

crates/primitives/src/lib.rs:
crates/primitives/src/adaptive.rs:
crates/primitives/src/aggregator.rs:
crates/primitives/src/cms.rs:
crates/primitives/src/exact.rs:
crates/primitives/src/reservoir.rs:
crates/primitives/src/sampling.rs:
crates/primitives/src/spacesaving.rs:
crates/primitives/src/timebin.rs:
