/root/repo/target/release/deps/megastream_suite-0111f2ae9b8f31f9.d: src/lib.rs

/root/repo/target/release/deps/libmegastream_suite-0111f2ae9b8f31f9.rlib: src/lib.rs

/root/repo/target/release/deps/libmegastream_suite-0111f2ae9b8f31f9.rmeta: src/lib.rs

src/lib.rs:
