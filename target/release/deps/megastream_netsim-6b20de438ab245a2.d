/root/repo/target/release/deps/megastream_netsim-6b20de438ab245a2.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/libmegastream_netsim-6b20de438ab245a2.rlib: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/libmegastream_netsim-6b20de438ab245a2.rmeta: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/event.rs crates/netsim/src/hierarchy.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/event.rs:
crates/netsim/src/hierarchy.rs:
crates/netsim/src/topology.rs:
