/root/repo/target/release/deps/megastream-3aded65a2462ab17.d: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/release/deps/libmegastream-3aded65a2462ab17.rlib: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

/root/repo/target/release/deps/libmegastream-3aded65a2462ab17.rmeta: crates/core/src/lib.rs crates/core/src/application.rs crates/core/src/controller.rs crates/core/src/flowstream.rs crates/core/src/hierarchy.rs

crates/core/src/lib.rs:
crates/core/src/application.rs:
crates/core/src/controller.rs:
crates/core/src/flowstream.rs:
crates/core/src/hierarchy.rs:
