/root/repo/target/release/deps/megastream_manager-ff823ae8e172fd4a.d: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/release/deps/libmegastream_manager-ff823ae8e172fd4a.rlib: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

/root/repo/target/release/deps/libmegastream_manager-ff823ae8e172fd4a.rmeta: crates/manager/src/lib.rs crates/manager/src/manager.rs crates/manager/src/placement.rs crates/manager/src/replication_ctl.rs crates/manager/src/requirements.rs crates/manager/src/resources.rs

crates/manager/src/lib.rs:
crates/manager/src/manager.rs:
crates/manager/src/placement.rs:
crates/manager/src/replication_ctl.rs:
crates/manager/src/requirements.rs:
crates/manager/src/resources.rs:
