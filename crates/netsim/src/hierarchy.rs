//! Topology builders for the two Fig. 1 settings.

use megastream_flow::time::TimeDelta;

use crate::topology::{LinkSpec, Network, NodeId, NodeKind};

/// The smart-factory hierarchy of Fig. 1a: machines on production lines,
/// line controllers, a factory edge node, and the corporate cloud behind a
/// WAN link.
#[derive(Debug, Clone)]
pub struct FactoryTopology {
    /// The underlying network.
    pub network: Network,
    /// Machines, grouped by line: `machines[line][m]`.
    pub machines: Vec<Vec<NodeId>>,
    /// One data-store node per production line.
    pub lines: Vec<NodeId>,
    /// The factory-level edge data store.
    pub factory: NodeId,
    /// The corporate cloud.
    pub cloud: NodeId,
}

impl FactoryTopology {
    /// Builds a factory with `lines` production lines of `machines_per_line`
    /// machines each.
    ///
    /// Link classes: machine→line 1 GbE, line→factory 10 GbE,
    /// factory→cloud a 100 Mbit/s WAN uplink with 20 ms latency.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `machines_per_line` is zero.
    pub fn build(lines: usize, machines_per_line: usize) -> Self {
        assert!(lines > 0, "at least one production line required");
        assert!(
            machines_per_line > 0,
            "at least one machine per line required"
        );
        let mut network = Network::new();
        let cloud = network.add_node("cloud", NodeKind::Cloud);
        let factory = network.add_node("factory-edge", NodeKind::DataStore);
        network.connect(factory, cloud, LinkSpec::wan_100m());
        let mut line_ids = Vec::with_capacity(lines);
        let mut machines = Vec::with_capacity(lines);
        for l in 0..lines {
            let line = network.add_node(format!("line-{l}"), NodeKind::DataStore);
            network.connect(line, factory, LinkSpec::lan_10g());
            let mut row = Vec::with_capacity(machines_per_line);
            for m in 0..machines_per_line {
                let machine = network.add_node(format!("machine-{l}-{m}"), NodeKind::Sensor);
                network.connect(machine, line, LinkSpec::lan_1g());
                row.push(machine);
            }
            line_ids.push(line);
            machines.push(row);
        }
        FactoryTopology {
            network,
            machines,
            lines: line_ids,
            factory,
            cloud,
        }
    }

    /// All machines, flattened.
    pub fn all_machines(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.machines.iter().flatten().copied()
    }
}

/// The network-monitoring hierarchy of Fig. 1b: routers inside regions,
/// regional collectors, a network-wide data store, and the cloud.
#[derive(Debug, Clone)]
pub struct IspTopology {
    /// The underlying network.
    pub network: Network,
    /// Routers, grouped by region: `routers[region][r]`.
    pub routers: Vec<Vec<NodeId>>,
    /// One collector data store per region.
    pub regions: Vec<NodeId>,
    /// The network-wide data store (e.g. at the NOC).
    pub noc: NodeId,
    /// The analysis cloud.
    pub cloud: NodeId,
}

impl IspTopology {
    /// Builds an ISP with `regions` regions of `routers_per_region` routers.
    ///
    /// Link classes: router→region 10 GbE (in-POP), region→NOC WAN with
    /// 10 ms latency and 1 Gbit/s, NOC→cloud a 100 Mbit/s uplink.
    ///
    /// # Panics
    ///
    /// Panics if `regions` or `routers_per_region` is zero.
    pub fn build(regions: usize, routers_per_region: usize) -> Self {
        assert!(regions > 0, "at least one region required");
        assert!(
            routers_per_region > 0,
            "at least one router per region required"
        );
        let mut network = Network::new();
        let cloud = network.add_node("cloud", NodeKind::Cloud);
        let noc = network.add_node("noc", NodeKind::DataStore);
        network.connect(noc, cloud, LinkSpec::wan_100m());
        let inter_region = LinkSpec {
            bandwidth_bps: 125_000_000,
            latency: TimeDelta::from_millis(10),
        };
        let mut region_ids = Vec::with_capacity(regions);
        let mut routers = Vec::with_capacity(regions);
        for g in 0..regions {
            let region = network.add_node(format!("region-{g}"), NodeKind::DataStore);
            network.connect(region, noc, inter_region);
            let mut row = Vec::with_capacity(routers_per_region);
            for r in 0..routers_per_region {
                let router = network.add_node(format!("router-{g}-{r}"), NodeKind::Router);
                network.connect(router, region, LinkSpec::lan_10g());
                row.push(router);
            }
            region_ids.push(region);
            routers.push(row);
        }
        IspTopology {
            network,
            routers,
            regions: region_ids,
            noc,
            cloud,
        }
    }

    /// All routers, flattened.
    pub fn all_routers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.routers.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::time::Timestamp;

    #[test]
    fn factory_shape() {
        let f = FactoryTopology::build(3, 4);
        assert_eq!(f.lines.len(), 3);
        assert_eq!(f.all_machines().count(), 12);
        // 12 machines + 3 lines + factory + cloud.
        assert_eq!(f.network.node_count(), 17);
    }

    #[test]
    fn factory_paths_follow_hierarchy() {
        let mut f = FactoryTopology::build(2, 2);
        let machine = f.machines[1][0];
        let r = f
            .network
            .transfer(machine, f.cloud, 1_000, Timestamp::ZERO)
            .unwrap();
        assert_eq!(r.path, vec![machine, f.lines[1], f.factory, f.cloud]);
        // WAN latency dominates.
        assert!(r.latency() >= TimeDelta::from_millis(20));
    }

    #[test]
    fn isp_shape_and_paths() {
        let mut t = IspTopology::build(2, 8);
        assert_eq!(t.all_routers().count(), 16);
        let router = t.routers[0][7];
        let r = t
            .network
            .transfer(router, t.noc, 500, Timestamp::ZERO)
            .unwrap();
        assert_eq!(r.path, vec![router, t.regions[0], t.noc]);
    }

    #[test]
    fn cross_region_goes_through_noc() {
        let t = IspTopology::build(2, 1);
        let path = t.network.route(t.routers[0][0], t.routers[1][0]).unwrap();
        assert!(path.contains(&t.noc));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_factory() {
        let _ = FactoryTopology::build(0, 3);
    }
}
