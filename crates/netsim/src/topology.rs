//! Nodes, links, routing and transfer accounting.

use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use megastream_flow::time::{TimeDelta, Timestamp};

use crate::fault::FaultPlan;

/// Identifier of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (stable for the lifetime of the network).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What role a node plays in the hierarchy (Fig. 1 / Fig. 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A sensor or machine producing raw data streams.
    Sensor,
    /// A node hosting a data store (any hierarchy level).
    DataStore,
    /// A compute cluster running analytics/applications.
    Compute,
    /// The cloud / corporate datacenter.
    Cloud,
    /// A plain router/switch.
    Router,
}

/// Bandwidth and latency of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Capacity in bytes per (simulated) second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency.
    pub latency: TimeDelta,
}

impl LinkSpec {
    /// A gigabit-Ethernet-class LAN link (125 MB/s, 0.5 ms).
    pub fn lan_1g() -> Self {
        LinkSpec {
            bandwidth_bps: 125_000_000,
            latency: TimeDelta::from_micros(500),
        }
    }

    /// A 10-gigabit backbone link (1.25 GB/s, 0.2 ms).
    pub fn lan_10g() -> Self {
        LinkSpec {
            bandwidth_bps: 1_250_000_000,
            latency: TimeDelta::from_micros(200),
        }
    }

    /// A constrained WAN uplink (12.5 MB/s ≈ 100 Mbit/s, 20 ms) — the kind
    /// of link the paper argues raw mega-dataset streams overwhelm.
    pub fn wan_100m() -> Self {
        LinkSpec {
            bandwidth_bps: 12_500_000,
            latency: TimeDelta::from_millis(20),
        }
    }

    /// Serialization/transfer time for `bytes` on this link, excluding
    /// propagation latency.
    pub fn transmit_time(&self, bytes: u64) -> TimeDelta {
        // micros = bytes / (bytes/s) * 1e6, rounded up.
        let micros = (bytes as u128 * 1_000_000 + self.bandwidth_bps as u128 - 1)
            / self.bandwidth_bps.max(1) as u128;
        TimeDelta::from_micros(micros.min(u64::MAX as u128) as u64)
    }
}

/// Receipt describing one completed transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferReceipt {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// When the transfer was initiated.
    pub sent_at: Timestamp,
    /// When the last byte arrived at `to`.
    pub delivered_at: Timestamp,
    /// The nodes traversed, including endpoints.
    pub path: Vec<NodeId>,
}

impl TransferReceipt {
    /// End-to-end transfer latency.
    pub fn latency(&self) -> TimeDelta {
        self.delivered_at - self.sent_at
    }
}

/// Error returned by [`Network::transfer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferError {
    /// No path exists between the endpoints.
    NoRoute(NodeId, NodeId),
    /// An endpoint id is not part of this network.
    UnknownNode(NodeId),
    /// Every surviving path crosses this link, and it is inside a scheduled
    /// outage window. Transient: retry after the window closes.
    LinkDown(NodeId, NodeId),
    /// The transfer needs this node (endpoint or only relay) but it is
    /// inside a crash window. Transient: the node restarts when the window
    /// closes.
    NodeDown(NodeId),
    /// The payload was dropped crossing this link (probabilistic loss).
    /// Bytes already forwarded on upstream hops stay accounted — they did
    /// cross those links. Transient: retry immediately.
    Lost(NodeId, NodeId),
}

impl TransferError {
    /// Whether retrying the same transfer later can succeed. `NoRoute` and
    /// `UnknownNode` are topology bugs; the fault variants are transient.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TransferError::LinkDown(..) | TransferError::NodeDown(..) | TransferError::Lost(..)
        )
    }
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::NoRoute(a, b) => write!(f, "no route from {a} to {b}"),
            TransferError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TransferError::LinkDown(a, b) => write!(f, "link {a} <-> {b} is down"),
            TransferError::NodeDown(n) => write!(f, "node {n} is down"),
            TransferError::Lost(a, b) => write!(f, "payload lost crossing {a} -> {b}"),
        }
    }
}

impl std::error::Error for TransferError {}

#[derive(Debug, Clone)]
struct NodeInfo {
    name: String,
    kind: NodeKind,
}

/// A static network with byte accounting.
///
/// Transfers are modelled store-and-forward: each hop adds its propagation
/// latency plus the payload's transmit time at the hop's bandwidth. Every
/// byte crossing a link is accounted to that link, so experiments can report
/// exact per-link and total transfer volumes.
///
/// ```
/// use megastream_netsim::topology::{LinkSpec, Network, NodeKind};
/// use megastream_flow::time::Timestamp;
///
/// let mut net = Network::new();
/// let a = net.add_node("edge", NodeKind::DataStore);
/// let b = net.add_node("cloud", NodeKind::Cloud);
/// net.connect(a, b, LinkSpec::wan_100m());
/// let receipt = net.transfer(a, b, 1_000_000, Timestamp::ZERO)?;
/// assert!(receipt.latency().as_secs_f64() > 0.08); // 1 MB over 12.5 MB/s + 20 ms
/// assert_eq!(net.total_bytes(), 1_000_000);
/// # Ok::<(), megastream_netsim::topology::TransferError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Network {
    nodes: Vec<NodeInfo>,
    links: HashMap<(usize, usize), LinkSpec>,
    adjacency: Vec<Vec<usize>>,
    link_bytes: HashMap<(usize, usize), u64>,
    total_bytes: u64,
    transfers: u64,
    faults: Option<FaultPlan>,
    lost_transfers: u64,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        self.nodes.push(NodeInfo {
            name: name.into(),
            kind,
        });
        self.adjacency.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Connects two nodes bidirectionally.
    ///
    /// # Panics
    ///
    /// Panics if either node id is unknown or `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        assert!(a.0 < self.nodes.len(), "unknown node {a}");
        assert!(b.0 < self.nodes.len(), "unknown node {b}");
        assert_ne!(a, b, "self-links are not allowed");
        self.links.insert((a.0, b.0), spec);
        self.links.insert((b.0, a.0), spec);
        if !self.adjacency[a.0].contains(&b.0) {
            self.adjacency[a.0].push(b.0);
        }
        if !self.adjacency[b.0].contains(&a.0) {
            self.adjacency[b.0].push(a.0);
        }
    }

    /// Node name.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Node kind.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0].kind
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// The link between two adjacent nodes, if any.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<LinkSpec> {
        self.links.get(&(a.0, b.0)).copied()
    }

    /// Minimum-latency path (Dijkstra over per-hop latency), if one exists.
    /// Ignores any installed fault plan; see [`route_at`](Self::route_at)
    /// for fault-aware routing.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        self.dijkstra(from, to, None)
    }

    /// Minimum-latency path at simulated time `now`, steering around links
    /// and nodes the installed [`FaultPlan`] has down. Without a plan this
    /// is identical to [`route`](Self::route). Returns `None` if every
    /// path is severed (or an endpoint is down).
    pub fn route_at(&self, from: NodeId, to: NodeId, now: Timestamp) -> Option<Vec<NodeId>> {
        self.dijkstra(from, to, self.faults.as_ref().map(|p| (p, now)))
    }

    fn dijkstra(
        &self,
        from: NodeId,
        to: NodeId,
        faults: Option<(&FaultPlan, Timestamp)>,
    ) -> Option<Vec<NodeId>> {
        if from.0 >= self.nodes.len() || to.0 >= self.nodes.len() {
            return None;
        }
        let down_node = |id: usize| faults.is_some_and(|(p, now)| p.is_node_down(NodeId(id), now));
        let down_link = |u: usize, v: usize| {
            faults.is_some_and(|(p, now)| p.is_link_down(NodeId(u), NodeId(v), now))
        };
        if down_node(from.0) || down_node(to.0) {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let n = self.nodes.len();
        let mut dist = vec![u64::MAX; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[from.0] = 0;
        heap.push(std::cmp::Reverse((0u64, from.0)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == to.0 {
                break;
            }
            for &v in &self.adjacency[u] {
                if down_node(v) || down_link(u, v) {
                    continue;
                }
                let spec = self.links[&(u, v)];
                let nd = d + spec.latency.as_micros().max(1);
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        if dist[to.0] == u64::MAX {
            return None;
        }
        let mut path = vec![to.0];
        let mut cur = to.0;
        while cur != from.0 {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path.into_iter().map(NodeId).collect())
    }

    /// Sends `bytes` from `from` to `to` at simulated time `now`,
    /// accounting every byte to each link on the path. With a
    /// [`FaultPlan`] installed, routing steers around dead links/nodes
    /// where a detour exists; a payload dropped mid-path by probabilistic
    /// loss still accounts the bytes it pushed across upstream hops.
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::UnknownNode`] for out-of-range ids,
    /// [`TransferError::NoRoute`] if the nodes are not connected, and —
    /// with faults installed — [`TransferError::NodeDown`] /
    /// [`TransferError::LinkDown`] when no surviving path exists at `now`,
    /// or [`TransferError::Lost`] when a loss draw drops the payload.
    pub fn transfer(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        now: Timestamp,
    ) -> Result<TransferReceipt, TransferError> {
        if from.0 >= self.nodes.len() {
            return Err(TransferError::UnknownNode(from));
        }
        if to.0 >= self.nodes.len() {
            return Err(TransferError::UnknownNode(to));
        }
        let static_path = self
            .route(from, to)
            .ok_or(TransferError::NoRoute(from, to))?;
        let path = match self.route_at(from, to, now) {
            Some(p) => p,
            None => return Err(self.diagnose_blocked(&static_path, from, to, now)),
        };
        let mut at = now;
        for hop in path.windows(2) {
            let (u, v) = (hop[0].0, hop[1].0);
            let spec = self.links[&(u, v)];
            at += spec.latency + spec.transmit_time(bytes);
            *self.link_bytes.entry((u, v)).or_default() += bytes;
            self.total_bytes += bytes;
            let lost = self
                .faults
                .as_mut()
                .is_some_and(|p| p.draw_loss(NodeId(u), NodeId(v)));
            if lost {
                self.lost_transfers += 1;
                return Err(TransferError::Lost(NodeId(u), NodeId(v)));
            }
        }
        self.transfers += 1;
        Ok(TransferReceipt {
            from,
            to,
            bytes,
            sent_at: now,
            delivered_at: at,
            path,
        })
    }

    /// Explains *why* no fault-aware route exists: the first down node or
    /// down link along the static minimum-latency path.
    fn diagnose_blocked(
        &self,
        static_path: &[NodeId],
        from: NodeId,
        to: NodeId,
        now: Timestamp,
    ) -> TransferError {
        if let Some(plan) = &self.faults {
            for &n in static_path {
                if plan.is_node_down(n, now) {
                    return TransferError::NodeDown(n);
                }
            }
            for hop in static_path.windows(2) {
                if plan.is_link_down(hop[0], hop[1], now) {
                    return TransferError::LinkDown(hop[0], hop[1]);
                }
            }
            // The static path is clear but every detour it would need is
            // not: report the hop whose link the plan severed elsewhere.
            // (Only reachable when an outage cuts a non-static-path bridge;
            // fall through to NoRoute as the honest answer.)
        }
        TransferError::NoRoute(from, to)
    }

    /// Installs a fault plan, replacing any previous one.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Removes the fault plan; the network becomes reliable again.
    pub fn clear_faults(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// Whether node `n` is up at `now` (always true without a fault plan).
    pub fn node_up(&self, n: NodeId, now: Timestamp) -> bool {
        !self.faults.as_ref().is_some_and(|p| p.is_node_down(n, now))
    }

    /// Whether the link `a ↔ b` is up at `now` (always true without a
    /// fault plan). Says nothing about whether the link exists.
    pub fn link_up(&self, a: NodeId, b: NodeId, now: Timestamp) -> bool {
        !self
            .faults
            .as_ref()
            .is_some_and(|p| p.is_link_down(a, b, now))
    }

    /// Number of transfers dropped by probabilistic loss.
    pub fn lost_transfers(&self) -> u64 {
        self.lost_transfers
    }

    /// Total bytes that crossed any link (a payload traversing `h` hops
    /// counts `h` times — it did use `h` links).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes that crossed the directed link `a → b`.
    pub fn bytes_on(&self, a: NodeId, b: NodeId) -> u64 {
        self.link_bytes.get(&(a.0, b.0)).copied().unwrap_or(0)
    }

    /// Number of completed transfers.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Resets all byte accounting (topology and fault plan are kept).
    pub fn reset_accounting(&mut self) {
        self.link_bytes.clear();
        self.total_bytes = 0;
        self.transfers = 0;
        self.lost_transfers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node("a", NodeKind::Sensor);
        let b = net.add_node("b", NodeKind::DataStore);
        let c = net.add_node("c", NodeKind::Cloud);
        net.connect(a, b, LinkSpec::lan_1g());
        net.connect(b, c, LinkSpec::wan_100m());
        (net, a, b, c)
    }

    #[test]
    fn transmit_time_math() {
        let wan = LinkSpec::wan_100m();
        // 12.5 MB at 12.5 MB/s = 1 s.
        assert_eq!(wan.transmit_time(12_500_000), TimeDelta::from_secs(1));
        assert_eq!(wan.transmit_time(0), TimeDelta::ZERO);
        // Rounds up.
        assert_eq!(LinkSpec::lan_1g().transmit_time(1).as_micros(), 1);
    }

    #[test]
    fn route_prefers_low_latency() {
        let mut net = Network::new();
        let a = net.add_node("a", NodeKind::Router);
        let b = net.add_node("b", NodeKind::Router);
        let c = net.add_node("c", NodeKind::Router);
        // Direct slow path vs two fast hops (total latency lower).
        net.connect(
            a,
            b,
            LinkSpec {
                bandwidth_bps: 1_000_000,
                latency: TimeDelta::from_millis(100),
            },
        );
        net.connect(
            a,
            c,
            LinkSpec {
                bandwidth_bps: 1_000_000,
                latency: TimeDelta::from_millis(10),
            },
        );
        net.connect(
            c,
            b,
            LinkSpec {
                bandwidth_bps: 1_000_000,
                latency: TimeDelta::from_millis(10),
            },
        );
        let path = net.route(a, b).unwrap();
        assert_eq!(path, vec![a, c, b]);
    }

    #[test]
    fn route_to_self_and_unreachable() {
        let (net, a, _, _) = chain();
        assert_eq!(net.route(a, a), Some(vec![a]));
        let mut net2 = net.clone();
        let lonely = net2.add_node("x", NodeKind::Router);
        assert_eq!(net2.route(a, lonely), None);
    }

    #[test]
    fn transfer_accumulates_hop_costs() {
        let (mut net, a, b, c) = chain();
        let r = net.transfer(a, c, 1_000_000, Timestamp::ZERO).unwrap();
        assert_eq!(r.path, vec![a, b, c]);
        // LAN: 0.5 ms + 8 ms transmit; WAN: 20 ms + 80 ms transmit.
        let expected = TimeDelta::from_micros(500)
            + LinkSpec::lan_1g().transmit_time(1_000_000)
            + TimeDelta::from_millis(20)
            + LinkSpec::wan_100m().transmit_time(1_000_000);
        assert_eq!(r.latency(), expected);
    }

    #[test]
    fn byte_accounting_per_link() {
        let (mut net, a, b, c) = chain();
        net.transfer(a, c, 100, Timestamp::ZERO).unwrap();
        net.transfer(b, c, 50, Timestamp::ZERO).unwrap();
        assert_eq!(net.bytes_on(a, b), 100);
        assert_eq!(net.bytes_on(b, c), 150);
        assert_eq!(net.bytes_on(c, b), 0); // directed accounting
        assert_eq!(net.total_bytes(), 250);
        assert_eq!(net.transfer_count(), 2);
        net.reset_accounting();
        assert_eq!(net.total_bytes(), 0);
    }

    #[test]
    fn transfer_errors() {
        let (mut net, a, _, _) = chain();
        let bogus = NodeId(99);
        assert_eq!(
            net.transfer(a, bogus, 1, Timestamp::ZERO),
            Err(TransferError::UnknownNode(bogus))
        );
        let lonely = net.add_node("x", NodeKind::Router);
        assert_eq!(
            net.transfer(a, lonely, 1, Timestamp::ZERO),
            Err(TransferError::NoRoute(a, lonely))
        );
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut net = Network::new();
        let a = net.add_node("a", NodeKind::Router);
        net.connect(a, a, LinkSpec::lan_1g());
    }

    #[test]
    fn link_down_blocks_and_recovers() {
        let (mut net, a, b, c) = chain();
        let mut plan = FaultPlan::seeded(1);
        plan.link_down(b, c, Timestamp::from_secs(60), Timestamp::from_secs(120));
        net.install_faults(plan);
        assert!(net.transfer(a, c, 10, Timestamp::from_secs(10)).is_ok());
        assert_eq!(
            net.transfer(a, c, 10, Timestamp::from_secs(60)),
            Err(TransferError::LinkDown(b, c))
        );
        assert!(!net.link_up(b, c, Timestamp::from_secs(90)));
        assert!(net.transfer(a, c, 10, Timestamp::from_secs(120)).is_ok());
    }

    #[test]
    fn node_down_blocks_endpoints_and_relays() {
        let (mut net, a, b, c) = chain();
        let mut plan = FaultPlan::seeded(1);
        plan.node_down(b, Timestamp::ZERO, Timestamp::from_secs(10));
        net.install_faults(plan);
        // b is the only relay between a and c.
        assert_eq!(
            net.transfer(a, c, 10, Timestamp::from_secs(5)),
            Err(TransferError::NodeDown(b))
        );
        // ...and an endpoint itself.
        assert_eq!(
            net.transfer(a, b, 10, Timestamp::from_secs(5)),
            Err(TransferError::NodeDown(b))
        );
        assert!(!net.node_up(b, Timestamp::from_secs(5)));
        assert!(net.node_up(b, Timestamp::from_secs(10)));
        assert!(net.transfer(a, c, 10, Timestamp::from_secs(10)).is_ok());
    }

    #[test]
    fn routing_detours_around_down_link() {
        // Triangle: a-b direct (fast) plus a-c-b detour (slower).
        let mut net = Network::new();
        let a = net.add_node("a", NodeKind::Router);
        let b = net.add_node("b", NodeKind::Router);
        let c = net.add_node("c", NodeKind::Router);
        let fast = LinkSpec {
            bandwidth_bps: 1_000_000,
            latency: TimeDelta::from_millis(1),
        };
        let slow = LinkSpec {
            bandwidth_bps: 1_000_000,
            latency: TimeDelta::from_millis(10),
        };
        net.connect(a, b, fast);
        net.connect(a, c, slow);
        net.connect(c, b, slow);
        let mut plan = FaultPlan::seeded(3);
        plan.link_down(a, b, Timestamp::ZERO, Timestamp::from_secs(100));
        net.install_faults(plan);
        // Static route still prefers the direct link...
        assert_eq!(net.route(a, b).unwrap(), vec![a, b]);
        // ...but the fault-aware route and the transfer take the detour.
        assert_eq!(net.route_at(a, b, Timestamp::ZERO).unwrap(), vec![a, c, b]);
        let r = net.transfer(a, b, 10, Timestamp::ZERO).unwrap();
        assert_eq!(r.path, vec![a, c, b]);
    }

    #[test]
    fn loss_accounts_upstream_hops() {
        let (mut net, a, _b, c) = chain();
        let mut plan = FaultPlan::seeded(4);
        plan.link_loss(_b, c, 1.0); // always lost on the second hop
        net.install_faults(plan);
        let err = net.transfer(a, c, 100, Timestamp::ZERO).unwrap_err();
        assert_eq!(err, TransferError::Lost(_b, c));
        assert!(err.is_transient());
        // First hop delivered its bytes; second hop accounted them too
        // (the payload died crossing it), but no receipt was issued.
        assert_eq!(net.bytes_on(a, _b), 100);
        assert_eq!(net.transfer_count(), 0);
        assert_eq!(net.lost_transfers(), 1);
    }

    #[test]
    fn fatal_errors_are_not_transient() {
        assert!(!TransferError::NoRoute(NodeId(0), NodeId(1)).is_transient());
        assert!(!TransferError::UnknownNode(NodeId(9)).is_transient());
        assert!(TransferError::NodeDown(NodeId(0)).is_transient());
    }

    #[test]
    fn metadata_accessors() {
        let (net, a, _, c) = chain();
        assert_eq!(net.name(a), "a");
        assert_eq!(net.kind(c), NodeKind::Cloud);
        assert_eq!(net.node_count(), 3);
        assert!(net.link(a, c).is_none());
        assert!(net.link(a, NodeId(1)).is_some());
    }
}
