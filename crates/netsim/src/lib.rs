//! Deterministic discrete-event network simulation.
//!
//! The paper's experiments are statements about *bytes moved, latency
//! incurred, and control-loop timeliness* across a hierarchy of locations
//! (machine → production line → factory → cloud; router → region → network
//! → cloud). This crate provides the substrate that accounts those costs
//! exactly and deterministically:
//!
//! * [`clock`] — simulated time,
//! * [`event`] — a generic discrete-event queue,
//! * [`topology`] — nodes, links (bandwidth + latency), routing and
//!   per-link byte accounting,
//! * [`hierarchy`] — builders for the two topologies of Fig. 1,
//! * [`fault`] — seeded, deterministic fault injection (link-down windows,
//!   node crash/restart schedules, per-link loss).
//!
//! All experiments run on simulated time, so results are reproducible given
//! a seed: no wall-clock dependence anywhere.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod event;
pub mod fault;
pub mod hierarchy;
pub mod topology;

pub use clock::SimClock;
pub use event::EventQueue;
pub use fault::FaultPlan;
pub use hierarchy::{FactoryTopology, IspTopology};
pub use topology::{LinkSpec, Network, NodeId, NodeKind, TransferError, TransferReceipt};
