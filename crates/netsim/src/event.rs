//! A generic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use megastream_flow::time::Timestamp;

/// A time-ordered event queue. Events scheduled for the same instant are
/// delivered in scheduling order (FIFO), which keeps simulations
/// deterministic.
///
/// ```
/// use megastream_netsim::event::EventQueue;
/// use megastream_flow::time::Timestamp;
///
/// let mut q = EventQueue::new();
/// q.schedule(Timestamp::from_secs(2), "late");
/// q.schedule(Timestamp::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((Timestamp::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((Timestamp::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Timestamp,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` for time `at`.
    pub fn schedule(&mut self, at: Timestamp, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp::from_secs(3), 3);
        q.schedule(Timestamp::from_secs(1), 1);
        q.schedule(Timestamp::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Timestamp::from_secs(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Timestamp::from_secs(5), ());
        q.schedule(Timestamp::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Timestamp::from_secs(2)));
    }
}
