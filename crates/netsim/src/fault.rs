//! Seeded, deterministic fault injection.
//!
//! The paper's whole premise is that mega-dataset analytics runs at the
//! edge over *constrained, unreliable* links (§II "limited connectivity").
//! A [`FaultPlan`] scripts the unreliability: scheduled link-down windows,
//! node crash/restart windows, and per-link loss probabilities drawn from
//! the vendored deterministic RNG. Installed on a
//! [`Network`](crate::topology::Network), the plan makes
//! [`transfer`](crate::topology::Network::transfer) fail with
//! [`TransferError::LinkDown`](crate::topology::TransferError::LinkDown),
//! [`NodeDown`](crate::topology::TransferError::NodeDown) or
//! [`Lost`](crate::topology::TransferError::Lost) — and makes routing
//! steer around dead elements where a detour exists.
//!
//! Everything is keyed to simulated time and a caller-chosen seed: two
//! runs with the same plan produce byte-identical failure sequences.

use std::collections::HashMap;

use megastream_flow::time::Timestamp;
use rand::prelude::{Rng, SeedableRng, StdRng};

use crate::topology::NodeId;

/// A half-open outage window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outage {
    from: Timestamp,
    until: Timestamp,
}

impl Outage {
    fn covers(&self, now: Timestamp) -> bool {
        now >= self.from && now < self.until
    }
}

/// A deterministic schedule of link/node failures plus per-link loss.
///
/// ```
/// use megastream_flow::time::Timestamp;
/// use megastream_netsim::fault::FaultPlan;
/// use megastream_netsim::topology::{LinkSpec, Network, NodeKind, TransferError};
///
/// let mut net = Network::new();
/// let a = net.add_node("edge", NodeKind::DataStore);
/// let b = net.add_node("cloud", NodeKind::Cloud);
/// net.connect(a, b, LinkSpec::wan_100m());
///
/// let mut plan = FaultPlan::seeded(7);
/// plan.link_down(a, b, Timestamp::from_secs(60), Timestamp::from_secs(120));
/// net.install_faults(plan);
///
/// assert!(net.transfer(a, b, 100, Timestamp::from_secs(10)).is_ok());
/// assert_eq!(
///     net.transfer(a, b, 100, Timestamp::from_secs(90)),
///     Err(TransferError::LinkDown(a, b))
/// );
/// assert!(net.transfer(a, b, 100, Timestamp::from_secs(120)).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Link outage windows, keyed by normalized (lo, hi) endpoint pair.
    link_outages: HashMap<(usize, usize), Vec<Outage>>,
    /// Node crash windows (the node restarts when the window closes).
    node_outages: HashMap<usize, Vec<Outage>>,
    /// Per-link loss probability, keyed by normalized endpoint pair.
    loss: HashMap<(usize, usize), f64>,
    /// The deterministic loss-draw stream.
    rng: StdRng,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan whose loss draws come from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            link_outages: HashMap::new(),
            node_outages: HashMap::new(),
            loss: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn key(a: NodeId, b: NodeId) -> (usize, usize) {
        let (x, y) = (a.index(), b.index());
        (x.min(y), x.max(y))
    }

    /// Schedules the (bidirectional) link `a ↔ b` down for `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn link_down(&mut self, a: NodeId, b: NodeId, from: Timestamp, until: Timestamp) {
        assert!(until > from, "empty link-down window");
        self.link_outages
            .entry(Self::key(a, b))
            .or_default()
            .push(Outage { from, until });
    }

    /// Schedules node `n` crashed for `[from, until)`; it restarts at
    /// `until`. While down, every transfer from, to, or through `n` fails.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn node_down(&mut self, n: NodeId, from: Timestamp, until: Timestamp) {
        assert!(until > from, "empty node-down window");
        self.node_outages
            .entry(n.index())
            .or_default()
            .push(Outage { from, until });
    }

    /// Sets the per-transfer loss probability of link `a ↔ b`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn link_loss(&mut self, a: NodeId, b: NodeId, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of [0, 1]"
        );
        self.loss.insert(Self::key(a, b), p);
    }

    /// Whether the link `a ↔ b` is inside an outage window at `now`.
    pub fn is_link_down(&self, a: NodeId, b: NodeId, now: Timestamp) -> bool {
        self.link_outages
            .get(&Self::key(a, b))
            .is_some_and(|ws| ws.iter().any(|w| w.covers(now)))
    }

    /// Whether node `n` is inside a crash window at `now`.
    pub fn is_node_down(&self, n: NodeId, now: Timestamp) -> bool {
        self.node_outages
            .get(&n.index())
            .is_some_and(|ws| ws.iter().any(|w| w.covers(now)))
    }

    /// Draws whether a transfer crossing `a → b` is lost. Consumes one RNG
    /// draw *only* for links with a configured loss probability, so plans
    /// without loss stay draw-free and schedules remain deterministic.
    pub(crate) fn draw_loss(&mut self, a: NodeId, b: NodeId) -> bool {
        match self.loss.get(&Self::key(a, b)).copied() {
            Some(p) if p > 0.0 => self.rng.gen_bool(p),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let mut plan = FaultPlan::seeded(1);
        let (a, b) = (NodeId(0), NodeId(1));
        plan.link_down(a, b, Timestamp::from_secs(10), Timestamp::from_secs(20));
        assert!(!plan.is_link_down(a, b, Timestamp::from_secs(9)));
        assert!(plan.is_link_down(a, b, Timestamp::from_secs(10)));
        assert!(plan.is_link_down(b, a, Timestamp::from_secs(19)));
        assert!(!plan.is_link_down(a, b, Timestamp::from_secs(20)));
    }

    #[test]
    fn node_windows_and_restart() {
        let mut plan = FaultPlan::seeded(1);
        let n = NodeId(3);
        plan.node_down(n, Timestamp::ZERO, Timestamp::from_secs(5));
        plan.node_down(n, Timestamp::from_secs(50), Timestamp::from_secs(60));
        assert!(plan.is_node_down(n, Timestamp::from_secs(1)));
        assert!(!plan.is_node_down(n, Timestamp::from_secs(5)));
        assert!(plan.is_node_down(n, Timestamp::from_secs(55)));
    }

    #[test]
    fn loss_draws_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::seeded(seed);
            let (a, b) = (NodeId(0), NodeId(1));
            plan.link_loss(a, b, 0.5);
            (0..64).map(|_| plan.draw_loss(a, b)).collect()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn lossless_links_never_draw() {
        let mut plan = FaultPlan::seeded(2);
        let (a, b) = (NodeId(0), NodeId(1));
        for _ in 0..32 {
            assert!(!plan.draw_loss(a, b));
        }
        plan.link_loss(a, b, 0.0);
        assert!(!plan.draw_loss(a, b));
        plan.link_loss(a, b, 1.0);
        assert!(plan.draw_loss(a, b));
    }

    #[test]
    #[should_panic(expected = "empty link-down window")]
    fn rejects_empty_window() {
        let mut plan = FaultPlan::seeded(0);
        plan.link_down(
            NodeId(0),
            NodeId(1),
            Timestamp::from_secs(5),
            Timestamp::from_secs(5),
        );
    }
}
