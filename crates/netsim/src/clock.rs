//! Simulated time source.

use megastream_flow::time::{TimeDelta, Timestamp};

/// A monotone simulated clock.
///
/// ```
/// use megastream_netsim::clock::SimClock;
/// use megastream_flow::time::TimeDelta;
///
/// let mut clock = SimClock::new();
/// clock.advance(TimeDelta::from_secs(5));
/// assert_eq!(clock.now().as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimClock {
    now: Timestamp,
}

impl SimClock {
    /// A clock at the simulation origin.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances the clock by `delta`.
    pub fn advance(&mut self, delta: TimeDelta) {
        self.now += delta;
    }

    /// Advances the clock to `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — simulated time never moves backwards.
    pub fn advance_to(&mut self, at: Timestamp) {
        assert!(
            at >= self.now,
            "clock cannot move backwards ({at} < {})",
            self.now
        );
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        c.advance(TimeDelta::from_millis(1500));
        c.advance_to(Timestamp::from_secs(2));
        assert_eq!(c.now(), Timestamp::from_secs(2));
    }

    #[test]
    fn advance_to_same_instant_is_ok() {
        let mut c = SimClock::new();
        c.advance_to(Timestamp::ZERO);
        assert_eq!(c.now(), Timestamp::ZERO);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn rejects_time_travel() {
        let mut c = SimClock::new();
        c.advance(TimeDelta::from_secs(10));
        c.advance_to(Timestamp::from_secs(5));
    }
}
