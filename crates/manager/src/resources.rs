//! Resource tracking (the manager "tracks the availability of network
//! bandwidth and computing nodes across the architecture" and the storage
//! within the data stores).

use std::collections::HashMap;

use megastream_datastore::DataStore;

/// Per-store resource budgets and the latest observed usage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceTracker {
    storage_budget: HashMap<String, usize>,
    storage_used: HashMap<String, usize>,
    /// Observed ingest rates (items/s), fed back into adaptation.
    ingest_rate: HashMap<String, f64>,
}

impl ResourceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ResourceTracker::default()
    }

    /// Sets a store's storage budget in bytes.
    pub fn set_storage_budget(&mut self, store: impl Into<String>, bytes: usize) {
        self.storage_budget.insert(store.into(), bytes);
    }

    /// The storage budget of `store` (`usize::MAX` if never set).
    pub fn storage_budget(&self, store: &str) -> usize {
        self.storage_budget
            .get(store)
            .copied()
            .unwrap_or(usize::MAX)
    }

    /// Records an observation of a store's state.
    pub fn observe_store(&mut self, store: &DataStore, ingest_rate: f64) {
        self.storage_used
            .insert(store.name().to_owned(), store.footprint_bytes());
        self.ingest_rate
            .insert(store.name().to_owned(), ingest_rate);
    }

    /// Last observed storage use of `store`.
    pub fn storage_used(&self, store: &str) -> usize {
        self.storage_used.get(store).copied().unwrap_or(0)
    }

    /// Last observed ingest rate of `store`.
    pub fn ingest_rate(&self, store: &str) -> f64 {
        self.ingest_rate.get(store).copied().unwrap_or(0.0)
    }

    /// Utilization of a store's storage budget in `[0, ∞)`.
    pub fn utilization(&self, store: &str) -> f64 {
        let budget = self.storage_budget(store);
        if budget == usize::MAX {
            return 0.0;
        }
        self.storage_used(store) as f64 / budget.max(1) as f64
    }

    /// Whether any tracked store is over its budget.
    pub fn overloaded_stores(&self) -> Vec<&str> {
        self.storage_used
            .iter()
            .filter(|(name, used)| **used > self.storage_budget(name))
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Drives one adaptation round on `store` (decision (c): how the
    /// computing primitives should be configured): the store's live
    /// aggregators share the configured budget.
    pub fn adapt(&self, store: &mut DataStore) {
        let budget = self.storage_budget(store.name());
        if budget == usize::MAX {
            return;
        }
        // Live aggregators get the budget not consumed by stored summaries.
        let stored = store.summaries().total_bytes();
        let live_budget = budget.saturating_sub(stored).max(1);
        let rate = self.ingest_rate(store.name());
        store.adapt_aggregators(live_budget, rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_datastore::{AggregatorSpec, StorageStrategy};
    use megastream_flow::record::FlowRecord;
    use megastream_flow::time::{TimeDelta, Timestamp};
    use megastream_flowtree::FlowtreeConfig;

    fn store(name: &str) -> DataStore {
        DataStore::new(
            name,
            StorageStrategy::RoundRobin {
                budget_bytes: 1 << 20,
            },
            TimeDelta::from_secs(60),
        )
    }

    #[test]
    fn budget_and_utilization() {
        let mut t = ResourceTracker::new();
        t.set_storage_budget("s", 1000);
        assert_eq!(t.storage_budget("s"), 1000);
        assert_eq!(t.storage_budget("unknown"), usize::MAX);
        let mut s = store("s");
        s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        for i in 0..50u32 {
            s.ingest_flow(
                &"r".into(),
                &FlowRecord::builder()
                    .proto(6)
                    .src(format!("10.0.0.{i}").parse().unwrap(), 1)
                    .dst("1.1.1.1".parse().unwrap(), 2)
                    .packets(1)
                    .build(),
                Timestamp::ZERO,
            );
        }
        t.observe_store(&s, 50.0);
        assert!(t.storage_used("s") > 0);
        assert!(t.utilization("s") > 0.0);
        assert_eq!(t.ingest_rate("s"), 50.0);
    }

    #[test]
    fn overloaded_detection() {
        let mut t = ResourceTracker::new();
        t.set_storage_budget("s", 10);
        let mut s = store("s");
        s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        s.ingest_flow(
            &"r".into(),
            &FlowRecord::builder()
                .proto(6)
                .src("10.0.0.1".parse().unwrap(), 1)
                .dst("1.1.1.1".parse().unwrap(), 2)
                .packets(1)
                .build(),
            Timestamp::ZERO,
        );
        t.observe_store(&s, 1.0);
        assert_eq!(t.overloaded_stores(), vec!["s"]);
    }

    #[test]
    fn adapt_pushes_store_toward_budget() {
        let mut t = ResourceTracker::new();
        let mut s = store("s");
        s.install_aggregator(AggregatorSpec::Flowtree(
            FlowtreeConfig::default().with_capacity(1 << 16),
        ));
        for i in 0..2000u32 {
            s.ingest_flow(
                &"r".into(),
                &FlowRecord::builder()
                    .proto(6)
                    .src(
                        format!("10.{}.{}.{}", i % 4, (i / 4) % 200, i % 200)
                            .parse()
                            .unwrap(),
                        1,
                    )
                    .dst("1.1.1.1".parse().unwrap(), 2)
                    .packets(1)
                    .build(),
                Timestamp::ZERO,
            );
        }
        let used = s.footprint_bytes();
        t.set_storage_budget("s", used / 20);
        t.observe_store(&s, 2000.0);
        t.adapt(&mut s);
        assert!(
            s.footprint_bytes() < used,
            "adaptation did not shrink footprint"
        );
    }

    #[test]
    fn adapt_without_budget_is_noop() {
        let t = ResourceTracker::new();
        let mut s = store("s");
        s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        t.adapt(&mut s); // must not panic or change anything
        assert_eq!(s.aggregator_count(), 1);
    }
}
