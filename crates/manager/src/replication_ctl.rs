//! The adaptive-replication control loop (paper §VII, Fig. 6).
//!
//! The manager records partition accesses (①), predicts future accesses
//! (②), and when the prediction exceeds the threshold initiates
//! replication (③), which executes between the two data stores over the
//! simulated network (④).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use megastream_flow::time::Timestamp;
use megastream_netsim::topology::{Network, NodeId, TransferError};
use megastream_replication::policy::ReplicationPolicy;
use megastream_replication::tracker::AccessTracker;
use megastream_telemetry::{Telemetry, Tracer};

/// Why [`ReplicationController::on_access`] could not serve an access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// The partition id was never registered with the controller.
    UnknownPartition(usize),
    /// Neither the owner nor any replica could ship the result: every
    /// candidate source was down or unreachable at access time.
    NoAvailableSource {
        /// The partition whose sources were all unavailable.
        partition: usize,
        /// The error from the last source tried, if any transfer was
        /// attempted at all.
        last_error: Option<TransferError>,
    },
    /// A network transfer failed with a non-recoverable routing error.
    Transfer(TransferError),
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::UnknownPartition(p) => {
                write!(f, "partition {p} was never registered")
            }
            AccessError::NoAvailableSource {
                partition,
                last_error,
            } => {
                write!(f, "no available source for partition {partition}")?;
                if let Some(e) = last_error {
                    write!(f, " (last error: {e})")?;
                }
                Ok(())
            }
            AccessError::Transfer(e) => write!(f, "access transfer failed: {e}"),
        }
    }
}

impl Error for AccessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AccessError::Transfer(e) => Some(e),
            AccessError::NoAvailableSource {
                last_error: Some(e),
                ..
            } => Some(e),
            _ => None,
        }
    }
}

/// A partition registered with the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Node hosting the authoritative copy.
    pub owner: NodeId,
    /// Bytes a replication transfer moves.
    pub size_bytes: u64,
    /// Nodes holding replicas.
    pub replicas: Vec<NodeId>,
}

/// A replication the controller decided to start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationOrder {
    /// Which partition.
    pub partition: usize,
    /// From the owner…
    pub from: NodeId,
    /// …to the accessing store.
    pub to: NodeId,
    /// Transfer volume.
    pub bytes: u64,
}

/// The manager's replication controller.
#[derive(Debug, Clone)]
pub struct ReplicationController {
    policy: ReplicationPolicy,
    tracker: AccessTracker,
    partitions: Vec<PartitionInfo>,
    /// (accessor node, partition) pairs served locally.
    local_hits: u64,
    remote_hits: u64,
    shipped_bytes: u64,
    replication_bytes: u64,
    orders: Vec<ReplicationOrder>,
    /// Per-accessor tracking: a replica helps only the node that has it.
    replica_index: HashMap<(usize, NodeId), bool>,
    /// Reads served by a surviving replica because the owner was down.
    failovers: u64,
    /// Replica placements skipped because the target or transfer was
    /// unavailable (the read itself still succeeded).
    placements_skipped: u64,
    tel: Telemetry,
    tracer: Tracer,
}

impl ReplicationController {
    /// Creates a controller running `policy`.
    pub fn new(policy: ReplicationPolicy) -> Self {
        ReplicationController {
            policy,
            tracker: AccessTracker::new(0),
            partitions: Vec::new(),
            local_hits: 0,
            remote_hits: 0,
            shipped_bytes: 0,
            replication_bytes: 0,
            orders: Vec::new(),
            replica_index: HashMap::new(),
            failovers: 0,
            placements_skipped: 0,
            tel: Telemetry::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// Connects the controller (and its access tracker) to a telemetry
    /// registry: hit/miss counters, shipped and replication volumes, and
    /// replica churn are recorded under `replication.*`.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        self.tracker.set_telemetry(tel);
    }

    /// Connects the controller to a causal tracer: every remote access
    /// records a `replication.access` span tree — a `ship` child for the
    /// result transfer and, when the policy fires, a `replicate` child
    /// stamping the placement decision (partition, source, destination,
    /// volume). Passing [`Tracer::disabled`] detaches again.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Registers a partition; returns its id.
    pub fn register_partition(&mut self, owner: NodeId, size_bytes: u64) -> usize {
        self.partitions.push(PartitionInfo {
            owner,
            size_bytes,
            replicas: Vec::new(),
        });
        self.tracker = {
            let mut t = AccessTracker::new(self.partitions.len());
            t.seed_history(self.tracker.history().iter().copied());
            t.set_telemetry(&self.tel);
            // Preserve nothing else: registration happens before replay.
            t
        };
        self.partitions.len() - 1
    }

    /// Seeds the volume history used by the distribution-aware policy.
    pub fn seed_history(&mut self, volumes: impl IntoIterator<Item = u64>) {
        self.tracker.seed_history(volumes);
    }

    /// Records that `accessor` queried `partition`, shipping
    /// `result_bytes` if remote. Executes the query transfer on `network`
    /// and, if the policy says so, the replication transfer (Fig. 6 ③④).
    ///
    /// Reads tolerate partial failure: when the owner is down or the
    /// transfer from it fails, the controller fails the read over to the
    /// first surviving replica (in placement order). Replica placement is
    /// best-effort — a placement whose target node is down or whose
    /// transfer hits a transient fault is skipped (the read already
    /// succeeded), never retried within the same access.
    ///
    /// Returns the replication order if one was issued.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::UnknownPartition`] for an unregistered
    /// partition id, [`AccessError::NoAvailableSource`] when no source
    /// (owner or replica) could ship the result, and
    /// [`AccessError::Transfer`] when the replication transfer fails with
    /// a non-transient routing error.
    pub fn on_access(
        &mut self,
        partition: usize,
        accessor: NodeId,
        result_bytes: u64,
        network: &mut Network,
        now: Timestamp,
    ) -> Result<Option<ReplicationOrder>, AccessError> {
        // Records on drop, so every return path (local hit, failover,
        // error) lands in the access-latency histogram.
        let _access_timer = self.tel.timer("replication.access.micros");
        let info = self
            .partitions
            .get(partition)
            .cloned()
            .ok_or(AccessError::UnknownPartition(partition))?;
        let has_replica = *self
            .replica_index
            .get(&(partition, accessor))
            .unwrap_or(&false)
            || info.owner == accessor;
        if has_replica {
            self.local_hits += 1;
            self.tel.counter("replication.local_hits_total").inc();
            return Ok(None);
        }
        self.remote_hits += 1;
        self.shipped_bytes += result_bytes;
        self.tel.counter("replication.remote_hits_total").inc();
        self.tel
            .counter("replication.shipped_bytes_total")
            .add(result_bytes);
        let mut access_span = self.tracer.root("replication.access");
        if access_span.is_recording() {
            access_span.annotate("partition", &partition.to_string());
            access_span.annotate("accessor", &accessor.to_string());
        }
        // Candidate sources in preference order: the owner, then every
        // replica (any copy can serve a read).
        let mut sources = vec![info.owner];
        sources.extend(
            info.replicas
                .iter()
                .copied()
                .filter(|r| *r != accessor && *r != info.owner),
        );
        let mut served_by = None;
        let mut last_error = None;
        for source in sources {
            if !network.node_up(source, now) {
                last_error = Some(TransferError::NodeDown(source));
                continue;
            }
            let mut ship = access_span.child("ship");
            if ship.is_recording() {
                ship.annotate("source", &source.to_string());
            }
            ship.add_bytes(result_bytes);
            match network.transfer(source, accessor, result_bytes, now) {
                Ok(_) => {
                    if source != info.owner {
                        self.failovers += 1;
                        self.tel.counter("replication.failovers_total").inc();
                        if access_span.is_recording() {
                            access_span.annotate("failover", &source.to_string());
                        }
                    }
                    served_by = Some(source);
                    break;
                }
                Err(e) => {
                    if ship.is_recording() {
                        ship.annotate("error", &e.to_string());
                    }
                    last_error = Some(e);
                }
            }
        }
        let Some(served_by) = served_by else {
            return Err(AccessError::NoAvailableSource {
                partition,
                last_error,
            });
        };
        let state = self.tracker.record_access(partition, result_bytes, now);
        if self
            .policy
            .should_replicate(partition, state, info.size_bytes, self.tracker.history())
        {
            // Placement is best-effort: the read already succeeded, so a
            // down target or a transient transfer fault skips the replica
            // instead of failing the access.
            if !network.node_up(accessor, now) {
                self.skip_placement(&mut access_span, "target node down");
                return Ok(None);
            }
            let mut replicate = access_span.child("replicate");
            if replicate.is_recording() {
                replicate.annotate("from", &served_by.to_string());
                replicate.annotate("to", &accessor.to_string());
            }
            replicate.add_bytes(info.size_bytes);
            match network.transfer(served_by, accessor, info.size_bytes, now) {
                Ok(_) => {}
                Err(e) if e.is_transient() => {
                    if replicate.is_recording() {
                        replicate.annotate("error", &e.to_string());
                    }
                    drop(replicate);
                    self.skip_placement(&mut access_span, &e.to_string());
                    return Ok(None);
                }
                Err(e) => return Err(AccessError::Transfer(e)),
            }
            self.tracker.mark_replicated(partition);
            self.replication_bytes += info.size_bytes;
            self.tel
                .counter("replication.replication_bytes_total")
                .add(info.size_bytes);
            self.replica_index.insert((partition, accessor), true);
            self.partitions[partition].replicas.push(accessor);
            self.tel.gauge("replication.replicas").set(
                self.partitions
                    .iter()
                    .map(|p| p.replicas.len())
                    .sum::<usize>() as i64,
            );
            let order = ReplicationOrder {
                partition,
                from: served_by,
                to: accessor,
                bytes: info.size_bytes,
            };
            self.orders.push(order);
            return Ok(Some(order));
        }
        Ok(None)
    }

    fn skip_placement(&mut self, access_span: &mut megastream_telemetry::TraceSpan, why: &str) {
        self.placements_skipped += 1;
        self.tel
            .counter("replication.placement_skipped_total")
            .inc();
        if access_span.is_recording() {
            access_span.annotate("placement_skipped", why);
        }
    }

    /// Replication orders issued so far.
    pub fn orders(&self) -> &[ReplicationOrder] {
        &self.orders
    }

    /// Accesses answered from a local replica.
    pub fn local_hits(&self) -> u64 {
        self.local_hits
    }

    /// Accesses that shipped results remotely.
    pub fn remote_hits(&self) -> u64 {
        self.remote_hits
    }

    /// Bytes shipped for remote query results.
    pub fn shipped_bytes(&self) -> u64 {
        self.shipped_bytes
    }

    /// Bytes spent on replication transfers.
    pub fn replication_bytes(&self) -> u64 {
        self.replication_bytes
    }

    /// Reads served by a surviving replica because the owner was
    /// unavailable.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Replica placements skipped because the target or the transfer was
    /// unavailable at placement time.
    pub fn placements_skipped(&self) -> u64 {
        self.placements_skipped
    }

    /// The policy in force.
    pub fn policy(&self) -> &ReplicationPolicy {
        &self.policy
    }

    /// Deterministic logical memory of the controller's bookkeeping,
    /// following the accounting-plane convention (a pure function of
    /// element counts, never allocator capacities): the access tracker,
    /// the partition table with its replica lists, the order log, and
    /// the replica index. The unbounded parts — retirement history,
    /// order log, replica index — are exactly what an operator watching
    /// a long-lived manager needs to see grow.
    pub fn deep_bytes(&self) -> usize {
        let replicas: usize = self
            .partitions
            .iter()
            .map(|p| p.replicas.len() * std::mem::size_of::<NodeId>())
            .sum();
        self.tracker.deep_bytes()
            + self.partitions.len() * std::mem::size_of::<PartitionInfo>()
            + replicas
            + self.orders.len() * std::mem::size_of::<ReplicationOrder>()
            + self.replica_index.len()
                * (std::mem::size_of::<(usize, NodeId)>() + std::mem::size_of::<bool>())
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_netsim::topology::{LinkSpec, NodeKind};

    fn setup() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let owner = net.add_node("owner", NodeKind::DataStore);
        let remote = net.add_node("remote", NodeKind::DataStore);
        net.connect(owner, remote, LinkSpec::wan_100m());
        (net, owner, remote)
    }

    #[test]
    fn deep_bytes_tracks_bookkeeping_growth() {
        let (mut net, owner, remote) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::Always);
        let empty = ctl.deep_bytes();
        let p = ctl.register_partition(owner, 1_000);
        let registered = ctl.deep_bytes();
        assert!(registered > empty, "partition table must be accounted");
        ctl.on_access(p, remote, 300, &mut net, Timestamp::ZERO)
            .unwrap();
        // The replica list, the order log, and the replica index all grew.
        assert!(ctl.deep_bytes() > registered);
        // Pure function of counts: a clone agrees exactly.
        assert_eq!(ctl.clone().deep_bytes(), ctl.deep_bytes());
    }

    #[test]
    fn break_even_loop_replicates_after_threshold() {
        let (mut net, owner, remote) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::BreakEven { factor: 1.0 });
        let p = ctl.register_partition(owner, 1_000);
        let mut order_at = None;
        for i in 0..10u64 {
            let order = ctl
                .on_access(p, remote, 300, &mut net, Timestamp::from_secs(i))
                .unwrap();
            if order.is_some() && order_at.is_none() {
                order_at = Some(i);
            }
        }
        // 300+300+300 = 900 < 1000; fourth access crosses 1200 ≥ 1000.
        assert_eq!(order_at, Some(3));
        assert_eq!(ctl.remote_hits(), 4);
        assert_eq!(ctl.local_hits(), 6);
        assert_eq!(ctl.shipped_bytes(), 1_200);
        assert_eq!(ctl.replication_bytes(), 1_000);
        assert_eq!(ctl.orders().len(), 1);
        // Network accounted both query results and the replica transfer.
        assert_eq!(net.total_bytes(), 1_200 + 1_000);
    }

    #[test]
    fn owner_access_is_always_local() {
        let (mut net, owner, _) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::Always);
        let p = ctl.register_partition(owner, 1_000);
        let order = ctl
            .on_access(p, owner, 500, &mut net, Timestamp::ZERO)
            .unwrap();
        assert!(order.is_none());
        assert_eq!(ctl.local_hits(), 1);
        assert_eq!(net.total_bytes(), 0);
    }

    #[test]
    fn never_policy_keeps_shipping() {
        let (mut net, owner, remote) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::Never);
        let p = ctl.register_partition(owner, 10);
        for i in 0..5u64 {
            assert!(ctl
                .on_access(p, remote, 100, &mut net, Timestamp::from_secs(i))
                .unwrap()
                .is_none());
        }
        assert_eq!(ctl.shipped_bytes(), 500);
        assert_eq!(ctl.replication_bytes(), 0);
    }

    #[test]
    fn replication_failure_propagates() {
        let mut net = Network::new();
        let owner = net.add_node("owner", NodeKind::DataStore);
        let island = net.add_node("island", NodeKind::DataStore);
        let mut ctl = ReplicationController::new(ReplicationPolicy::Always);
        let p = ctl.register_partition(owner, 10);
        let err = ctl.on_access(p, island, 100, &mut net, Timestamp::ZERO);
        assert!(err.is_err());
    }

    #[test]
    fn unknown_partition_is_an_error_not_a_panic() {
        let (mut net, _, remote) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::Always);
        let err = ctl
            .on_access(7, remote, 100, &mut net, Timestamp::ZERO)
            .unwrap_err();
        assert_eq!(err, AccessError::UnknownPartition(7));
    }

    #[test]
    fn read_fails_over_to_surviving_replica() {
        use megastream_netsim::FaultPlan;
        let mut net = Network::new();
        let owner = net.add_node("owner", NodeKind::DataStore);
        let replica = net.add_node("replica", NodeKind::DataStore);
        let reader = net.add_node("reader", NodeKind::DataStore);
        net.connect(owner, replica, LinkSpec::wan_100m());
        net.connect(owner, reader, LinkSpec::wan_100m());
        net.connect(replica, reader, LinkSpec::wan_100m());

        let mut ctl = ReplicationController::new(ReplicationPolicy::Always);
        let p = ctl.register_partition(owner, 1_000);
        // First access from the replica node places a copy there.
        let order = ctl
            .on_access(p, replica, 100, &mut net, Timestamp::ZERO)
            .unwrap()
            .expect("Always policy replicates on first remote access");
        assert_eq!(order.to, replica);

        // Owner goes down; a read from `reader` must be served by the
        // replica instead of failing.
        let mut plan = FaultPlan::seeded(1);
        plan.node_down(owner, Timestamp::from_secs(5), Timestamp::from_secs(50));
        net.install_faults(plan);
        let result = ctl.on_access(p, reader, 100, &mut net, Timestamp::from_secs(10));
        // The read succeeded via failover (the partition is already
        // replicated, so no new order is issued).
        assert!(result.unwrap().is_none());
        assert_eq!(ctl.failovers(), 1);
        assert_eq!(ctl.remote_hits(), 2);
    }

    #[test]
    fn lossy_placement_is_skipped_but_read_succeeds() {
        use megastream_netsim::FaultPlan;
        let (mut net, owner, remote) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::Always);
        let p = ctl.register_partition(owner, 1_000);
        // Seed 9 draws (delivered, lost) for the first two transfers on
        // this link: the result ship succeeds, the replication transfer
        // is lost, and the controller must skip the placement instead of
        // failing the already-served read.
        let mut plan = FaultPlan::seeded(9);
        plan.link_loss(owner, remote, 0.5);
        net.install_faults(plan);
        let result = ctl.on_access(p, remote, 100, &mut net, Timestamp::ZERO);
        assert!(result.unwrap().is_none());
        assert_eq!(ctl.placements_skipped(), 1);
        assert_eq!(ctl.replication_bytes(), 0);
        assert!(ctl.orders().is_empty());
        // Once the loss clears, the next access can still replicate: the
        // skipped placement did not mark the tracker.
        net.clear_faults();
        let order = ctl
            .on_access(p, remote, 100, &mut net, Timestamp::from_secs(1))
            .unwrap();
        assert!(order.is_some());
        assert_eq!(ctl.replication_bytes(), 1_000);
    }

    #[test]
    fn total_loss_reports_no_available_source() {
        use megastream_netsim::FaultPlan;
        let (mut net, owner, remote) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::Always);
        let p = ctl.register_partition(owner, 1_000);
        let mut plan = FaultPlan::seeded(2);
        plan.link_loss(owner, remote, 1.0);
        net.install_faults(plan);
        let result = ctl.on_access(p, remote, 100, &mut net, Timestamp::ZERO);
        // Total loss kills the read itself: every source transfer fails.
        assert!(matches!(result, Err(AccessError::NoAvailableSource { .. })));
    }

    #[test]
    fn all_sources_down_reports_no_available_source() {
        use megastream_netsim::FaultPlan;
        let (mut net, owner, remote) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::Never);
        let p = ctl.register_partition(owner, 1_000);
        let mut plan = FaultPlan::seeded(3);
        plan.node_down(owner, Timestamp::ZERO, Timestamp::from_secs(100));
        net.install_faults(plan);
        let err = ctl
            .on_access(p, remote, 100, &mut net, Timestamp::from_secs(1))
            .unwrap_err();
        assert_eq!(
            err,
            AccessError::NoAvailableSource {
                partition: p,
                last_error: Some(TransferError::NodeDown(owner)),
            }
        );
    }
}
