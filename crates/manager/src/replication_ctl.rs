//! The adaptive-replication control loop (paper §VII, Fig. 6).
//!
//! The manager records partition accesses (①), predicts future accesses
//! (②), and when the prediction exceeds the threshold initiates
//! replication (③), which executes between the two data stores over the
//! simulated network (④).

use std::collections::HashMap;

use megastream_flow::time::Timestamp;
use megastream_netsim::topology::{Network, NodeId, TransferError};
use megastream_replication::policy::ReplicationPolicy;
use megastream_replication::tracker::AccessTracker;
use megastream_telemetry::{Telemetry, Tracer};

/// A partition registered with the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Node hosting the authoritative copy.
    pub owner: NodeId,
    /// Bytes a replication transfer moves.
    pub size_bytes: u64,
    /// Nodes holding replicas.
    pub replicas: Vec<NodeId>,
}

/// A replication the controller decided to start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationOrder {
    /// Which partition.
    pub partition: usize,
    /// From the owner…
    pub from: NodeId,
    /// …to the accessing store.
    pub to: NodeId,
    /// Transfer volume.
    pub bytes: u64,
}

/// The manager's replication controller.
#[derive(Debug, Clone)]
pub struct ReplicationController {
    policy: ReplicationPolicy,
    tracker: AccessTracker,
    partitions: Vec<PartitionInfo>,
    /// (accessor node, partition) pairs served locally.
    local_hits: u64,
    remote_hits: u64,
    shipped_bytes: u64,
    replication_bytes: u64,
    orders: Vec<ReplicationOrder>,
    /// Per-accessor tracking: a replica helps only the node that has it.
    replica_index: HashMap<(usize, NodeId), bool>,
    tel: Telemetry,
    tracer: Tracer,
}

impl ReplicationController {
    /// Creates a controller running `policy`.
    pub fn new(policy: ReplicationPolicy) -> Self {
        ReplicationController {
            policy,
            tracker: AccessTracker::new(0),
            partitions: Vec::new(),
            local_hits: 0,
            remote_hits: 0,
            shipped_bytes: 0,
            replication_bytes: 0,
            orders: Vec::new(),
            replica_index: HashMap::new(),
            tel: Telemetry::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// Connects the controller (and its access tracker) to a telemetry
    /// registry: hit/miss counters, shipped and replication volumes, and
    /// replica churn are recorded under `replication.*`.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        self.tracker.set_telemetry(tel);
    }

    /// Connects the controller to a causal tracer: every remote access
    /// records a `replication.access` span tree — a `ship` child for the
    /// result transfer and, when the policy fires, a `replicate` child
    /// stamping the placement decision (partition, source, destination,
    /// volume). Passing [`Tracer::disabled`] detaches again.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Registers a partition; returns its id.
    pub fn register_partition(&mut self, owner: NodeId, size_bytes: u64) -> usize {
        self.partitions.push(PartitionInfo {
            owner,
            size_bytes,
            replicas: Vec::new(),
        });
        self.tracker = {
            let mut t = AccessTracker::new(self.partitions.len());
            t.seed_history(self.tracker.history().iter().copied());
            t.set_telemetry(&self.tel);
            // Preserve nothing else: registration happens before replay.
            t
        };
        self.partitions.len() - 1
    }

    /// Seeds the volume history used by the distribution-aware policy.
    pub fn seed_history(&mut self, volumes: impl IntoIterator<Item = u64>) {
        self.tracker.seed_history(volumes);
    }

    /// Records that `accessor` queried `partition`, shipping
    /// `result_bytes` if remote. Executes the query transfer on `network`
    /// and, if the policy says so, the replication transfer (Fig. 6 ③④).
    ///
    /// Returns the replication order if one was issued.
    ///
    /// # Errors
    ///
    /// Propagates [`TransferError`] if the network cannot route the
    /// transfer.
    ///
    /// # Panics
    ///
    /// Panics if `partition` was never registered.
    pub fn on_access(
        &mut self,
        partition: usize,
        accessor: NodeId,
        result_bytes: u64,
        network: &mut Network,
        now: Timestamp,
    ) -> Result<Option<ReplicationOrder>, TransferError> {
        let info = self.partitions[partition].clone();
        let has_replica = *self
            .replica_index
            .get(&(partition, accessor))
            .unwrap_or(&false)
            || info.owner == accessor;
        if has_replica {
            self.local_hits += 1;
            self.tel.counter("replication.local_hits_total").inc();
            return Ok(None);
        }
        self.remote_hits += 1;
        self.shipped_bytes += result_bytes;
        self.tel.counter("replication.remote_hits_total").inc();
        self.tel
            .counter("replication.shipped_bytes_total")
            .add(result_bytes);
        let mut access_span = self.tracer.root("replication.access");
        if access_span.is_recording() {
            access_span.annotate("partition", &partition.to_string());
            access_span.annotate("accessor", &accessor.to_string());
        }
        {
            let mut ship = access_span.child("ship");
            ship.add_bytes(result_bytes);
            network.transfer(info.owner, accessor, result_bytes, now)?;
        }
        let state = self.tracker.record_access(partition, result_bytes, now);
        if self
            .policy
            .should_replicate(partition, state, info.size_bytes, self.tracker.history())
        {
            let mut replicate = access_span.child("replicate");
            if replicate.is_recording() {
                replicate.annotate("from", &info.owner.to_string());
                replicate.annotate("to", &accessor.to_string());
            }
            replicate.add_bytes(info.size_bytes);
            self.tracker.mark_replicated(partition);
            network.transfer(info.owner, accessor, info.size_bytes, now)?;
            self.replication_bytes += info.size_bytes;
            self.tel
                .counter("replication.replication_bytes_total")
                .add(info.size_bytes);
            self.replica_index.insert((partition, accessor), true);
            self.partitions[partition].replicas.push(accessor);
            let order = ReplicationOrder {
                partition,
                from: info.owner,
                to: accessor,
                bytes: info.size_bytes,
            };
            self.orders.push(order);
            return Ok(Some(order));
        }
        Ok(None)
    }

    /// Replication orders issued so far.
    pub fn orders(&self) -> &[ReplicationOrder] {
        &self.orders
    }

    /// Accesses answered from a local replica.
    pub fn local_hits(&self) -> u64 {
        self.local_hits
    }

    /// Accesses that shipped results remotely.
    pub fn remote_hits(&self) -> u64 {
        self.remote_hits
    }

    /// Bytes shipped for remote query results.
    pub fn shipped_bytes(&self) -> u64 {
        self.shipped_bytes
    }

    /// Bytes spent on replication transfers.
    pub fn replication_bytes(&self) -> u64 {
        self.replication_bytes
    }

    /// The policy in force.
    pub fn policy(&self) -> &ReplicationPolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_netsim::topology::{LinkSpec, NodeKind};

    fn setup() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let owner = net.add_node("owner", NodeKind::DataStore);
        let remote = net.add_node("remote", NodeKind::DataStore);
        net.connect(owner, remote, LinkSpec::wan_100m());
        (net, owner, remote)
    }

    #[test]
    fn break_even_loop_replicates_after_threshold() {
        let (mut net, owner, remote) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::BreakEven { factor: 1.0 });
        let p = ctl.register_partition(owner, 1_000);
        let mut order_at = None;
        for i in 0..10u64 {
            let order = ctl
                .on_access(p, remote, 300, &mut net, Timestamp::from_secs(i))
                .unwrap();
            if order.is_some() && order_at.is_none() {
                order_at = Some(i);
            }
        }
        // 300+300+300 = 900 < 1000; fourth access crosses 1200 ≥ 1000.
        assert_eq!(order_at, Some(3));
        assert_eq!(ctl.remote_hits(), 4);
        assert_eq!(ctl.local_hits(), 6);
        assert_eq!(ctl.shipped_bytes(), 1_200);
        assert_eq!(ctl.replication_bytes(), 1_000);
        assert_eq!(ctl.orders().len(), 1);
        // Network accounted both query results and the replica transfer.
        assert_eq!(net.total_bytes(), 1_200 + 1_000);
    }

    #[test]
    fn owner_access_is_always_local() {
        let (mut net, owner, _) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::Always);
        let p = ctl.register_partition(owner, 1_000);
        let order = ctl
            .on_access(p, owner, 500, &mut net, Timestamp::ZERO)
            .unwrap();
        assert!(order.is_none());
        assert_eq!(ctl.local_hits(), 1);
        assert_eq!(net.total_bytes(), 0);
    }

    #[test]
    fn never_policy_keeps_shipping() {
        let (mut net, owner, remote) = setup();
        let mut ctl = ReplicationController::new(ReplicationPolicy::Never);
        let p = ctl.register_partition(owner, 10);
        for i in 0..5u64 {
            assert!(ctl
                .on_access(p, remote, 100, &mut net, Timestamp::from_secs(i))
                .unwrap()
                .is_none());
        }
        assert_eq!(ctl.shipped_bytes(), 500);
        assert_eq!(ctl.replication_bytes(), 0);
    }

    #[test]
    fn replication_failure_propagates() {
        let mut net = Network::new();
        let owner = net.add_node("owner", NodeKind::DataStore);
        let island = net.add_node("island", NodeKind::DataStore);
        let mut ctl = ReplicationController::new(ReplicationPolicy::Always);
        let p = ctl.register_partition(owner, 10);
        let err = ctl.on_access(p, island, 100, &mut net, Timestamp::ZERO);
        assert!(err.is_err());
    }
}
