//! The **Manager**: the architecture's control plane (paper §III-B,
//! Fig. 3b).
//!
//! > "The Manager assigns and adapts resources according to the varying
//! > application needs. For each application, it records the application
//! > requirements in terms of the required data source and aggregation
//! > format (e.g., sample or histogram) and the required precision … The
//! > manager then uses this information to decide (a) what data should be
//! > kept from which sensors, (b) what computing primitive should be
//! > installed, (c) how the computing primitives should be configured and
//! > (d) what analytics is deployed … In summary, the manager controls all
//! > components of the architecture."
//!
//! * [`requirements`] — application requirement records,
//! * [`placement`] — deriving aggregator installs/configurations from
//!   requirements and applying them to data stores,
//! * [`resources`] — storage/bandwidth budget tracking and adaptation,
//! * [`replication_ctl`] — the adaptive-replication control loop of §VII
//!   (record accesses → predict → start replication),
//! * [`manager`] — the façade tying the pieces together.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod manager;
pub mod placement;
pub mod replication_ctl;
pub mod requirements;
pub mod resources;

pub use manager::Manager;
pub use placement::PlacementPlan;
pub use replication_ctl::{AccessError, ReplicationController, ReplicationOrder};
pub use requirements::{AggregationFormat, AppRequirement, RequirementRegistry};
pub use resources::ResourceTracker;
