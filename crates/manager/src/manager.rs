//! The manager façade: "the manager controls all components of the
//! architecture."

use megastream_datastore::DataStore;
use megastream_replication::policy::ReplicationPolicy;
use megastream_telemetry::{Telemetry, Tracer};

use crate::placement::PlacementPlan;
use crate::replication_ctl::ReplicationController;
use crate::requirements::{AppRequirement, RequirementRegistry};
use crate::resources::ResourceTracker;

/// The control plane of one deployment (Fig. 3b).
#[derive(Debug)]
pub struct Manager {
    requirements: RequirementRegistry,
    resources: ResourceTracker,
    replication: ReplicationController,
    tel: Telemetry,
    tracer: Tracer,
}

impl Manager {
    /// Creates a manager with the given replication policy.
    pub fn new(replication_policy: ReplicationPolicy) -> Self {
        Manager {
            requirements: RequirementRegistry::new(),
            resources: ResourceTracker::new(),
            replication: ReplicationController::new(replication_policy),
            tel: Telemetry::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// Connects the control plane to a telemetry registry: placement
    /// decisions are counted under `manager.placement.*`, control ticks
    /// under `manager.ticks_total`, and the replication controller records
    /// its `replication.*` families.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        self.replication.set_telemetry(tel);
    }

    /// Connects the control plane to a causal tracer: placement
    /// installation records a `manager.plan_and_install` span tree (one
    /// `install` child per store touched) and the replication controller
    /// stamps its access/replicate decisions. Passing [`Tracer::disabled`]
    /// detaches again.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
        self.replication.set_tracer(tracer);
    }

    /// Registers an application requirement ("app. reqs" in Fig. 3b).
    pub fn register_requirement(&mut self, req: AppRequirement) {
        self.requirements.register(req);
    }

    /// Removes every requirement of an application.
    pub fn unregister_app(&mut self, app: &str) -> usize {
        self.requirements.unregister_app(app)
    }

    /// The requirement registry.
    pub fn requirements(&self) -> &RequirementRegistry {
        &self.requirements
    }

    /// Derives the current placement plan (decisions (a)–(c)).
    pub fn plan(&self) -> PlacementPlan {
        PlacementPlan::derive(&self.requirements)
    }

    /// Plans and (re)installs aggregators on the given stores. The plan is
    /// authoritative over the stores passed in: a store no requirement
    /// targets has all aggregators removed. Returns the number of
    /// aggregators installed in total.
    pub fn plan_and_install(&self, stores: &mut [&mut DataStore]) -> usize {
        let plan = self.plan();
        self.tel.counter("manager.placement.plans_total").inc();
        let mut root = self.tracer.root("manager.plan_and_install");
        let mut cleared = 0u64;
        let installed: usize = stores
            .iter_mut()
            .map(|s| {
                let mut span = root.child("install");
                let n = if plan.installs.contains_key(s.name()) {
                    plan.apply_to(s)
                } else {
                    for id in s.aggregator_ids() {
                        s.remove_aggregator(id);
                    }
                    cleared += 1;
                    0
                };
                if span.is_recording() {
                    span.annotate("store", s.name());
                    span.add_records(n as u64);
                }
                n
            })
            .sum();
        if root.is_recording() {
            root.annotate("installed", &installed.to_string());
            root.annotate("cleared", &cleared.to_string());
        }
        self.tel
            .counter("manager.placement.installs_total")
            .add(installed as u64);
        self.tel
            .counter("manager.placement.stores_cleared_total")
            .add(cleared);
        installed
    }

    /// Resource tracking (mutable, for setting budgets).
    pub fn resources_mut(&mut self) -> &mut ResourceTracker {
        &mut self.resources
    }

    /// Resource tracking (read).
    pub fn resources(&self) -> &ResourceTracker {
        &self.resources
    }

    /// The replication controller (mutable, for registering partitions and
    /// recording accesses).
    pub fn replication_mut(&mut self) -> &mut ReplicationController {
        &mut self.replication
    }

    /// The replication controller (read).
    pub fn replication(&self) -> &ReplicationController {
        &self.replication
    }

    /// One control-plane tick: observes each store and lets its
    /// aggregators adapt within budget ("resource status" → "change
    /// parameter" in Fig. 3b).
    pub fn tick(&mut self, stores: &mut [&mut DataStore], ingest_rates: &[f64]) {
        self.tel.counter("manager.ticks_total").inc();
        for (store, rate) in stores.iter_mut().zip(ingest_rates.iter()) {
            self.resources.observe_store(store, *rate);
            self.resources.adapt(store);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::AggregationFormat;
    use megastream_datastore::StorageStrategy;
    use megastream_flow::record::FlowRecord;
    use megastream_flow::time::{TimeDelta, Timestamp};

    fn store(name: &str) -> DataStore {
        DataStore::new(
            name,
            StorageStrategy::RoundRobin {
                budget_bytes: 1 << 20,
            },
            TimeDelta::from_secs(60),
        )
    }

    #[test]
    fn end_to_end_plan_install_adapt() {
        let mut mgr = Manager::new(ReplicationPolicy::BreakEven { factor: 1.0 });
        mgr.register_requirement(AppRequirement {
            app: "traffic-matrix".into(),
            store: "region-0".into(),
            streams: vec![],
            format: AggregationFormat::Flowtree,
            precision: 1.0,
            timeliness: TimeDelta::from_secs(60),
        });
        mgr.register_requirement(AppRequirement {
            app: "billing".into(),
            store: "region-0".into(),
            streams: vec![],
            format: AggregationFormat::TopFlows,
            precision: 0.5,
            timeliness: TimeDelta::from_mins(5),
        });
        let mut s = store("region-0");
        let installed = mgr.plan_and_install(&mut [&mut s]);
        assert_eq!(installed, 2);
        assert_eq!(s.aggregator_count(), 2);

        // Feed data, then tick with a tight budget: the store must shrink.
        for i in 0..2_000u32 {
            s.ingest_flow(
                &"r0".into(),
                &FlowRecord::builder()
                    .proto(6)
                    .src(format!("10.{}.{}.9", i % 8, i % 250).parse().unwrap(), 1)
                    .dst("1.1.1.1".parse().unwrap(), 2)
                    .packets(1)
                    .build(),
                Timestamp::ZERO,
            );
        }
        let used = s.footprint_bytes();
        mgr.resources_mut()
            .set_storage_budget("region-0", used / 10);
        mgr.tick(&mut [&mut s], &[2_000.0]);
        assert!(s.footprint_bytes() < used);
    }

    #[test]
    fn unregister_shrinks_plan() {
        let mut mgr = Manager::new(ReplicationPolicy::Never);
        mgr.register_requirement(AppRequirement {
            app: "a".into(),
            store: "s".into(),
            streams: vec![],
            format: AggregationFormat::Sample,
            precision: 0.5,
            timeliness: TimeDelta::from_secs(1),
        });
        assert_eq!(mgr.plan().total_installs(), 1);
        assert_eq!(mgr.unregister_app("a"), 1);
        assert_eq!(mgr.plan().total_installs(), 0);
        assert!(mgr.requirements().is_empty());
    }
}
