//! Deriving aggregator installations from requirements (manager decisions
//! (b) "what computing primitive should be installed" and (c) "how the
//! computing primitives should be configured").

use std::collections::HashMap;

use megastream_datastore::{AggregatorSpec, DataStore};
use megastream_flow::key::FeatureSet;
use megastream_flow::score::ScoreKind;
use megastream_flow::time::TimeDelta;
use megastream_flowtree::FlowtreeConfig;

use crate::requirements::{AggregationFormat, RequirementRegistry};

/// Reference capacities that a precision of 1.0 maps to.
const FULL_FLOWTREE_NODES: usize = 1 << 16;
const FULL_TOPFLOWS_KEYS: usize = 1 << 14;
const FINEST_BIN_WIDTH_MICROS: u64 = 1_000_000; // 1 s bins at precision 1.0

/// The aggregators one store should run: one spec per required format, at
/// the *highest* precision any application asked for (a coarser consumer
/// can always be served from a finer summary).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// Store name → aggregator specs to install.
    pub installs: HashMap<String, Vec<AggregatorSpec>>,
}

impl PlacementPlan {
    /// Derives the plan from the registry.
    pub fn derive(registry: &RequirementRegistry) -> Self {
        let mut installs: HashMap<String, Vec<AggregatorSpec>> = HashMap::new();
        for store in registry.stores() {
            // Highest precision per format wins.
            let mut best: HashMap<AggregationFormat, f64> = HashMap::new();
            for r in registry.for_store(store) {
                let e = best.entry(r.format).or_insert(0.0);
                *e = e.max(r.precision.clamp(f64::MIN_POSITIVE, 1.0));
            }
            let mut specs: Vec<(AggregationFormat, AggregatorSpec)> = best
                .into_iter()
                .map(|(format, precision)| (format, spec_for(format, precision)))
                .collect();
            // Deterministic order for reproducible installs.
            specs.sort_by_key(|(format, _)| format_rank(*format));
            installs.insert(
                store.to_owned(),
                specs.into_iter().map(|(_, s)| s).collect(),
            );
        }
        PlacementPlan { installs }
    }

    /// Applies the plan to a store: removes all current aggregators and
    /// installs the planned ones. Returns how many aggregators were
    /// installed.
    pub fn apply_to(&self, store: &mut DataStore) -> usize {
        let Some(specs) = self.installs.get(store.name()) else {
            return 0;
        };
        for id in store.aggregator_ids() {
            store.remove_aggregator(id);
        }
        for spec in specs {
            store.install_aggregator(spec.clone());
        }
        specs.len()
    }

    /// Total aggregators across all stores.
    pub fn total_installs(&self) -> usize {
        self.installs.values().map(Vec::len).sum()
    }
}

fn format_rank(format: AggregationFormat) -> u8 {
    match format {
        AggregationFormat::Flowtree => 0,
        AggregationFormat::TopFlows => 1,
        AggregationFormat::Exact => 2,
        AggregationFormat::Sample => 3,
        AggregationFormat::Histogram => 4,
    }
}

/// Maps a format/precision requirement onto a concrete aggregator spec.
fn spec_for(format: AggregationFormat, precision: f64) -> AggregatorSpec {
    match format {
        AggregationFormat::Sample => AggregatorSpec::SampledSeries {
            seed: 0xC0FFEE,
            rate: precision,
        },
        AggregationFormat::Histogram => {
            // precision 1.0 → 1 s bins; 0.5 → 2 s; 0.25 → 4 s, …
            let width = (FINEST_BIN_WIDTH_MICROS as f64 / precision).round() as u64;
            AggregatorSpec::TimeBins {
                width: TimeDelta::from_micros(width.max(1)),
                seed: 0xC0FFEE,
            }
        }
        AggregationFormat::Flowtree => {
            let capacity = ((FULL_FLOWTREE_NODES as f64) * precision).round().max(16.0) as usize;
            AggregatorSpec::Flowtree(FlowtreeConfig::default().with_capacity(capacity))
        }
        AggregationFormat::TopFlows => {
            let capacity = ((FULL_TOPFLOWS_KEYS as f64) * precision).round().max(8.0) as usize;
            AggregatorSpec::TopFlows {
                capacity,
                features: FeatureSet::FIVE_TUPLE,
                score_kind: ScoreKind::Packets,
            }
        }
        AggregationFormat::Exact => AggregatorSpec::ExactFlows {
            features: FeatureSet::FIVE_TUPLE,
            score_kind: ScoreKind::Packets,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::AppRequirement;
    use megastream_datastore::StorageStrategy;

    fn req(app: &str, store: &str, format: AggregationFormat, precision: f64) -> AppRequirement {
        AppRequirement {
            app: app.into(),
            store: store.into(),
            streams: vec![],
            format,
            precision,
            timeliness: TimeDelta::from_secs(60),
        }
    }

    #[test]
    fn one_spec_per_format_highest_precision() {
        let mut reg = RequirementRegistry::new();
        reg.register(req("a", "s", AggregationFormat::Flowtree, 0.1));
        reg.register(req("b", "s", AggregationFormat::Flowtree, 0.5));
        reg.register(req("c", "s", AggregationFormat::Sample, 0.2));
        let plan = PlacementPlan::derive(&reg);
        let specs = &plan.installs["s"];
        assert_eq!(specs.len(), 2);
        match &specs[0] {
            AggregatorSpec::Flowtree(cfg) => {
                assert_eq!(cfg.capacity, (FULL_FLOWTREE_NODES as f64 * 0.5) as usize);
            }
            other => panic!("expected flowtree first, got {other:?}"),
        }
        match &specs[1] {
            AggregatorSpec::SampledSeries { rate, .. } => assert_eq!(*rate, 0.2),
            other => panic!("expected series, got {other:?}"),
        }
    }

    #[test]
    fn histogram_precision_sets_bin_width() {
        let mut reg = RequirementRegistry::new();
        reg.register(req("a", "s", AggregationFormat::Histogram, 0.25));
        let plan = PlacementPlan::derive(&reg);
        match &plan.installs["s"][0] {
            AggregatorSpec::TimeBins { width, .. } => {
                assert_eq!(*width, TimeDelta::from_secs(4));
            }
            other => panic!("expected time bins, got {other:?}"),
        }
    }

    #[test]
    fn apply_to_replaces_existing_aggregators() {
        let mut store = DataStore::new(
            "s",
            StorageStrategy::RoundRobin {
                budget_bytes: 1 << 20,
            },
            TimeDelta::from_secs(60),
        );
        store.install_aggregator(AggregatorSpec::ExactFlows {
            features: FeatureSet::FIVE_TUPLE,
            score_kind: ScoreKind::Packets,
        });
        let mut reg = RequirementRegistry::new();
        reg.register(req("a", "s", AggregationFormat::Flowtree, 1.0));
        let plan = PlacementPlan::derive(&reg);
        assert_eq!(plan.apply_to(&mut store), 1);
        assert_eq!(store.aggregator_count(), 1);
        assert_eq!(plan.total_installs(), 1);
    }

    #[test]
    fn apply_to_unplanned_store_is_noop() {
        let mut store = DataStore::new(
            "unplanned",
            StorageStrategy::RoundRobin {
                budget_bytes: 1 << 20,
            },
            TimeDelta::from_secs(60),
        );
        let plan = PlacementPlan::derive(&RequirementRegistry::new());
        assert_eq!(plan.apply_to(&mut store), 0);
    }
}
