//! Application requirements: what each application needs from the data
//! plane ("the required data source and aggregation format (e.g., sample
//! or histogram) and the required precision (e.g., sample rate or bin
//! size)").

use megastream_flow::time::TimeDelta;

/// The aggregation format an application consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationFormat {
    /// A sampled time series (the paper's "sample").
    Sample,
    /// Time-bin statistics (the paper's "histogram").
    Histogram,
    /// A Flowtree summary.
    Flowtree,
    /// Space-Saving top flows.
    TopFlows,
    /// An exact flow table.
    Exact,
}

/// One application's requirement record.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRequirement {
    /// The requiring application.
    pub app: String,
    /// The data store the data must be available at.
    pub store: String,
    /// Stream(s) of interest; empty = every stream at the store.
    pub streams: Vec<String>,
    /// Aggregation format.
    pub format: AggregationFormat,
    /// Required precision in `(0, 1]` (sample rate / inverse bin-size
    /// scale / relative node budget).
    pub precision: f64,
    /// How quickly results must be available (drives epoch lengths).
    pub timeliness: TimeDelta,
}

/// The manager's registry of requirements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequirementRegistry {
    requirements: Vec<AppRequirement>,
}

impl RequirementRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        RequirementRegistry::default()
    }

    /// Registers a requirement, replacing any previous record of the same
    /// `(app, store, format)` triple.
    pub fn register(&mut self, req: AppRequirement) {
        self.requirements
            .retain(|r| !(r.app == req.app && r.store == req.store && r.format == req.format));
        self.requirements.push(req);
    }

    /// Drops all requirements of `app` (the application disconnected).
    pub fn unregister_app(&mut self, app: &str) -> usize {
        let before = self.requirements.len();
        self.requirements.retain(|r| r.app != app);
        before - self.requirements.len()
    }

    /// All requirements targeting `store`.
    pub fn for_store<'a>(&'a self, store: &'a str) -> impl Iterator<Item = &'a AppRequirement> {
        self.requirements.iter().filter(move |r| r.store == store)
    }

    /// All registered requirements.
    pub fn iter(&self) -> impl Iterator<Item = &AppRequirement> {
        self.requirements.iter()
    }

    /// Number of registered requirements.
    pub fn len(&self) -> usize {
        self.requirements.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.requirements.is_empty()
    }

    /// Distinct stores named by any requirement, sorted.
    pub fn stores(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.requirements.iter().map(|r| r.store.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The tightest timeliness requirement at `store`, if any (drives the
    /// store's epoch length: results must be at most one epoch old).
    pub fn tightest_timeliness(&self, store: &str) -> Option<TimeDelta> {
        self.for_store(store).map(|r| r.timeliness).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(app: &str, store: &str, format: AggregationFormat, precision: f64) -> AppRequirement {
        AppRequirement {
            app: app.into(),
            store: store.into(),
            streams: vec![],
            format,
            precision,
            timeliness: TimeDelta::from_secs(60),
        }
    }

    #[test]
    fn register_replaces_same_triple() {
        let mut reg = RequirementRegistry::new();
        reg.register(req("a", "s", AggregationFormat::Sample, 0.1));
        reg.register(req("a", "s", AggregationFormat::Sample, 0.5));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.iter().next().unwrap().precision, 0.5);
        reg.register(req("a", "s", AggregationFormat::Flowtree, 0.5));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn unregister_app() {
        let mut reg = RequirementRegistry::new();
        reg.register(req("a", "s1", AggregationFormat::Sample, 0.1));
        reg.register(req("a", "s2", AggregationFormat::Exact, 1.0));
        reg.register(req("b", "s1", AggregationFormat::Sample, 0.2));
        assert_eq!(reg.unregister_app("a"), 2);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.iter().next().unwrap().app, "b");
    }

    #[test]
    fn store_queries() {
        let mut reg = RequirementRegistry::new();
        reg.register(req("a", "s1", AggregationFormat::Sample, 0.1));
        reg.register(req("b", "s1", AggregationFormat::Histogram, 0.2));
        reg.register(req("c", "s2", AggregationFormat::Flowtree, 1.0));
        assert_eq!(reg.for_store("s1").count(), 2);
        assert_eq!(reg.stores(), vec!["s1", "s2"]);
    }

    #[test]
    fn tightest_timeliness() {
        let mut reg = RequirementRegistry::new();
        let mut fast = req("a", "s", AggregationFormat::Sample, 0.1);
        fast.timeliness = TimeDelta::from_secs(1);
        let slow = req("b", "s", AggregationFormat::Histogram, 0.2);
        reg.register(fast);
        reg.register(slow);
        assert_eq!(reg.tightest_timeliness("s"), Some(TimeDelta::from_secs(1)));
        assert_eq!(reg.tightest_timeliness("other"), None);
    }
}
