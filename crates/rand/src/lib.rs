//! A vendored, zero-dependency stand-in for the subset of the `rand` crate
//! API that megastream uses.
//!
//! The build environment is fully offline: no crates.io registry is
//! reachable and no sources are vendored, so the real `rand` cannot be
//! fetched. This crate re-implements the exact surface the workspace
//! consumes — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] helpers `gen`, `gen_range`, and `gen_bool` — on top of
//! xoshiro256++ seeded through SplitMix64.
//!
//! Determinism matters more than distribution pedigree here: every
//! workload generator seeds its RNG explicitly, so identical seeds give
//! identical traces, which is all the experiment suite relies on. The
//! stream differs from the real `StdRng` (ChaCha12), which only shifts
//! *which* synthetic trace a seed denotes, not any tested property.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value helpers, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        self.gen::<f64>() < p
    }
}

/// Types producible from raw generator output ("Standard" distribution).
pub trait Standard {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a uniform sample can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = rng.gen();
        self.start + u * (self.end - self.start)
    }
}

/// `x mod span` without bias mattering for the test-scale spans used here.
fn widening_mod(x: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    (x as u128) % span
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Drop-in replacement for `rand::rngs::StdRng`: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the reference xoshiro seeding does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u16..=7);
            assert!((5..=7).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "unit draws should span the interval");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits} hits of 0.3");
    }
}
