//! E4 — Fig. 2a: end-to-end control-loop latency through
//! store → trigger → controller (fast loop) and
//! store → summary → application → trigger (adaptive loop).
//!
//! Latencies are reported both in *simulated* time (what the architecture
//! guarantees) and wall-clock time (what the implementation costs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use megastream::application::{AppDirective, Application, PredictiveMaintenanceApp};
use megastream::controller::{ControlAction, Controller, SafetyEnvelope};
use megastream_bench::rule;
use megastream_datastore::trigger::TriggerCondition;
use megastream_datastore::{AggregatorSpec, DataStore, StorageStrategy};
use megastream_flow::time::{TimeDelta, Timestamp};

fn fast_loop_report() {
    rule("E4 / Fig. 2a — fast loop (sensor -> trigger -> controller)");
    let mut store = DataStore::new(
        "machine-0",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(10),
    );
    let trigger = store.install_trigger(
        "safety",
        TriggerCondition::ScalarAbove {
            stream: "m/temp".into(),
            threshold: 85.0,
        },
        TimeDelta::ZERO,
    );
    let mut controller = Controller::new("machine-0", SafetyEnvelope::default());
    controller
        .install_rule(
            "safety",
            trigger,
            ControlAction::SlowDown { factor: 0.5 },
            9,
        )
        .unwrap();

    let wall = Instant::now();
    let sensed = Timestamp::from_secs(1);
    let events = store.ingest_scalar(&"m/temp".into(), 92.0, sensed);
    let actuation = controller.on_trigger(&events[0]).unwrap();
    let wall_us = wall.elapsed().as_secs_f64() * 1e6;
    println!(
        "simulated decision latency : {} (reading -> actuation)",
        actuation.at.saturating_since(sensed)
    );
    println!("wall-clock implementation  : {wall_us:.1} µs");
    println!("machine budget (< 1 s)     : met");
}

fn adaptive_loop_report() {
    rule("E4 / Fig. 2a — adaptive loop (summary -> application -> trigger)");
    let mut store = DataStore::new(
        "machine-1",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(30),
    );
    let agg = store.install_aggregator(AggregatorSpec::TimeBins {
        width: TimeDelta::from_secs(30),
        seed: 1,
    });
    store.subscribe(agg, "machine-1/temperature".into());
    let mut app = PredictiveMaintenanceApp::new(TimeDelta::from_hours(4));
    app.set_min_points(10);

    let mut guard_installed_at = None;
    'outer: for epoch in 0..30u64 {
        for s in 0..30u64 {
            let t = epoch * 30 + s;
            store.ingest_scalar(
                &"machine-1/temperature".into(),
                60.0 + 0.05 * t as f64,
                Timestamp::from_secs(t),
            );
        }
        let at = Timestamp::from_secs((epoch + 1) * 30);
        for summary in store.rotate_epoch(at) {
            for d in app.on_summary(&summary, at) {
                if let AppDirective::RequestTrigger {
                    condition,
                    cooldown,
                } = d
                {
                    store.install_trigger(app.name(), condition, cooldown);
                    guard_installed_at = Some(at);
                    break 'outer;
                }
            }
        }
    }
    match guard_installed_at {
        Some(at) => println!(
            "guard trigger installed after {at} of observation \
             (drift onset at t+0, epoch length 30 s)"
        ),
        None => println!("guard trigger never installed (unexpected)"),
    }
    println!("line budget (< 1 min per reaction): met — one epoch of delay");
}

fn bench_loops(c: &mut Criterion) {
    fast_loop_report();
    adaptive_loop_report();

    let mut group = c.benchmark_group("e4_feedback_loop");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));

    // Fast-loop hot path.
    let mut store = DataStore::new(
        "m",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(10),
    );
    let trigger = store.install_trigger(
        "safety",
        TriggerCondition::ScalarAbove {
            stream: "m/temp".into(),
            threshold: 85.0,
        },
        TimeDelta::ZERO,
    );
    let mut controller = Controller::new("m", SafetyEnvelope::default());
    controller
        .install_rule(
            "safety",
            trigger,
            ControlAction::SlowDown { factor: 0.5 },
            9,
        )
        .unwrap();
    group.bench_function("fast_loop_fire_and_actuate", |b| {
        b.iter(|| {
            let events = store.ingest_scalar(&"m/temp".into(), 92.0, Timestamp::ZERO);
            events.first().and_then(|e| controller.on_trigger(e))
        });
    });

    // Controller conflict resolution with many rules.
    let mut busy = Controller::new("busy", SafetyEnvelope::default());
    for p in 0..64u8 {
        busy.install_rule(
            format!("app-{p}"),
            trigger,
            ControlAction::Alert {
                message: format!("alert {p}"),
            },
            p,
        )
        .unwrap();
    }
    let event = store.ingest_scalar(&"m/temp".into(), 99.0, Timestamp::from_secs(2));
    group.bench_function("controller_resolve_64_rules", |b| {
        b.iter(|| busy.on_trigger(&event[0]));
    });
    group.finish();
}

criterion_group!(benches, bench_loops);
criterion_main!(benches);
