//! E2 — Table II: cost of every Flowtree operator vs tree size and skew.
//!
//! Prints the operator-cost table implied by Table II, then runs Criterion
//! measurements of each operator at three tree sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

use megastream_bench::{flow_trace, rule, SKEWS};
use megastream_flow::key::FlowKey;
use megastream_flow::score::Popularity;
use megastream_flowtree::{Flowtree, FlowtreeConfig};

fn build_tree(records: usize, skew: f64, capacity: usize) -> Flowtree {
    let trace = flow_trace(42, 1_000.0, (records as u64 / 1_000).max(1), skew);
    let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(capacity));
    for rec in trace.iter().take(records) {
        tree.observe(rec);
    }
    tree
}

fn report() {
    rule("E2 / Table II — Flowtree operator costs");
    println!(
        "{:<10} {:>8} {:>8} | {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "records",
        "skew",
        "nodes",
        "merge µs",
        "compr µs",
        "diff µs",
        "query µs",
        "drill µs",
        "topk µs",
        "above µs",
        "hhh µs"
    );
    for &records in &[1_000usize, 10_000, 100_000] {
        for &skew in &SKEWS {
            let tree = build_tree(records, skew, 1 << 14);
            let other = {
                let mut t = build_tree(records, skew, 1 << 14);
                t.clear();
                for rec in flow_trace(77, 1_000.0, (records as u64 / 1_000).max(1), skew)
                    .iter()
                    .take(records)
                {
                    t.observe(rec);
                }
                t
            };
            let key = FlowKey::root().with_src_prefix("10.0.0.0/8".parse().unwrap());
            let x = Popularity::new(tree.total().value() / 100);

            let time = |f: &mut dyn FnMut()| -> f64 {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64() * 1e6
            };
            let merge_us = time(&mut || {
                let mut t = tree.clone();
                t.merge(&other);
            });
            let compress_us = time(&mut || {
                let mut t = tree.clone();
                t.compress_to(t.len() / 4);
            });
            let diff_us = time(&mut || {
                let mut t = tree.clone();
                t.diff(&other);
            });
            let query_us = time(&mut || {
                std::hint::black_box(tree.query(&key));
            });
            let drill_us = time(&mut || {
                std::hint::black_box(tree.drilldown(&key));
            });
            let topk_us = time(&mut || {
                std::hint::black_box(tree.top_k(10));
            });
            let above_us = time(&mut || {
                std::hint::black_box(tree.above_x(x));
            });
            let hhh_us = time(&mut || {
                std::hint::black_box(tree.hhh(x));
            });
            println!(
                "{:<10} {:>8.1} {:>8} | {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                records, skew, tree.len(),
                merge_us, compress_us, diff_us, query_us, drill_us, topk_us, above_us, hhh_us
            );
        }
    }
}

fn bench_ops(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("e2_flowtree_ops");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &records in &[1_000usize, 10_000, 100_000] {
        let tree = build_tree(records, 1.1, 1 << 14);
        let other = build_tree(records, 1.1, 1 << 14);
        let key = FlowKey::root().with_src_prefix("10.0.0.0/8".parse().unwrap());
        let x = Popularity::new(tree.total().value() / 100);

        group.bench_with_input(BenchmarkId::new("observe", records), &records, |b, &n| {
            let trace = flow_trace(3, 1_000.0, (n as u64 / 1_000).max(1), 1.1);
            b.iter(|| {
                let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(1 << 14));
                for rec in trace.iter().take(n) {
                    t.observe(rec);
                }
                t
            });
        });
        group.bench_with_input(BenchmarkId::new("merge", records), &tree, |b, tree| {
            b.iter(|| {
                let mut t = tree.clone();
                t.merge(&other);
                t
            });
        });
        group.bench_with_input(BenchmarkId::new("compress", records), &tree, |b, tree| {
            b.iter(|| {
                let mut t = tree.clone();
                t.compress_to(t.len() / 4);
                t
            });
        });
        group.bench_with_input(BenchmarkId::new("query", records), &tree, |b, tree| {
            b.iter(|| tree.query(&key));
        });
        group.bench_with_input(BenchmarkId::new("topk", records), &tree, |b, tree| {
            b.iter(|| tree.top_k(10));
        });
        group.bench_with_input(BenchmarkId::new("hhh", records), &tree, |b, tree| {
            b.iter(|| tree.hhh(x));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
