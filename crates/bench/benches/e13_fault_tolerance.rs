//! E13 — fault tolerance: query completeness and recovery cost as a
//! function of outage length, plus the overhead fault bookkeeping adds to
//! the fault-free ingest path.
//!
//! A 3-region Flowstream deployment loses region 1's uplink for a
//! configurable window. The report prints, per outage length, the
//! mid-outage completeness, the retry/spill/flush/drop counters, and
//! whether the region's authoritative totals converged back to the
//! no-fault run after recovery.

use criterion::{criterion_group, criterion_main, Criterion};

use megastream::flowstream::{DegradationPolicy, Flowstream, FlowstreamConfig};
use megastream_bench::{flow_trace, rule};
use megastream_flow::record::FlowRecord;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_netsim::FaultPlan;

const REGIONS: usize = 3;
const ROUTERS: usize = 2;
const RUN_SECS: u64 = 300;
const QUERY: &str = "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8";

fn deployment() -> Flowstream {
    Flowstream::new(
        REGIONS,
        ROUTERS,
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(30),
            ..Default::default()
        },
    )
}

/// Replays `trace`, probing a Partial query once at `probe`; returns
/// (completeness fraction at probe, region-1 total after finish, stats).
fn run(
    trace: &[FlowRecord],
    outage_secs: u64,
    probe: Timestamp,
) -> (f64, u64, megastream::flowstream::FlowstreamStats) {
    let mut fs = deployment();
    if outage_secs > 0 {
        let mut plan = FaultPlan::seeded(13);
        plan.link_down(
            fs.region_node(1),
            fs.noc_node(),
            Timestamp::from_secs(60),
            Timestamp::from_secs(60 + outage_secs),
        );
        fs.network_mut().install_faults(plan);
    }
    let mut fraction = 1.0;
    let mut probed = false;
    for rec in trace {
        if !probed && rec.ts >= probe {
            probed = true;
            fraction = fs
                .query_with_policy(QUERY, DegradationPolicy::Partial)
                .map(|r| r.completeness.fraction())
                .unwrap_or(0.0);
        }
        fs.ingest_round_robin(rec);
    }
    fs.finish();
    let region_total = fs
        .query("SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8 AND location = region-1")
        .map(|r| r.rows.iter().map(|x| x.score).sum())
        .unwrap_or(0);
    (fraction, region_total, fs.stats())
}

fn fault_report() {
    rule("E13 — completeness and recovery vs outage length (region-1 uplink)");
    let trace = flow_trace(13, 60.0, RUN_SECS, 1.1);
    let probe = Timestamp::from_secs(120);
    let (_, baseline_total, _) = run(&trace, 0, probe);
    println!(
        "{:>10} {:>12} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "outage_s", "completeness", "retries", "spilled", "flushed", "dropped", "converged"
    );
    for outage_secs in [0u64, 30, 60, 120, 180] {
        let (fraction, total, stats) = run(&trace, outage_secs, probe);
        println!(
            "{:>10} {:>12.2} {:>8} {:>8} {:>8} {:>8} {:>10}",
            outage_secs,
            fraction,
            stats.export_retries,
            stats.spilled_summaries,
            stats.flushed_summaries,
            stats.dropped_summaries,
            // Outages ending before the run's last rotation drain fully.
            if total == baseline_total {
                "exact"
            } else {
                "partial"
            }
        );
    }
}

fn bench_fault_tolerance(c: &mut Criterion) {
    fault_report();
    let mut group = c.benchmark_group("e13_fault_tolerance");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Overhead of the fault layer on a fault-free minute of ingest: the
    // same trace with no plan installed vs an installed (but never
    // matching) plan that forces the per-transfer checks.
    let trace = flow_trace(5, 1_000.0, 60, 1.1);
    group.bench_function("minute_no_fault_plan", |b| {
        b.iter(|| {
            let mut fs = deployment();
            for rec in &trace {
                fs.ingest_round_robin(rec);
            }
            fs.finish();
            fs.network().total_bytes()
        });
    });
    group.bench_function("minute_idle_fault_plan", |b| {
        b.iter(|| {
            let mut fs = deployment();
            let mut plan = FaultPlan::seeded(13);
            // A window that never overlaps the run keeps every check live.
            plan.link_down(
                fs.region_node(1),
                fs.noc_node(),
                Timestamp::from_secs(86_400),
                Timestamp::from_secs(86_460),
            );
            fs.network_mut().install_faults(plan);
            for rec in &trace {
                fs.ingest_round_robin(rec);
            }
            fs.finish();
            fs.network().total_bytes()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fault_tolerance);
criterion_main!(benches);
