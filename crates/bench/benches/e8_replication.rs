//! E8 — Fig. 6 / §VII: adaptive replication. Transfer volume, latency and
//! competitive ratio of five policies across access-distribution families,
//! plus the adversarial sequence behind the 2-competitive bound.

use criterion::{criterion_group, criterion_main, Criterion};

use megastream_bench::rule;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_netsim::topology::LinkSpec;
use megastream_replication::policy::ReplicationPolicy;
use megastream_replication::simulator::{replay_with_history, training_volumes, Access};
use megastream_workloads::querytrace::{AccessDistribution, QueryTraceConfig};

const PARTITIONS: usize = 128;
const PARTITION_BYTES: u64 = 4_000_000;

fn make_trace(seed: u64, dist: AccessDistribution) -> Vec<Access> {
    QueryTraceConfig {
        seed,
        partitions: PARTITIONS,
        accesses: dist,
        mean_gap: TimeDelta::from_secs(30),
        median_result_bytes: 800_000,
    }
    .generate()
    .into_iter()
    .map(|a| Access {
        partition: a.partition,
        ts: a.ts,
        result_bytes: a.result_bytes,
    })
    .collect()
}

fn policies() -> Vec<ReplicationPolicy> {
    vec![
        ReplicationPolicy::Never,
        ReplicationPolicy::Always,
        ReplicationPolicy::BreakEven { factor: 1.0 },
        ReplicationPolicy::Randomized { seed: 3 },
        ReplicationPolicy::DistributionAware { min_samples: 32 },
    ]
}

/// Mean per-access latency on a WAN link: remote accesses pay propagation
/// plus transmission of the result; local accesses are free.
fn mean_latency_ms(report: &megastream_replication::simulator::ReplayReport) -> f64 {
    let wan = LinkSpec::wan_100m();
    let total = report.remote_accesses + report.local_accesses;
    if total == 0 {
        return 0.0;
    }
    let mean_result = report
        .shipped_bytes
        .checked_div(report.remote_accesses)
        .unwrap_or(0);
    let remote_ms = (wan.latency + wan.transmit_time(mean_result)).as_secs_f64() * 1e3;
    remote_ms * report.remote_accesses as f64 / total as f64
}

fn report() {
    rule("E8 / Fig. 6 — replication policies across access distributions");
    for (label, dist) in [
        ("geometric(p=0.8)", AccessDistribution::Geometric(0.8)),
        ("exponential(mean 6)", AccessDistribution::Exponential(6.0)),
        ("pareto(shape 1.1)", AccessDistribution::Pareto(1.1)),
        ("fixed(12)", AccessDistribution::Fixed(12)),
        ("uniform(0..=20)", AccessDistribution::Uniform(20)),
    ] {
        let train = make_trace(1, dist);
        let history = training_volumes(&train, PARTITIONS);
        let eval = make_trace(9, dist);
        println!(
            "\n-- {label} ({} accesses, partition = 4 MB) --",
            eval.len()
        );
        println!(
            "{:<20} {:>12} {:>12} {:>9} {:>8} {:>11}",
            "policy", "shipped B", "replica B", "replicas", "ratio", "latency ms"
        );
        let costs = vec![PARTITION_BYTES; PARTITIONS];
        for policy in policies() {
            let r = replay_with_history(&eval, &costs, &policy, &history);
            println!(
                "{:<20} {:>12} {:>12} {:>9} {:>8.3} {:>11.2}",
                r.policy,
                r.shipped_bytes,
                r.replication_bytes,
                r.replicated_partitions,
                r.competitive_ratio(),
                mean_latency_ms(&r)
            );
        }
    }

    rule("E8 — adversarial sequence (the 2-competitive worst case)");
    // The adversary stops querying the instant the policy replicates: the
    // break-even rule then paid shipped ≈ R plus the replication R, while
    // OPT paid only R. Cost ratio → 2.
    let adversarial: Vec<Access> = (0..5)
        .map(|i| Access {
            partition: 0,
            ts: Timestamp::from_secs(i),
            result_bytes: 1_000_000,
        })
        .collect();
    let r = replay_with_history(
        &adversarial,
        &[4_000_000],
        &ReplicationPolicy::BreakEven { factor: 1.0 },
        &[],
    );
    println!(
        "break-even on stop-after-replication adversary: total {} vs OPT {} → ratio {:.3} (bound 2)",
        r.total_bytes(),
        r.offline_optimal_bytes,
        r.competitive_ratio()
    );
    let mut ratios = Vec::new();
    for seed in 0..20u64 {
        let r = replay_with_history(
            &adversarial,
            &[4_000_000],
            &ReplicationPolicy::Randomized { seed },
            &[],
        );
        ratios.push(r.competitive_ratio());
    }
    let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "randomized on the same adversary (20 seeds): mean ratio {mean:.3} (theory e/(e-1) ≈ 1.582)"
    );
}

fn bench_replication(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("e8_replication");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    let eval = make_trace(9, AccessDistribution::Geometric(0.8));
    let costs = vec![PARTITION_BYTES; PARTITIONS];
    let history = training_volumes(
        &make_trace(1, AccessDistribution::Geometric(0.8)),
        PARTITIONS,
    );
    for policy in policies() {
        group.bench_function(format!("replay_{}", policy.name()), |b| {
            b.iter(|| replay_with_history(&eval, &costs, &policy, &history));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
