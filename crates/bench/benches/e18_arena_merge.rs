//! E18 — the arena payoff: merge/compress throughput and bytes-per-node of
//! the arena-backed `Flowtree` against the retired pointer-based
//! implementation (kept verbatim as `OracleTree` behind the `oracle`
//! feature, the same baseline the differential harness cross-checks).
//!
//! Prints, per tree size and skew: merge and compress latency for both
//! implementations with the speedup multiple, and the deep memory
//! footprint per live node with the reduction. Criterion then measures
//! merge and compress on both implementations at each size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

use megastream_bench::{flow_trace, rule, SKEWS};
use megastream_flowtree::oracle::OracleTree;
use megastream_flowtree::{Flowtree, FlowtreeConfig};

const CAPACITY: usize = 1 << 12;

/// Builds both implementations from the identical trace prefix.
fn build_pair(seed: u64, records: usize, skew: f64) -> (Flowtree, OracleTree) {
    let trace = flow_trace(seed, 1_000.0, (records as u64 / 1_000).max(1), skew);
    let config = FlowtreeConfig::default().with_capacity(CAPACITY);
    let mut arena = Flowtree::new(config.clone());
    let mut oracle = OracleTree::new(config);
    for rec in trace.iter().take(records) {
        arena.observe(rec);
        oracle.observe(rec);
    }
    (arena, oracle)
}

/// Best-of-`reps` wall time of `f`, in microseconds.
fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .fold(f64::INFINITY, f64::min)
}

fn report() {
    rule("E18 — arena-backed Flowtree vs pointer baseline");
    println!(
        "{:<9} {:>5} {:>6} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>6} | {:>7} {:>7} {:>6}",
        "records",
        "skew",
        "nodes",
        "mrg-ptr µs",
        "mrg-arn µs",
        "x",
        "cmp-ptr µs",
        "cmp-arn µs",
        "x",
        "B/n-ptr",
        "B/n-arn",
        "save"
    );
    for &records in &[10_000usize, 100_000] {
        for &skew in &SKEWS {
            let (arena, oracle) = build_pair(42, records, skew);
            let (arena_other, oracle_other) = build_pair(77, records, skew);
            const REPS: usize = 5;

            let merge_ptr = time_us(REPS, || {
                let mut t = oracle.clone();
                t.merge(&oracle_other);
                std::hint::black_box(t.len());
            });
            let merge_arena = time_us(REPS, || {
                let mut t = arena.clone();
                t.merge(&arena_other);
                std::hint::black_box(t.len());
            });
            let target = arena.len() / 4;
            let compress_ptr = time_us(REPS, || {
                let mut t = oracle.clone();
                t.compress_to(target);
                std::hint::black_box(t.len());
            });
            let compress_arena = time_us(REPS, || {
                let mut t = arena.clone();
                t.compress_to(target);
                std::hint::black_box(t.len());
            });
            let bpn_ptr = oracle.deep_bytes() as f64 / oracle.len().max(1) as f64;
            let bpn_arena = arena.deep_bytes() as f64 / arena.len().max(1) as f64;
            println!(
                "{:<9} {:>5.1} {:>6} | {:>10.1} {:>10.1} {:>5.2}x | {:>10.1} {:>10.1} {:>5.2}x | {:>7.1} {:>7.1} {:>5.1}%",
                records,
                skew,
                arena.len(),
                merge_ptr,
                merge_arena,
                merge_ptr / merge_arena.max(1e-9),
                compress_ptr,
                compress_arena,
                compress_ptr / compress_arena.max(1e-9),
                bpn_ptr,
                bpn_arena,
                100.0 * (1.0 - bpn_arena / bpn_ptr.max(1e-9)),
            );
        }
    }
}

fn bench_arena_merge(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("e18_arena_merge");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &records in &[10_000usize, 100_000] {
        let (arena, oracle) = build_pair(42, records, 1.1);
        let (arena_other, oracle_other) = build_pair(77, records, 1.1);
        let target = arena.len() / 4;

        group.bench_with_input(
            BenchmarkId::new("merge_pointer", records),
            &records,
            |b, _| {
                b.iter(|| {
                    let mut t = oracle.clone();
                    t.merge(&oracle_other);
                    t.len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("merge_arena", records),
            &records,
            |b, _| {
                b.iter(|| {
                    let mut t = arena.clone();
                    t.merge(&arena_other);
                    t.len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compress_pointer", records),
            &records,
            |b, _| {
                b.iter(|| {
                    let mut t = oracle.clone();
                    t.compress_to(target);
                    t.len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compress_arena", records),
            &records,
            |b, _| {
                b.iter(|| {
                    let mut t = arena.clone();
                    t.compress_to(target);
                    t.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_arena_merge);
criterion_main!(benches);
