//! E15 — ops-plane overhead: sampling the registry into ring buffers and
//! folding the windows through the health rules must be cheap enough to
//! leave on in production. The sampler reads the same atomics the data
//! plane writes (no locks on the read path after discovery) and runs once
//! per cadence, so the cost scales with series count × tick rate, not
//! with ingest volume.
//!
//! Shape expectations (recorded in EXPERIMENTS.md): the E11 ingest
//! workload with a full ops plane ticking at the default one-second
//! cadence lands within a couple percent of the telemetry-only run;
//! tightening the cadence raises the cost proportionally; a single
//! frame over a realistic registry is in the low-microsecond range.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream::ops::OpsPlane;
use megastream_bench::{flow_trace, rule};
use megastream_telemetry::{MetricSampler, SamplerConfig, Telemetry};
use std::sync::Arc;

const SEC: u64 = 1_000_000;

fn ops_overhead_report() {
    rule("E15 — ingest throughput: ops plane disabled vs ticking (60k flows)");
    let trace = flow_trace(2026, 500.0, 120, 1.1);
    println!(
        "{:>22} {:>12} {:>10} {:>10}",
        "mode", "elapsed ms", "frames", "series"
    );
    // Cadence 0 = no ops plane; otherwise tick the sampler + health rules
    // once per `cadence_micros` of simulated time. Minimum of five runs
    // per mode — single runs swing several percent on scheduler noise,
    // more than the effect under measurement.
    for cadence_micros in [0, 10 * SEC, SEC, SEC / 10, SEC / 100] {
        let mut best = f64::INFINITY;
        let mut frames = 0u64;
        let mut series = 0usize;
        for _ in 0..5 {
            let tel = Telemetry::new();
            let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default()).with_telemetry(&tel);
            let mut ops = if cadence_micros == 0 {
                None
            } else {
                OpsPlane::new(
                    &tel,
                    SamplerConfig {
                        cadence_micros,
                        ..Default::default()
                    },
                )
                .map(|mut plane| {
                    for r in megastream::ops::standard_rules() {
                        plane.add_rule(r);
                    }
                    plane
                })
            };
            let start = std::time::Instant::now();
            for r in &trace {
                fs.ingest_round_robin(r);
                if let Some(ops) = ops.as_mut() {
                    ops.tick(r.ts);
                }
            }
            fs.finish();
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            if let Some(o) = ops.as_ref() {
                frames = o.sampler().total_frames();
                series = o.sampler().series();
            }
        }
        let mode = match cadence_micros {
            0 => "telemetry only".to_string(),
            c if c >= SEC => format!("cadence {} s", c / SEC),
            c => format!("cadence {} ms", c / 1_000),
        };
        println!("{mode:>22} {best:>12.1} {frames:>10} {series:>10}");
    }
}

fn bench_ops(c: &mut Criterion) {
    ops_overhead_report();

    let mut group = c.benchmark_group("e15_ops");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    // A populated registry to sample: run the pipeline once, then measure
    // the per-frame cost in isolation.
    let tel = Telemetry::new();
    let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default()).with_telemetry(&tel);
    for r in flow_trace(7, 500.0, 60, 1.1) {
        fs.ingest_round_robin(&r);
    }
    fs.finish();
    let registry = Arc::clone(tel.registry().expect("telemetry is enabled"));
    println!("registry series sampled below: {}", registry.len());

    group.bench_function("sampler_frame", |b| {
        let mut s = MetricSampler::new(Arc::clone(&registry), SamplerConfig::default());
        let mut now = 0u64;
        b.iter(|| {
            now += SEC;
            s.force_sample(black_box(now));
        });
    });

    group.bench_function("ops_tick_with_rules", |b| {
        let mut ops = OpsPlane::standard(&tel).expect("telemetry is enabled");
        let mut now = 0u64;
        b.iter(|| {
            now += SEC;
            ops.force_tick(megastream_flow::time::Timestamp::from_micros(black_box(
                now,
            )));
        });
    });

    // The cadence gate itself — the cost paid on every ingest when the
    // cadence has NOT elapsed (the common case).
    group.bench_function("ops_tick_gated_x1000", |b| {
        let mut ops = OpsPlane::standard(&tel).expect("telemetry is enabled");
        ops.force_tick(megastream_flow::time::Timestamp::from_micros(SEC));
        b.iter(|| {
            for _ in 0..1000 {
                black_box(ops.tick(megastream_flow::time::Timestamp::from_micros(SEC + 1)));
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
