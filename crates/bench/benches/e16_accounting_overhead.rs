//! E16 — accounting-plane overhead: the scoped-activity profiler, the
//! per-query cost meter, and the incremental store-memory account must be
//! free when off and cheap when on.
//!
//! Shape expectations (recorded in EXPERIMENTS.md): a disabled profiler
//! adds <1% to the E11 ingest workload (its guard is one branch on a
//! `None`); an enabled profiler costs two clock reads plus a thread-local
//! stack push/pop per activity; cost metering rides on counts the
//! executor already has, so `query` latency is unchanged within noise;
//! the incremental memory account turns the O(#summaries) deep-size walk
//! into an O(1) read.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream_bench::{flow_trace, rule};
use megastream_telemetry::Profiler;

fn ingest_overhead_report() {
    rule("E16 — ingest throughput: profiler off vs disabled-handle vs enabled (60k flows)");
    let trace = flow_trace(2026, 500.0, 120, 1.1);
    println!("{:>10} {:>12} {:>12}", "mode", "elapsed ms", "paths");
    for mode in ["off", "disabled", "enabled"] {
        let profiler = if mode == "enabled" {
            Profiler::new()
        } else {
            Profiler::disabled()
        };
        let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
        // "off" measures the baseline without even attaching the handle;
        // "disabled" attaches the null handle the guard must make free.
        if mode != "off" {
            fs.set_profiler(&profiler);
        }
        let start = std::time::Instant::now();
        for r in &trace {
            fs.ingest_round_robin(r);
        }
        fs.finish();
        println!(
            "{:>10} {:>12.1} {:>12}",
            mode,
            start.elapsed().as_secs_f64() * 1e3,
            profiler.snapshot().activities.len(),
        );
    }
}

fn bench_accounting(c: &mut Criterion) {
    ingest_overhead_report();

    let mut group = c.benchmark_group("e16_accounting");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    // Raw guard cost, null vs live: the disabled path is the one that
    // rides in production by default.
    let disabled = Profiler::disabled();
    let enabled = Profiler::new();
    for (name, prof) in [("disabled", &disabled), ("enabled", &enabled)] {
        group.bench_function(BenchmarkId::new("activity_guard_x1000", name), |b| {
            b.iter(|| {
                for _ in 0..1000 {
                    let _g = black_box(prof).activity("bench.activity");
                }
            });
        });
    }

    // End-to-end ingest with and without a live profiler (the E11 workload
    // shape — this is the <1% disabled-path acceptance gate).
    let trace = flow_trace(7, 500.0, 30, 1.1);
    for (name, make) in [
        ("disabled", Profiler::disabled as fn() -> Profiler),
        ("enabled", Profiler::new as fn() -> Profiler),
    ] {
        group.bench_function(BenchmarkId::new("flowstream_ingest_15k", name), |b| {
            b.iter(|| {
                let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
                fs.set_profiler(&make());
                for r in &trace {
                    fs.ingest_round_robin(r);
                }
                fs.stats().flows
            });
        });
    }

    // Cost metering rides along with every query; the meter itself is the
    // difference between this and the pre-PR query path (counts the
    // planner already computed, two Stopwatch reads).
    let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
    for r in &trace {
        fs.ingest_round_robin(r);
    }
    fs.finish();
    group.bench_function("query_with_cost_meter", |b| {
        b.iter(|| {
            fs.query(black_box("SELECT TOPK 5 FROM ALL"))
                .expect("query")
                .cost
                .work_units()
        });
    });

    // The incremental account vs the independent recompute: what the
    // `store.memory.bytes` gauge saves at every rotation.
    let store = fs.region_store(0);
    group.bench_function("store_accounted_bytes", |b| {
        b.iter(|| black_box(store).accounted_bytes());
    });
    group.bench_function("store_deep_bytes_recompute", |b| {
        b.iter(|| black_box(store).deep_bytes());
    });
    group.finish();
}

criterion_group!(benches, bench_accounting);
criterion_main!(benches);
