//! E5 — Fig. 3b: the manager holds a storage budget through a 10× data
//! rate surge by retuning the primitives' granularity online.
//!
//! Prints the footprint/granularity trajectory before, during and after
//! the surge.

use criterion::{criterion_group, criterion_main, Criterion};

use megastream_bench::{flow_trace, rule};
use megastream_datastore::{DataStore, StorageStrategy};
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_manager::requirements::{AggregationFormat, AppRequirement};
use megastream_manager::Manager;
use megastream_replication::policy::ReplicationPolicy;

const BUDGET: usize = 150_000;

fn run_surge(report: bool) -> (usize, usize) {
    let mut mgr = Manager::new(ReplicationPolicy::Never);
    mgr.register_requirement(AppRequirement {
        app: "monitoring".into(),
        store: "edge".into(),
        streams: vec![],
        format: AggregationFormat::Flowtree,
        precision: 1.0,
        timeliness: TimeDelta::from_secs(60),
    });
    // The manager budget covers live aggregators *and* stored summaries;
    // give the summary store half so the live side keeps the rest.
    let mut store = DataStore::new(
        "edge",
        StorageStrategy::RoundRobin {
            budget_bytes: BUDGET / 2,
        },
        TimeDelta::from_secs(60),
    );
    mgr.plan_and_install(&mut [&mut store]);
    mgr.resources_mut().set_storage_budget("edge", BUDGET);

    if report {
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>12}",
            "epoch", "rate/s", "footprint B", "budget B", "tree cap"
        );
    }
    let mut worst_after_adapt = 0usize;
    let mut epoch_no = 0u64;
    let mut offset = 0u64;
    for (phase, rate) in [(0u64, 100.0f64), (1, 1_000.0), (2, 100.0)] {
        for rec in flow_trace(40 + phase, rate, 240, 1.1) {
            let ts = Timestamp::from_micros(offset + rec.ts.as_micros());
            let mut r = rec;
            r.ts = ts;
            store.ingest_flow(&"r0".into(), &r, ts);
            if store.epoch_due(ts) {
                // Observe and adapt on the *loaded* store (end of epoch),
                // then rotate: this epoch's footprint drives next epoch's
                // granularity — the Fig. 3b "resource status" feedback.
                let footprint = store.live_footprint();
                mgr.tick(&mut [&mut store], &[rate]);
                store.rotate_epoch(ts);
                epoch_no += 1;
                // Allow the controller two epochs to converge, then hold
                // it to the budget (footprint measured at epoch end).
                if epoch_no > 2 {
                    worst_after_adapt = worst_after_adapt.max(footprint);
                }
                if report {
                    let capacity = store
                        .aggregator_ids()
                        .first()
                        .and_then(|id| store.aggregator(*id))
                        .map(|a| match a {
                            megastream_datastore::AggregatorInstance::Flowtree(t) => {
                                t.config().capacity
                            }
                            _ => 0,
                        })
                        .unwrap_or(0);
                    println!(
                        "{:<8} {:>10.0} {:>12} {:>12} {:>12}",
                        epoch_no, rate, footprint, BUDGET, capacity
                    );
                }
            }
        }
        offset += 240_000_000;
    }
    (worst_after_adapt, BUDGET)
}

fn report() {
    rule("E5 / Fig. 3b — manager adaptation under a 10x rate surge");
    let (worst, budget) = run_surge(true);
    println!(
        "worst post-adaptation live footprint: {worst} B vs budget {budget} B ({:.2}x)",
        worst as f64 / budget as f64
    );
}

fn bench_control_plane(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("e5_control_plane");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Cost of one manager tick over a loaded store.
    let mut mgr = Manager::new(ReplicationPolicy::Never);
    mgr.register_requirement(AppRequirement {
        app: "monitoring".into(),
        store: "edge".into(),
        streams: vec![],
        format: AggregationFormat::Flowtree,
        precision: 1.0,
        timeliness: TimeDelta::from_secs(60),
    });
    let mut store = DataStore::new(
        "edge",
        StorageStrategy::RoundRobin {
            budget_bytes: 64 << 20,
        },
        TimeDelta::from_secs(60),
    );
    mgr.plan_and_install(&mut [&mut store]);
    for rec in flow_trace(1, 500.0, 30, 1.1) {
        store.ingest_flow(&"r".into(), &rec, rec.ts);
    }
    mgr.resources_mut().set_storage_budget("edge", 1 << 20);
    group.bench_function("manager_tick", |b| {
        b.iter(|| mgr.tick(&mut [&mut store], &[500.0]));
    });

    // Full placement derivation from a large requirement registry.
    let mut big = Manager::new(ReplicationPolicy::Never);
    for i in 0..100 {
        big.register_requirement(AppRequirement {
            app: format!("app-{i}"),
            store: format!("store-{}", i % 10),
            streams: vec![],
            format: match i % 4 {
                0 => AggregationFormat::Flowtree,
                1 => AggregationFormat::Sample,
                2 => AggregationFormat::Histogram,
                _ => AggregationFormat::TopFlows,
            },
            precision: 0.1 + (i as f64 % 9.0) / 10.0,
            timeliness: TimeDelta::from_secs(60),
        });
    }
    group.bench_function("placement_derive_100_reqs", |b| {
        b.iter(|| big.plan().total_installs());
    });
    group.finish();
}

criterion_group!(benches, bench_control_plane);
criterion_main!(benches);
