//! E6 — Fig. 4 / §IV "Storage": retention and query accuracy of the three
//! storage strategies across storage budgets.
//!
//! For each budget, 24 one-minute epochs of flow summaries are stored under
//! S1/S2/S3; the table reports how far back queries can still be answered,
//! the storage actually used, and the relative error of an old-window
//! query.

use criterion::{criterion_group, criterion_main, Criterion};

use megastream_bench::{flow_trace, rule};
use megastream_datastore::storage::{StorageStrategy, SummaryStore};
use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
use megastream_flow::key::FlowKey;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::{Flowtree, FlowtreeConfig};

const EPOCHS: u64 = 24;

fn epoch_summary(epoch: u64) -> StoredSummary {
    let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(1 << 14));
    for rec in flow_trace(100 + epoch, 300.0, 60, 1.1) {
        tree.observe(&rec);
    }
    StoredSummary::new(
        "router-0/agg0",
        TimeWindow::starting_at(Timestamp::from_secs(epoch * 60), TimeDelta::from_secs(60)),
        Summary::Flowtree(tree),
        Lineage::from_source("router-0"),
    )
}

/// Exact per-epoch totals (ground truth for the old-window query).
fn epoch_total(epoch: u64) -> u64 {
    flow_trace(100 + epoch, 300.0, 60, 1.1)
        .iter()
        .map(|r| r.packets)
        .sum()
}

fn run(strategy: StorageStrategy) -> (SummaryStore, Vec<StoredSummary>) {
    let mut store = SummaryStore::new(strategy, "edge");
    let mut originals = Vec::new();
    for epoch in 0..EPOCHS {
        let s = epoch_summary(epoch);
        originals.push(s.clone());
        store.insert(s, Timestamp::from_secs((epoch + 1) * 60));
    }
    (store, originals)
}

fn old_window_score(store: &SummaryStore) -> u64 {
    let w = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(60));
    store
        .summaries_in(w)
        .filter_map(|s| s.summary.flow_score(&FlowKey::root()))
        .map(|p| p.value())
        .sum()
}

fn report() {
    rule("E6 / Fig. 4 — storage strategies: retention vs budget");
    let one = epoch_summary(0).wire_size();
    println!("(one epoch summary ≈ {one} bytes; {EPOCHS} epochs inserted)");
    println!(
        "{:<34} {:>10} {:>9} {:>10} {:>12} {:>10} {:>8}",
        "strategy", "budget B", "kept", "bytes", "oldest", "epoch0 q", "aggs"
    );
    let truth0 = epoch_total(0);
    for factor in [2usize, 4, 8] {
        let budget = one * factor;
        for (name, strategy) in [
            (
                format!("S1 fixed-expiration (ttl {factor} min)"),
                StorageStrategy::FixedExpiration {
                    ttl: TimeDelta::from_mins(factor as u64),
                },
            ),
            (
                format!("S2 round-robin ({factor} epochs)"),
                StorageStrategy::RoundRobin {
                    budget_bytes: budget,
                },
            ),
            (
                format!("S3 hierarchical ({factor} epochs)"),
                StorageStrategy::RoundRobinHierarchical {
                    budget_bytes: budget,
                    fanout: 2,
                },
            ),
        ] {
            let (store, _) = run(strategy);
            let oldest = store
                .oldest_window()
                .map(|w| format!("{:.0}s", w.start.as_secs_f64()))
                .unwrap_or_else(|| "-".into());
            let q0 = old_window_score(&store);
            println!(
                "{:<34} {:>10} {:>9} {:>10} {:>12} {:>10} {:>8}",
                name,
                budget,
                store.len(),
                store.total_bytes(),
                oldest,
                format!("{:.2}", q0 as f64 / truth0 as f64),
                store.aggregations(),
            );
        }
    }
    println!("('epoch0 q' = root-level score over the first epoch's window / ground truth;");
    println!(" S2 answers 0.00 once the budget forces eviction — data is unrecoverable;");
    println!(" S3 keeps answering, ≥ 1.00 because the aggregated window covers more epochs)");
}

fn bench_storage(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("e6_storage_strategies");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let one = epoch_summary(0).wire_size();
    let summaries: Vec<StoredSummary> = (0..EPOCHS).map(epoch_summary).collect();
    for (name, strategy) in [
        (
            "s1_insert",
            StorageStrategy::FixedExpiration {
                ttl: TimeDelta::from_mins(4),
            },
        ),
        (
            "s2_insert",
            StorageStrategy::RoundRobin {
                budget_bytes: one * 4,
            },
        ),
        (
            "s3_insert",
            StorageStrategy::RoundRobinHierarchical {
                budget_bytes: one * 4,
                fanout: 2,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut store = SummaryStore::new(strategy, "edge");
                for (epoch, s) in summaries.iter().enumerate() {
                    store.insert(s.clone(), Timestamp::from_secs((epoch as u64 + 1) * 60));
                }
                store.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
