//! E3 — Fig. 1: data-rate reduction across the hierarchy levels, for both
//! the smart-factory and the network-monitoring setting.
//!
//! Prints per-level byte rates (raw at the leaves, summary exports at each
//! level) and checks the timeliness budgets (machine < 1 s via triggers,
//! line < 1 min via epochs).

use criterion::{criterion_group, criterion_main, Criterion};

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream::hierarchy::StoreHierarchy;
use megastream_bench::{flow_trace, rule};
use megastream_datastore::{AggregatorSpec, DataStore, StorageStrategy};
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_netsim::hierarchy::FactoryTopology;
use megastream_workloads::factory::{CameraKind, FactoryWorkload, SensorChannel};

const LINES: usize = 3;
const MACHINES_PER_LINE: usize = 4;

fn factory_report() {
    rule("E3 / Fig. 1a — smart-factory hierarchy data rates");
    let topo = FactoryTopology::build(LINES, MACHINES_PER_LINE);
    let machine_nets = topo.machines.clone();
    let line_nets = topo.lines.clone();
    let factory_net = topo.factory;
    let mut h = StoreHierarchy::new(topo.network);

    let factory = h.add_root(
        DataStore::new(
            "factory",
            StorageStrategy::RoundRobinHierarchical {
                budget_bytes: 16 << 20,
                fanout: 2,
            },
            TimeDelta::from_mins(10),
        ),
        factory_net,
    );
    let mut machine_ids = Vec::new();
    let mut line_ids = Vec::new();
    for l in 0..LINES {
        let mut line_store = DataStore::new(
            format!("line-{l}"),
            StorageStrategy::RoundRobin {
                budget_bytes: 8 << 20,
            },
            TimeDelta::from_mins(1),
        );
        // The line store re-aggregates its machines' bins at a coarser
        // (1 min) granularity before exporting to the factory.
        line_store.install_aggregator(AggregatorSpec::TimeBins {
            width: TimeDelta::from_secs(60),
            seed: l as u64,
        });
        let line = h.add_child(line_store, line_nets[l], factory);
        line_ids.push(line);
        for (m, &machine_net) in machine_nets[l].iter().enumerate() {
            let machine = l * MACHINES_PER_LINE + m;
            let mut store = DataStore::new(
                format!("machine-{machine}"),
                StorageStrategy::RoundRobin {
                    budget_bytes: 1 << 20,
                },
                TimeDelta::from_secs(10),
            );
            for channel in SensorChannel::ALL {
                let agg = store.install_aggregator(AggregatorSpec::TimeBins {
                    width: TimeDelta::from_secs(10),
                    seed: machine as u64,
                });
                store.subscribe(agg, format!("machine-{machine}/{channel}").as_str().into());
            }
            machine_ids.push(h.add_child(store, machine_net, line));
        }
    }

    // 10 simulated minutes of sensor data at 10 Hz.
    let mut workload =
        FactoryWorkload::new(LINES * MACHINES_PER_LINE, TimeDelta::from_millis(100), 7);
    let horizon = Timestamp::from_secs(600);
    let mut stats_total = megastream::hierarchy::ExportStats::default();
    for step in 1..=60u64 {
        let until = Timestamp::from_secs(step * 10);
        for r in workload.readings_until(until) {
            let stream = format!("machine-{}/{}", r.machine, r.channel);
            h.ingest_scalar(
                machine_ids[r.machine],
                &stream.as_str().into(),
                r.value,
                r.ts,
            );
        }
        stats_total += h
            .pump(until)
            .expect("benchmark hierarchy is fully connected");
    }
    let _ = horizon;

    let raw_machine: u64 = machine_ids
        .iter()
        .map(|id| h.store(*id).stats().raw_bytes)
        .sum();
    let machine_exports: u64 = machine_ids
        .iter()
        .map(|id| h.store(*id).stats().exported_bytes)
        .sum();
    let line_exports: u64 = line_ids
        .iter()
        .map(|id| h.store(*id).stats().exported_bytes)
        .sum();
    let span_s = 600.0;
    println!(
        "sensors  -> machine stores : {:>12.0} B/s raw ({} machines x 3 channels @10 Hz)",
        raw_machine as f64 / span_s,
        LINES * MACHINES_PER_LINE
    );
    println!(
        "machines -> line stores    : {:>12.0} B/s summaries ({:.0}x reduction)",
        machine_exports as f64 / span_s,
        raw_machine as f64 / machine_exports.max(1) as f64
    );
    println!(
        "lines    -> factory store  : {:>12.0} B/s summaries ({:.0}x cumulative)",
        line_exports as f64 / span_s,
        raw_machine as f64 / line_exports.max(1) as f64
    );
    println!(
        "(context: one 3D camera would add {:>12} B/s of raw data at a machine)",
        CameraKind::ThreeD.bytes_per_sec()
    );
    println!(
        "network bytes moved: {}  (rotations {}, exports {})",
        h.network().total_bytes(),
        stats_total.rotations,
        stats_total.exported_summaries
    );
}

fn network_report() {
    rule("E3 / Fig. 1b — network-monitoring hierarchy data rates");
    let mut fs = Flowstream::new(2, 8, FlowstreamConfig::default());
    let trace = flow_trace(21, 2_000.0, 300, 1.1);
    for rec in &trace {
        fs.ingest_round_robin(rec);
    }
    fs.finish();
    let span_s = 300.0;
    let raw: u64 = (0..2).map(|g| fs.region_store(g).stats().raw_bytes).sum();
    let exported: u64 = (0..2)
        .map(|g| fs.region_store(g).stats().exported_bytes)
        .sum();
    println!(
        "routers -> region stores : {:>12.0} B/s raw flow records (16 routers)",
        raw as f64 / span_s
    );
    println!(
        "regions -> NOC           : {:>12.0} B/s flowtree summaries ({:.0}x reduction)",
        exported as f64 / span_s,
        raw as f64 / exported.max(1) as f64
    );
    println!(
        "NOC store holds {} summaries covering the whole network",
        fs.noc_store().summaries().len()
    );
}

fn bench_hierarchy(c: &mut Criterion) {
    factory_report();
    network_report();
    let mut group = c.benchmark_group("e3_hierarchy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // End-to-end: one minute of 2-region Flowstream ingest + rotation.
    let trace = flow_trace(5, 1_000.0, 60, 1.1);
    group.bench_function("flowstream_minute_2x4", |b| {
        b.iter(|| {
            let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
            for rec in &trace {
                fs.ingest_round_robin(rec);
            }
            fs.finish();
            fs.network().total_bytes()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
