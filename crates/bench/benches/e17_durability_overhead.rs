//! E17 — durability overhead: what the checksummed cold tier costs the
//! ingest path at each fsync policy, against the detached baseline.
//!
//! Shape expectations (recorded in EXPERIMENTS.md): with the tier off,
//! ingest is the E11 baseline; attached with `SyncPolicy::Off` the tax is
//! the WAL/frame encoding; `OnSeal` (the default) adds one fsync per
//! sealed epoch plus one per WAL reset, amortized to noise; `WriteThrough`
//! fsyncs every append and pays for it — that is the point of the knob.

use std::path::PathBuf;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream::{ColdTier, SyncPolicy};
use megastream_bench::{flow_trace, rule};
use megastream_telemetry::Telemetry;

/// The cold-tier modes swept: detached, and one per fsync policy.
const MODES: [&str; 4] = ["off", "sync-off", "on-seal", "write-through"];

fn store_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("megastream-e17-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn attach(fs: &mut Flowstream, mode: &str, dir: &PathBuf, tel: &Telemetry) {
    let sync = match mode {
        "off" => return,
        "sync-off" => SyncPolicy::Off,
        "on-seal" => SyncPolicy::OnSeal,
        _ => SyncPolicy::WriteThrough,
    };
    let _ = std::fs::remove_dir_all(dir);
    let tier = ColdTier::create(dir, sync, tel.clone()).expect("store creates");
    fs.attach_cold_tier(tier);
}

fn ingest_overhead_report() {
    rule("E17 — ingest throughput: cold tier off vs Off vs OnSeal vs WriteThrough (60k flows)");
    let trace = flow_trace(2026, 500.0, 120, 1.1);
    println!(
        "{:>14} {:>12} {:>10} {:>12} {:>10}",
        "mode", "elapsed ms", "segments", "disk KiB", "fsyncs"
    );
    for mode in MODES {
        let tel = Telemetry::new();
        let dir = store_dir(mode);
        let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default()).with_telemetry(&tel);
        attach(&mut fs, mode, &dir, &tel);
        let start = std::time::Instant::now();
        for r in &trace {
            fs.ingest_round_robin(r);
        }
        fs.finish();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let snap = tel.snapshot();
        let counter = |name: &str| snap.counter(name).unwrap_or(0);
        println!(
            "{:>14} {:>12.1} {:>10} {:>12.1} {:>10}",
            mode,
            elapsed,
            counter("storage.segments.sealed_total"),
            (counter("storage.segments.bytes_total") + counter("storage.wal.bytes_total")) as f64
                / 1024.0,
            counter("storage.segments.fsync_total"),
        );
        drop(fs);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn bench_durability(c: &mut Criterion) {
    ingest_overhead_report();

    let mut group = c.benchmark_group("e17_durability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    // End-to-end ingest per mode (the E11 workload shape, 15k flows).
    let trace = flow_trace(7, 500.0, 30, 1.1);
    for mode in MODES {
        group.bench_function(BenchmarkId::new("flowstream_ingest_15k", mode), |b| {
            let dir = store_dir(&format!("bench-{mode}"));
            let tel = Telemetry::disabled();
            b.iter(|| {
                let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
                attach(&mut fs, mode, &dir, &tel);
                for r in &trace {
                    fs.ingest_round_robin(r);
                }
                black_box(fs.stats().flows)
            });
            let _ = std::fs::remove_dir_all(&dir);
        });
    }

    // Recovery latency: open + replay of a store the 15k-flow run left
    // behind — the restart-path cost the e2e proves correct.
    let dir = store_dir("recover");
    {
        let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
        attach(&mut fs, "sync-off", &dir, &Telemetry::disabled());
        for r in &trace {
            fs.ingest_round_robin(r);
        }
        // Leave the store as a kill would: WAL intact, no finish().
    }
    group.bench_function("recover_15k_flow_store", |b| {
        b.iter(|| {
            let (fs, report) = Flowstream::recover(
                2,
                4,
                FlowstreamConfig::default(),
                &dir,
                SyncPolicy::Off,
                &Telemetry::disabled(),
            )
            .expect("store recovers");
            black_box((fs.stats().flows, report.recovered_frames))
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
