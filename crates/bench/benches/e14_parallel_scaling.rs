//! E14 — parallel data plane scaling: grouped query fan-out latency and
//! hierarchy pump throughput as a function of the worker count, against
//! the `Parallelism::Sequential` oracle.
//!
//! An 8-region Flowstream deployment (9 indexed locations with the NOC)
//! answers the E14 grouped query under 1/2/4/8 workers; a flat 8-leaf
//! store hierarchy rotates one epoch per setting. The report prints the
//! latency table with a speedup column — `tests/parallel_e2e.rs` proves
//! the answers themselves are identical, this experiment measures what
//! the parallelism buys. The target figure is ≥2x fan-out speedup at 4
//! threads.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream::hierarchy::StoreHierarchy;
use megastream::Parallelism;
use megastream_bench::{flow_trace, rule};
use megastream_datastore::store::DataStore;
use megastream_datastore::{AggregatorSpec, StorageStrategy};
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowtree::FlowtreeConfig;
use megastream_netsim::topology::{LinkSpec, Network, NodeKind};

const REGIONS: usize = 8;
const ROUTERS: usize = 2;
const RUN_SECS: u64 = 300;
/// The E14 grouped query: one merge + operator run per location, the
/// fan-out shape that parallelizes across workers.
const QUERY: &str = "SELECT TOPK 3 FROM ALL GROUP BY location";

const SETTINGS: [Parallelism; 4] = [
    Parallelism::Sequential,
    Parallelism::Threads(2),
    Parallelism::Threads(4),
    Parallelism::Threads(8),
];

/// An ingested 8-region deployment with ten 30 s epochs per region store.
fn loaded_deployment() -> Flowstream {
    let mut fs = Flowstream::new(
        REGIONS,
        ROUTERS,
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(30),
            ..Default::default()
        },
    );
    for rec in flow_trace(14, 400.0, RUN_SECS, 1.1) {
        fs.ingest_round_robin(&rec);
    }
    fs.finish();
    fs
}

/// Median wall time of `reps` runs of `f`, in microseconds.
fn time_micros<T>(reps: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_micros() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn query_scaling_report(fs: &mut Flowstream) {
    rule("E14 — grouped query fan-out latency vs workers (8 regions + NOC)");
    // Wall-clock speedup is bounded by the host: on a single-core runner
    // every setting degenerates to ~1.0 and Threads(n) only adds spawn
    // overhead. The equivalence suite, not this table, proves correctness.
    println!(
        "host cores: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!(
        "{:>12} {:>12} {:>8}",
        "parallelism", "latency_us", "speedup"
    );
    let mut sequential_us = 0u64;
    for par in SETTINGS {
        fs.set_parallelism(par);
        let us = time_micros(15, || fs.query(QUERY).expect("grouped query"));
        if par == Parallelism::Sequential {
            sequential_us = us;
        }
        println!(
            "{:>12} {:>12} {:>8.2}",
            par.to_string(),
            us,
            sequential_us as f64 / us.max(1) as f64
        );
    }
    fs.set_parallelism(Parallelism::default());
}

/// A flat hierarchy: one root store with `REGIONS` leaf stores, each leaf
/// loaded with one epoch of flows, all due for rotation at `pump_at`.
fn loaded_hierarchy(par: Parallelism) -> (StoreHierarchy, Timestamp) {
    let mut net = Network::new();
    let root_n = net.add_node("root", NodeKind::DataStore);
    let mut leaves = Vec::new();
    for g in 0..REGIONS {
        let leaf_n = net.add_node(format!("leaf-{g}"), NodeKind::DataStore);
        net.connect(leaf_n, root_n, LinkSpec::wan_100m());
        leaves.push(leaf_n);
    }
    let mut h = StoreHierarchy::new(net);
    h.set_parallelism(par);
    let store = |name: &str| {
        let mut s = DataStore::new(
            name,
            StorageStrategy::RoundRobin {
                budget_bytes: 64 << 20,
            },
            TimeDelta::from_secs(60),
        );
        s.install_aggregator(AggregatorSpec::Flowtree(
            FlowtreeConfig::default().with_capacity(8192),
        ));
        s
    };
    let root = h.add_root(store("root"), root_n);
    let ids: Vec<_> = leaves
        .iter()
        .enumerate()
        .map(|(g, &n)| h.add_child(store(&format!("leaf-{g}")), n, root))
        .collect();
    let trace = flow_trace(15, 200.0, 59, 1.1);
    for (g, id) in ids.iter().enumerate() {
        let stream = format!("router-{g}").as_str().into();
        for rec in &trace {
            h.ingest_flow(*id, &stream, rec, rec.ts);
        }
    }
    (h, Timestamp::from_secs(60))
}

fn pump_scaling_report() {
    rule("E14 — hierarchy pump wall time vs workers (8 sibling leaves)");
    println!(
        "{:>12} {:>12} {:>10} {:>8}",
        "parallelism", "pump_us", "exported", "speedup"
    );
    let mut sequential_us = 0u64;
    for par in SETTINGS {
        // The pump consumes the rotation, so each sample gets a fresh
        // hierarchy; only the pump itself is timed.
        let mut samples = Vec::new();
        let mut exported = 0;
        for _ in 0..5 {
            let (mut h, at) = loaded_hierarchy(par);
            let start = Instant::now();
            let stats = h.pump(at).expect("pump succeeds");
            samples.push(start.elapsed().as_micros() as u64);
            exported = stats.exported_summaries;
        }
        samples.sort_unstable();
        let us = samples[samples.len() / 2];
        if par == Parallelism::Sequential {
            sequential_us = us;
        }
        println!(
            "{:>12} {:>12} {:>10} {:>8.2}",
            par.to_string(),
            us,
            exported,
            sequential_us as f64 / us.max(1) as f64
        );
    }
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut fs = loaded_deployment();
    query_scaling_report(&mut fs);
    pump_scaling_report();

    let mut group = c.benchmark_group("e14_parallel_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
        fs.set_parallelism(par);
        group.bench_function(format!("grouped_query_{par}"), |b| {
            b.iter(|| fs.query(QUERY).expect("grouped query"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
