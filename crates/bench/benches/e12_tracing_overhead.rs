//! E12 — tracing overhead: disabled vs sampled vs always-on.
//!
//! The disabled handle must keep every span site at one branch — a traced
//! query path with `Tracer::disabled()` must be indistinguishable from the
//! pre-tracing baseline (the E11 discipline). Head-based sampling must
//! scale cost with the sampled fraction, and even always-on tracing must
//! stay cheap enough for incident response (a handful of allocations per
//! sampled trace).
//!
//! Shape expectations (recorded in EXPERIMENTS.md): disabled root/span
//! operations in the low-nanosecond range and flat in trace depth;
//! always-on per-span cost dominated by the clock reads and the ring-push
//! lock; query-path overhead visible only on sampled queries.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream_bench::{flow_trace, rule};
use megastream_telemetry::Tracer;

fn query_overhead_report() {
    rule("E12 — FlowQL query latency: tracing disabled vs sampled vs always-on");
    let trace = flow_trace(2026, 500.0, 120, 1.1);
    let query = "SELECT TOPK 5 FROM ALL WHERE location = \"region-0\"";
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "mode", "queries", "elapsed ms", "spans"
    );
    for (name, tracer) in [
        ("disabled", Tracer::disabled()),
        ("every-16", Tracer::sampled_every(16)),
        ("always", Tracer::new()),
    ] {
        let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default()).with_tracer(&tracer);
        for r in &trace {
            fs.ingest_round_robin(r);
        }
        fs.finish();
        let start = std::time::Instant::now();
        let n = 64;
        for _ in 0..n {
            fs.query(query).expect("bench query");
        }
        println!(
            "{:>10} {:>12} {:>12.1} {:>12}",
            name,
            n,
            start.elapsed().as_secs_f64() * 1e3,
            tracer.snapshot().spans.len(),
        );
    }
}

fn bench_tracing(c: &mut Criterion) {
    query_overhead_report();

    let mut group = c.benchmark_group("e12_tracing");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    // Raw span-site cost: the disabled handle is the guard on the fast
    // path — a root on a None tracer must be a branch, never a clock read.
    let disabled = Tracer::disabled();
    let sampled = Tracer::sampled_every(64);
    let always = Tracer::new();
    for (name, tracer) in [
        ("disabled", &disabled),
        ("every-64", &sampled),
        ("always", &always),
    ] {
        group.bench_function(BenchmarkId::new("root_span_x1000", name), |b| {
            b.iter(|| {
                for _ in 0..1000 {
                    black_box(black_box(tracer).root("bench").finish());
                }
            });
        });
        group.bench_function(BenchmarkId::new("nested_span_tree_x100", name), |b| {
            b.iter(|| {
                for _ in 0..100 {
                    let mut root = black_box(tracer).root("bench");
                    root.add_bytes(1024);
                    let child = root.child("stage");
                    black_box(child.finish());
                    black_box(root.finish());
                }
            });
        });
        tracer.clear();
    }

    // End-to-end query path: the acceptance criterion — disabled-mode
    // overhead must be indistinguishable from the untraced baseline.
    let trace = flow_trace(7, 500.0, 30, 1.1);
    let query = "SELECT TOPK 5 FROM ALL WHERE location = \"region-0\"";
    for (name, tracer) in [
        ("disabled", Tracer::disabled()),
        ("every-16", Tracer::sampled_every(16)),
        ("always", Tracer::new()),
    ] {
        let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default()).with_tracer(&tracer);
        for r in &trace {
            fs.ingest_round_robin(r);
        }
        fs.finish();
        group.bench_function(BenchmarkId::new("flowstream_query", name), |b| {
            b.iter(|| black_box(fs.query(black_box(query)).expect("bench query").rows.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tracing);
criterion_main!(benches);
