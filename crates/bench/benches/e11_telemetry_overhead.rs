//! E11 — telemetry overhead: the null-handle fast path must make an
//! uninstrumented pipeline indistinguishable from one that predates the
//! telemetry layer, and an enabled registry must stay cheap enough to
//! leave on in production (atomics on the hot path, no locks).
//!
//! Shape expectations (recorded in EXPERIMENTS.md): disabled-vs-enabled
//! ingest throughput within a few percent; raw handle operations in the
//! low-nanosecond range; a registry lookup (name hash + shard lock) is the
//! expensive path and belongs outside hot loops.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use megastream::flowstream::{Flowstream, FlowstreamConfig};
use megastream_bench::{flow_trace, rule};
use megastream_telemetry::{Telemetry, LATENCY_MICROS_BOUNDS};

fn ingest_overhead_report() {
    rule("E11 — ingest throughput: telemetry disabled vs enabled (60k flows)");
    let trace = flow_trace(2026, 500.0, 120, 1.1);
    println!("{:>10} {:>12} {:>12}", "mode", "elapsed ms", "metrics");
    for enabled in [false, true] {
        let tel = if enabled {
            Telemetry::new()
        } else {
            Telemetry::disabled()
        };
        let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default()).with_telemetry(&tel);
        let start = std::time::Instant::now();
        for r in &trace {
            fs.ingest_round_robin(r);
        }
        fs.finish();
        println!(
            "{:>10} {:>12.1} {:>12}",
            if enabled { "enabled" } else { "disabled" },
            start.elapsed().as_secs_f64() * 1e3,
            tel.snapshot().len(),
        );
    }
}

fn bench_telemetry(c: &mut Criterion) {
    ingest_overhead_report();

    let mut group = c.benchmark_group("e11_telemetry");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    // Raw handle cost, null vs live: this is the guard on the fast path —
    // a no-op counter must be a branch on a None, nothing more.
    let disabled = Telemetry::disabled();
    let enabled = Telemetry::new();
    for (name, tel) in [("disabled", &disabled), ("enabled", &enabled)] {
        let counter = tel.counter("bench.counter");
        group.bench_function(BenchmarkId::new("counter_inc_x1000", name), |b| {
            b.iter(|| {
                for _ in 0..1000 {
                    black_box(&counter).inc();
                }
            });
        });
        let hist = tel.histogram("bench.hist", LATENCY_MICROS_BOUNDS);
        group.bench_function(BenchmarkId::new("histogram_record_x1000", name), |b| {
            b.iter(|| {
                for i in 0..1000u64 {
                    black_box(&hist).record(i * 17 % 5_000);
                }
            });
        });
    }

    // Registry lookup (the slow path components must keep out of hot loops).
    group.bench_function("registry_counter_lookup", |b| {
        b.iter(|| enabled.counter(black_box("bench.lookup")).inc());
    });

    // End-to-end ingest with and without a live registry.
    let trace = flow_trace(7, 500.0, 30, 1.1);
    for (name, make_tel) in [
        ("disabled", Telemetry::disabled as fn() -> Telemetry),
        ("enabled", Telemetry::new as fn() -> Telemetry),
    ] {
        group.bench_function(BenchmarkId::new("flowstream_ingest_15k", name), |b| {
            b.iter(|| {
                let mut fs =
                    Flowstream::new(2, 4, FlowstreamConfig::default()).with_telemetry(&make_tel());
                for r in &trace {
                    fs.ingest_round_robin(r);
                }
                fs.stats().flows
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
