//! E7 — Fig. 5 / §VI: Flowstream accuracy vs summary budget, against the
//! exact table and the classic sketch baselines (Space-Saving, Count-Min),
//! plus the generalization-order ablation.
//!
//! Shape expectations (recorded in EXPERIMENTS.md): at a few percent of
//! exact-table memory, Flowtree answers heavy-prefix queries with small
//! error and degrades gracefully as the budget shrinks; Space-Saving only
//! answers exact-key queries (no prefixes); Count-Min overestimates the
//! tail. The ablation shows the dst-/src-preserving orders trading one
//! side's accuracy for the other's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;

use megastream_bench::{flow_trace, rule};
use megastream_flow::key::{FeatureSet, FlowKey};
use megastream_flow::mask::GeneralizationSchema;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::{Popularity, ScoreKind};
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use megastream_primitives::aggregator::ComputingPrimitive;
use megastream_primitives::cms::CountMinSketch;
use megastream_primitives::exact::ExactFlowTable;
use megastream_primitives::spacesaving::SpaceSaving;

fn trace() -> Vec<FlowRecord> {
    flow_trace(2026, 500.0, 240, 1.1)
}

/// Mean relative error of per-key point queries over the true top-k exact
/// flows (0 = perfect).
fn top_k_mre(estimate: impl Fn(&FlowKey) -> u64, exact: &ExactFlowTable, k: usize) -> f64 {
    let top = exact.top_k(k);
    let mut err = 0.0;
    for (key, truth) in &top {
        let est = estimate(key) as f64;
        err += (est - truth.value() as f64).abs() / truth.value() as f64;
    }
    err / top.len() as f64
}

/// Mean relative error over all src-/8 prefixes carrying traffic.
fn prefix_mre(tree: &Flowtree, exact: &ExactFlowTable) -> f64 {
    let (mut err, mut n) = (0.0, 0);
    for octet in 1..=255u8 {
        let key = FlowKey::root().with_src_prefix(format!("{octet}.0.0.0/8").parse().unwrap());
        let truth = exact.query(&key).value();
        if truth == 0 {
            continue;
        }
        err += (tree.query(&key).value() as f64 - truth as f64).abs() / truth as f64;
        n += 1;
    }
    err / n.max(1) as f64
}

fn hhh_precision_recall(
    tree: &Flowtree,
    exact: &ExactFlowTable,
    threshold: Popularity,
) -> (f64, f64) {
    let mine: BTreeSet<FlowKey> = tree.hhh(threshold).into_iter().map(|h| h.key).collect();
    let truth: BTreeSet<FlowKey> = exact
        .hhh(&GeneralizationSchema::network_default(), threshold)
        .into_iter()
        .map(|h| h.key)
        .collect();
    if mine.is_empty() || truth.is_empty() {
        return (1.0, if truth.is_empty() { 1.0 } else { 0.0 });
    }
    let hit = mine.intersection(&truth).count() as f64;
    (hit / mine.len() as f64, hit / truth.len() as f64)
}

fn accuracy_report() {
    rule("E7 / Fig. 5 — accuracy vs summary budget (trace: 120k flows, skew 1.1)");
    let trace = trace();
    let mut exact = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
    for r in &trace {
        exact.observe(r);
    }
    let exact_bytes = exact.footprint_bytes();
    let threshold = Popularity::new(exact.total().value() / 200); // 0.5 %
    println!(
        "exact table: {} keys, {} bytes, total {} packets",
        exact.len(),
        exact_bytes,
        exact.total()
    );
    println!(
        "{:>9} | {:>9} {:>8} {:>8} {:>7} {:>7} | {:>9} {:>8} | {:>9} {:>8}",
        "capacity",
        "ft bytes",
        "top20mre",
        "pfx mre",
        "hhh P",
        "hhh R",
        "ss bytes",
        "top20mre",
        "cms bytes",
        "top20mre"
    );
    for capacity in [256usize, 512, 1024, 2048, 4096, 8192, 16384] {
        let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(capacity));
        let mut ss: SpaceSaving<FlowKey> = SpaceSaving::new(capacity);
        // Memory-match the CMS to the flowtree (8-byte counters, depth 4).
        let tree_bytes_est = capacity * (std::mem::size_of::<FlowKey>() + 8);
        let cms_width = (tree_bytes_est / (8 * 4)).max(16);
        let mut cms = CountMinSketch::new(cms_width, 4, 7);
        for r in &trace {
            tree.observe(r);
            ss.offer(FlowKey::from_record(r), r.packets);
            cms.offer(&FlowKey::from_record(r), r.packets);
        }
        let ft_mre = top_k_mre(|k| tree.query(k).value(), &exact, 20);
        let pfx = prefix_mre(&tree, &exact);
        let (p, rcl) = hhh_precision_recall(&tree, &exact, threshold);
        let ss_mre = top_k_mre(|k| ss.estimate(k).map(|c| c.count).unwrap_or(0), &exact, 20);
        let cms_mre = top_k_mre(|k| cms.estimate(k), &exact, 20);
        println!(
            "{:>9} | {:>9} {:>8.3} {:>8.3} {:>7.2} {:>7.2} | {:>9} {:>8.3} | {:>9} {:>8.3}",
            capacity,
            tree.wire_size(),
            ft_mre,
            pfx,
            p,
            rcl,
            ss.footprint_bytes(),
            ss_mre,
            cms.footprint_bytes(),
            cms_mre
        );
    }
    println!("(ft/ss/cms at equal memory; 'pfx mre' is a query class only the flowtree answers)");
}

fn ablation_report() {
    rule("E7 ablation — generalization order vs query side (capacity 1024)");
    let trace = trace();
    let mut exact = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
    for r in &trace {
        exact.observe(r);
    }
    println!("{:<16} {:>12} {:>12}", "schema", "src/8 mre", "dst/8 mre");
    for (name, schema) in [
        ("alternating", GeneralizationSchema::network_default()),
        ("dst-preserving", GeneralizationSchema::dst_preserving()),
        ("src-preserving", GeneralizationSchema::src_preserving()),
    ] {
        let mut tree = Flowtree::new(
            FlowtreeConfig::default()
                .with_capacity(1024)
                .with_schema(schema),
        );
        for r in &trace {
            tree.observe(r);
        }
        let src_err = prefix_mre(&tree, &exact);
        // dst-side error.
        let (mut err, mut n) = (0.0, 0);
        for octet in 1..=255u8 {
            let key = FlowKey::root().with_dst_prefix(format!("{octet}.0.0.0/8").parse().unwrap());
            let truth = exact.query(&key).value();
            if truth == 0 {
                continue;
            }
            err += (tree.query(&key).value() as f64 - truth as f64).abs() / truth as f64;
            n += 1;
        }
        let dst_err = err / n.max(1) as f64;
        println!("{name:<16} {src_err:>12.3} {dst_err:>12.3}");
    }
    println!("(each preserving order wins on its own side — property P5 is a real dial)");
}

fn bench_flowstream(c: &mut Criterion) {
    accuracy_report();
    ablation_report();

    let mut group = c.benchmark_group("e7_flowstream");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    let trace = trace();
    for capacity in [1024usize, 8192] {
        group.bench_with_input(
            BenchmarkId::new("build_tree", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(cap));
                    for r in trace.iter().take(20_000) {
                        tree.observe(r);
                    }
                    tree.len()
                });
            },
        );
    }
    // FlowQL round trip over a populated deployment.
    use megastream::flowstream::{Flowstream, FlowstreamConfig};
    let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
    for r in &trace {
        fs.ingest_round_robin(r);
    }
    fs.finish();
    group.bench_function("flowql_topk_across_sites", |b| {
        b.iter(|| {
            fs.query("SELECT TOPK 10 FROM ALL WHERE src_ip = 10.0.0.0/8")
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_flowstream);
criterion_main!(benches);
