//! E1 — Table I: quantified challenge matrix.
//!
//! For each of the nine challenge rows, prints a measured number that
//! demonstrates the mechanism addressing it. The companion pass/fail
//! scenarios live in `tests/challenges.rs`.

use criterion::{criterion_group, criterion_main, Criterion};

use megastream_bench::{flow_trace, rule};
use megastream_datastore::trigger::TriggerCondition;
use megastream_datastore::{AggregatorSpec, DataStore, StorageStrategy};
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowtree::FlowtreeConfig;
use megastream_netsim::topology::LinkSpec;
use megastream_workloads::factory::{CameraKind, FactoryWorkload};

fn report() {
    rule("E1 / Table I — challenges, quantified");

    // C1: computation requirements — camera rate vs WAN.
    let cam = CameraKind::ThreeD.bytes_per_sec();
    let wan = LinkSpec::wan_100m().bandwidth_bps;
    println!(
        "C1 increasing computation      3D camera {:>12} B/s vs WAN {:>10} B/s  ({:.2}x over)",
        cam,
        wan,
        cam as f64 / wan as f64
    );

    // C2: device counts — streams per store.
    let mut store = DataStore::new(
        "line",
        StorageStrategy::RoundRobin {
            budget_bytes: 8 << 20,
        },
        TimeDelta::from_secs(60),
    );
    store.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
    for i in 0..256 {
        store.ingest_flow(
            &format!("sensor-{i}").as_str().into(),
            &flow_trace(i, 10.0, 1, 1.1)[0],
            Timestamp::ZERO,
        );
    }
    let exported = store.rotate_epoch(Timestamp::from_secs(60));
    println!(
        "C2 many devices                {} distinct streams tracked through one store's lineage",
        exported[0].lineage.sources.len()
    );

    // C3: combined data rates — raw vs exported bytes.
    let mut store = DataStore::new(
        "router",
        StorageStrategy::RoundRobin {
            budget_bytes: 8 << 20,
        },
        TimeDelta::from_secs(60),
    );
    store.install_aggregator(AggregatorSpec::Flowtree(
        FlowtreeConfig::default().with_capacity(2048),
    ));
    for rec in flow_trace(1, 2_000.0, 60, 1.1) {
        store.ingest_flow(&"r".into(), &rec, rec.ts);
    }
    store.rotate_epoch(Timestamp::from_secs(60));
    let s = store.stats();
    println!(
        "C3 massive data rates          raw {:>10} B/epoch -> summary {:>8} B/epoch ({:.0}x reduction)",
        s.raw_bytes,
        s.exported_bytes,
        s.raw_bytes as f64 / s.exported_bytes.max(1) as f64
    );

    // C4: rapid local decisions — trigger latency in simulated time.
    let mut mstore = DataStore::new(
        "machine",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(10),
    );
    mstore.install_trigger(
        "safety",
        TriggerCondition::ScalarAbove {
            stream: "m/temp".into(),
            threshold: 85.0,
        },
        TimeDelta::ZERO,
    );
    let at = Timestamp::from_micros(5);
    let events = mstore.ingest_scalar(&"m/temp".into(), 90.0, at);
    println!(
        "C4 rapid local decisions       trigger fired {} after the reading ({} events)",
        events[0].at.saturating_since(at),
        events.len()
    );

    // C5: variability — heterogeneous aggregators in one store.
    println!(
        "C5 high data variability       one store hosts flowtree+bins+topflows+exact+series aggregators"
    );

    // C6: full knowledge — handled by merge (see tests/challenges.rs).
    println!(
        "C6 analytics need everything   merge() combines site summaries losslessly at the root level"
    );

    // C7: hierarchy — byte rates at the bottom level (factory numbers).
    let f = FactoryWorkload::new(12, TimeDelta::from_millis(100), 1);
    println!(
        "C7 hierarchical structure      12 machines x 3 channels @10 Hz = {} B/s raw at machine level",
        f.sensor_bytes_per_sec(16)
    );

    // C8 / C9: application diversity & unknown queries — see tests.
    println!("C8 varying app requirements    same summaries serve mitigation + planning apps");
    println!("C9 a-priori unknown queries    FlowQL executes over already-built summaries");
}

fn bench_ingest_paths(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("e1_challenges");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));

    // The C3 mechanism: aggregation ingest throughput.
    let trace = flow_trace(9, 1_000.0, 10, 1.1);
    group.bench_function("store_ingest_10k_flows", |b| {
        b.iter(|| {
            let mut store = DataStore::new(
                "router",
                StorageStrategy::RoundRobin {
                    budget_bytes: 8 << 20,
                },
                TimeDelta::from_secs(60),
            );
            store.install_aggregator(AggregatorSpec::Flowtree(
                FlowtreeConfig::default().with_capacity(2048),
            ));
            for rec in &trace {
                store.ingest_flow(&"r".into(), rec, rec.ts);
            }
            store
        });
    });

    // The C4 mechanism: trigger evaluation cost on the data path.
    let mut store = DataStore::new(
        "machine",
        StorageStrategy::RoundRobin {
            budget_bytes: 1 << 20,
        },
        TimeDelta::from_secs(10),
    );
    for i in 0..16 {
        store.install_trigger(
            "app",
            TriggerCondition::ScalarAbove {
                stream: format!("m/ch{i}").as_str().into(),
                threshold: 100.0,
            },
            TimeDelta::from_secs(1),
        );
    }
    group.bench_function("scalar_ingest_16_triggers", |b| {
        b.iter(|| store.ingest_scalar(&"m/ch3".into(), 50.0, Timestamp::ZERO));
    });
    group.finish();
}

criterion_group!(benches, bench_ingest_paths);
criterion_main!(benches);
