//! E9 — §V-B: the toy computing primitive (random-sampled time series)
//! measurably satisfies properties P1–P4.
//!
//! Prints estimate error and footprint vs sampling rate (P1/P3), a
//! combine check across two locations (P2), and the granularity
//! controller's trajectory under a budget squeeze (P4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use megastream_bench::rule;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_primitives::adaptive::GranularityController;
use megastream_primitives::aggregator::{Combinable, ComputingPrimitive, Granularity};
use megastream_primitives::sampling::SampledTimeSeries;
use megastream_workloads::factory::{FactoryWorkload, SensorChannel};

const N: u64 = 100_000;

fn series(seed: u64, rate: f64) -> SampledTimeSeries {
    let mut agg = SampledTimeSeries::new(seed, Granularity::new(rate));
    for i in 0..N {
        // A sine-modulated sensor-like signal.
        let v = 60.0 + 5.0 * ((i as f64) / 500.0).sin();
        agg.ingest(&v, Timestamp::from_micros(i * 10_000));
    }
    agg
}

fn window() -> TimeWindow {
    TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(1_000))
}

fn rate_sweep() {
    rule("E9 / §V-B — toy primitive: error & footprint vs sampling rate");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "rate", "points", "footprint B", "count err %", "mean err"
    );
    for rate in [1.0, 0.5, 0.1, 0.01, 0.001] {
        let agg = series(7, rate);
        let s = agg.snapshot(window());
        let est = s.estimated_count(window());
        let count_err = (est - N as f64).abs() / N as f64 * 100.0;
        let mean = s.estimated_mean(window()).unwrap_or(f64::NAN);
        let mean_err = (mean - 60.0).abs();
        println!(
            "{:>10.3} {:>10} {:>12} {:>12.2} {:>12.3}",
            rate,
            s.len(),
            agg.footprint_bytes(),
            count_err,
            mean_err
        );
    }
}

fn combine_check() {
    rule("E9 — P2: combining two locations' summaries (different rates)");
    let a = series(1, 0.2).snapshot(window());
    let b = series(2, 0.05).snapshot(window());
    let combined = a.clone().combined(&b);
    let est = combined.estimated_count(window());
    println!(
        "site A ({} pts @0.2) + site B ({} pts @0.05) -> combined estimate {:.0} of {} true ({:+.2} %)",
        a.len(),
        b.len(),
        est,
        2 * N,
        (est - 2.0 * N as f64) / (2.0 * N as f64) * 100.0
    );
}

fn adaptation_trajectory() {
    rule("E9 — P4: granularity controller under a budget squeeze");
    let mut ctl = GranularityController::new(Granularity::FULL);
    let mut workload = FactoryWorkload::new(1, TimeDelta::from_millis(10), 3);
    let mut agg = SampledTimeSeries::new(5, Granularity::FULL);
    let budget = 20_000usize;
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "round", "footprint B", "budget B", "rate"
    );
    for round in 1..=10u64 {
        for (ts, v) in workload.channel_series(
            0,
            SensorChannel::Temperature,
            Timestamp::from_secs(round * 20),
        ) {
            agg.ingest(&v, ts);
        }
        let footprint = agg.footprint_bytes();
        let g = ctl.update(footprint, budget, None);
        agg.set_granularity(g);
        println!(
            "{:>6} {:>12} {:>12} {:>12.4}",
            round,
            footprint,
            budget,
            g.value()
        );
        // Epoch rotation: the summary is exported, the live sample resets.
        agg.reset();
    }
    println!("(per-epoch sample size converges onto the budget; P3+P4 in one loop)");
}

fn bench_toy(c: &mut Criterion) {
    rate_sweep();
    combine_check();
    adaptation_trajectory();

    let mut group = c.benchmark_group("e9_toy_primitive");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for rate in [1.0, 0.1, 0.01] {
        group.bench_with_input(
            BenchmarkId::new("ingest_100k", format!("{rate}")),
            &rate,
            |b, &rate| {
                b.iter(|| series(9, rate).footprint_bytes());
            },
        );
    }
    let s1 = series(1, 0.1).snapshot(window());
    let s2 = series(2, 0.1).snapshot(window());
    group.bench_function("combine", |b| {
        b.iter(|| s1.clone().combined(&s2).len());
    });
    group.bench_function("query_exceeding", |b| {
        b.iter(|| s1.exceeding(window(), 63.0).count());
    });
    group.finish();
}

criterion_group!(benches, bench_toy);
criterion_main!(benches);
