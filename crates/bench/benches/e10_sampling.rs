//! E10 — §VI: Flowtree robustness under packet sampling.
//!
//! "Since the input data is often heavily sampled prior to ingestion, the
//! Flowtree does not provide exact summaries. Rather, it allows us to
//! distinguish heavy hitters from non-popular flows." The bench thins a
//! trace at sampling rates from 1:1 to 1:10 000 (the paper's quoted
//! production rate), scales the estimates back up, and reports how well
//! heavy prefixes and their ranking survive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use megastream_bench::{flow_trace, rule};
use megastream_flow::key::{FeatureSet, FlowKey};
use megastream_flow::record::FlowRecord;
use megastream_flow::score::ScoreKind;
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use megastream_primitives::exact::ExactFlowTable;
use megastream_workloads::netflow::sample_packets;

/// A heavy trace: 600 s at 1000 flows/s → enough packets that even 1:10K
/// sampling keeps signal for the top prefixes.
fn heavy_trace() -> Vec<FlowRecord> {
    flow_trace(1010, 1_000.0, 600, 1.2)
}

/// True score of every src /8, descending.
fn true_prefixes(exact: &ExactFlowTable) -> Vec<(u8, u64)> {
    let mut v: Vec<(u8, u64)> = (1..=255u8)
        .map(|octet| {
            let key = FlowKey::root().with_src_prefix(format!("{octet}.0.0.0/8").parse().unwrap());
            (octet, exact.query(&key).value())
        })
        .filter(|(_, s)| *s > 0)
        .collect();
    v.sort_by_key(|e| std::cmp::Reverse(e.1));
    v
}

fn report() {
    rule("E10 / §VI — Flowtree under packet sampling (1:1 … 1:10000)");
    let full = heavy_trace();
    let total_packets: u64 = full.iter().map(|r| r.packets).sum();
    let mut exact = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
    for r in &full {
        exact.observe(r);
    }
    let truth = true_prefixes(&exact);
    println!(
        "trace: {} records, {} packets, {} active src /8s; top /8 carries {:.1} %",
        full.len(),
        total_packets,
        truth.len(),
        truth[0].1 as f64 / total_packets as f64 * 100.0
    );
    println!(
        "{:>9} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "rate 1:N", "records", "top1 err %", "rank hits", "total err %", "nodes"
    );
    for rate in [1u64, 10, 100, 1_000, 10_000] {
        let sampled = if rate == 1 {
            full.clone()
        } else {
            sample_packets(full.clone(), rate, 99)
        };
        let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(4096));
        for r in &sampled {
            tree.observe(r);
        }
        // Scale estimates back up by the sampling rate.
        let est = |octet: u8| -> u64 {
            let key = FlowKey::root().with_src_prefix(format!("{octet}.0.0.0/8").parse().unwrap());
            tree.query(&key).scaled(rate, 1).value()
        };
        let top1_err =
            (est(truth[0].0) as f64 - truth[0].1 as f64).abs() / truth[0].1 as f64 * 100.0;
        // Does the heavy-prefix *ranking* survive sampling?
        let top_n = truth.len().min(3);
        let mut est_rank: Vec<(u8, u64)> = truth.iter().map(|(o, _)| (*o, est(*o))).collect();
        est_rank.sort_by_key(|e| std::cmp::Reverse(e.1));
        let top_true: std::collections::BTreeSet<u8> =
            truth.iter().take(top_n).map(|(o, _)| *o).collect();
        let top_est: std::collections::BTreeSet<u8> =
            est_rank.iter().take(top_n).map(|(o, _)| *o).collect();
        let rank_hits = top_true.intersection(&top_est).count();
        let total_est = tree.total().scaled(rate, 1).value();
        let total_err =
            (total_est as f64 - total_packets as f64).abs() / total_packets as f64 * 100.0;
        println!(
            "{:>9} {:>10} {:>12.2} {:>11}/{top_n} {:>12.2} {:>10}",
            rate,
            sampled.len(),
            top1_err,
            rank_hits,
            total_err,
            tree.len()
        );
    }
    println!("(the heavy-hitter *ranking* survives 1:10000 even as point estimates blur)");
}

fn bench_sampling(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("e10_sampling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    let full = heavy_trace();
    for rate in [10u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("thin_trace", rate), &rate, |b, &rate| {
            b.iter(|| sample_packets(full.clone(), rate, 5).len());
        });
    }
    let sampled = sample_packets(full, 10_000, 5);
    group.bench_function("build_tree_from_sampled", |b| {
        b.iter(|| {
            let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(4096));
            for r in &sampled {
                tree.observe(r);
            }
            tree.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
