//! Shared workload builders for the experiment benches.
//!
//! One bench target per table/figure of the paper lives in `benches/`; see
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
//! results. Each bench first prints its experiment's rows (the "table" or
//! "figure series"), then runs Criterion micro-measurements of the hot
//! operations involved.

use megastream_flow::record::FlowRecord;
use megastream_flow::time::TimeDelta;
use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

/// A deterministic flow trace with the given seed, rate, duration and skew.
pub fn flow_trace(seed: u64, flows_per_sec: f64, secs: u64, skew: f64) -> Vec<FlowRecord> {
    FlowTraceGenerator::new(FlowTraceConfig {
        seed,
        flows_per_sec,
        duration: TimeDelta::from_secs(secs),
        host_skew: skew,
        ..Default::default()
    })
    .collect()
}

/// Standard skews swept by the accuracy experiments.
pub const SKEWS: [f64; 3] = [0.8, 1.1, 1.4];

/// Prints a rule line for the experiment reports.
pub fn rule(title: &str) {
    println!("\n==== {title} ====");
}
