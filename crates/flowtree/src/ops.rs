//! Structural operators: Merge, Diff, and the computing-primitive contract.
//!
//! Merge and Compress "enable us to compute efficient summaries across time
//! and/or space. In effect, they allow us to add the time and location as
//! features" (§VI): given trees `A1` (time `t1` / location `l1`) and `A2`
//! (`t2` / `l2`), `compress(A1 ∪ A2)` summarizes the joined period or both
//! locations.

use megastream_flow::record::FlowRecord;
use megastream_flow::time::{TimeWindow, Timestamp};
use megastream_primitives::aggregator::{
    Combinable, ComputingPrimitive, Granularity, PrimitiveDescription,
};

use crate::tree::Flowtree;

impl Flowtree {
    /// **Merge** (Table II): joins another Flowtree into this one.
    ///
    /// Scores of keys present in both trees add; keys present only in
    /// `other` are inserted (attached under their deepest materialized
    /// ancestor, mirroring `other`'s compression state). The result is
    /// compressed back to this tree's capacity if necessary.
    ///
    /// # Panics
    ///
    /// Panics if the two trees are not
    /// [`compatible`](crate::FlowtreeConfig::compatible_with) (different
    /// schema, feature projection, or score measure) — such summaries do not
    /// describe the same hierarchy and must not be combined.
    pub fn merge(&mut self, other: &Flowtree) {
        assert!(
            self.config().compatible_with(other.config()),
            "cannot merge flowtrees with incompatible configurations"
        );
        // The budget must cover the merge transient (both key sets live at
        // once); compression at the end restores it.
        self.reserve_nodes(other.len());
        // `other`'s canonical pre-order lists every ancestor before its
        // descendants, so each inserted key finds its true deepest
        // materialized ancestor without any re-sorting.
        for node in other.flat_nodes() {
            if !node.own.is_zero() {
                self.insert_exact(&node.key, node.own);
            }
        }
        *self.records_mut() += other.records();
        self.maybe_compress();
    }

    /// **Diff** (Table II): subtracts `other`'s per-key scores from this
    /// tree ("subtract the popularity scores from flows appearing in one
    /// tree from the other"). Subtraction saturates at zero; keys absent
    /// from this tree are ignored; leaves whose score reaches zero are
    /// pruned.
    ///
    /// # Panics
    ///
    /// Panics if the trees are not compatible.
    pub fn diff(&mut self, other: &Flowtree) {
        assert!(
            self.config().compatible_with(other.config()),
            "cannot diff flowtrees with incompatible configurations"
        );
        let ids: Vec<_> = other.live_ids().collect();
        for id in ids {
            let (key, own) = other.node_ref(id);
            if own.is_zero() {
                continue;
            }
            if let Some(my_id) = self.id_of(&key) {
                self.remove_own(my_id, own);
            }
        }
        self.prune_zero_leaves();
    }

    /// Removes leaves with zero score repeatedly (a leaf whose removal
    /// exposes a zero-score parent removes that parent too).
    pub(crate) fn prune_zero_leaves(&mut self) {
        loop {
            let victims: Vec<_> = self
                .live_ids()
                .filter(|&id| {
                    id != self.root_id()
                        && self.node_ref_children_empty(id)
                        && self.node_ref(id).1.is_zero()
                })
                .collect();
            if victims.is_empty() {
                return;
            }
            for id in victims {
                self.detach_and_free(id);
            }
        }
    }
}

impl Combinable for Flowtree {
    fn combine(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl ComputingPrimitive for Flowtree {
    type Item = FlowRecord;
    type Summary = Flowtree;

    fn describe(&self) -> PrimitiveDescription {
        PrimitiveDescription {
            name: "flowtree",
            // P5: aggregation follows the subnet structure of the domain.
            domain_aware: true,
            // Queries may address any generalization level at any time.
            on_demand_granularity: true,
        }
    }

    fn ingest(&mut self, item: &FlowRecord, _ts: Timestamp) {
        self.observe(item);
    }

    fn snapshot(&self, _window: TimeWindow) -> Flowtree {
        self.clone()
    }

    fn reset(&mut self) {
        self.clear();
    }

    fn set_granularity(&mut self, granularity: Granularity) {
        let base = self.base_capacity();
        let new_capacity = ((base as f64) * granularity.value()).round().max(1.0) as usize;
        self.set_capacity(new_capacity);
    }

    fn granularity(&self) -> Granularity {
        Granularity::new(self.config().capacity as f64 / self.base_capacity() as f64)
    }

    fn footprint_bytes(&self) -> usize {
        self.wire_size()
    }

    fn deep_bytes(&self) -> usize {
        Flowtree::deep_bytes(self)
    }

    fn node_count(&self) -> usize {
        Flowtree::node_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FlowtreeConfig;
    use megastream_flow::key::FlowKey;
    use megastream_flow::score::{Popularity, ScoreKind};
    use proptest::prelude::*;

    fn rec(src: &str, dst: &str, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 4242)
            .dst(dst.parse().unwrap(), 80)
            .packets(packets)
            .build()
    }

    fn tree(cap: usize) -> Flowtree {
        Flowtree::new(FlowtreeConfig::default().with_capacity(cap))
    }

    #[test]
    fn merge_adds_scores() {
        let mut a = tree(1024);
        a.observe(&rec("10.0.0.1", "1.1.1.1", 5));
        let mut b = tree(1024);
        b.observe(&rec("10.0.0.1", "1.1.1.1", 3));
        b.observe(&rec("10.0.0.2", "1.1.1.1", 4));
        a.merge(&b);
        assert_eq!(a.total().value(), 12);
        assert_eq!(a.records(), 3);
        let k1 = FlowKey::from_record(&rec("10.0.0.1", "1.1.1.1", 0));
        assert_eq!(a.get(&k1).unwrap().own_score.value(), 8);
        a.check_invariants();
    }

    #[test]
    fn merge_is_commutative_on_summaries() {
        let mut a1 = tree(1024);
        let mut b1 = tree(1024);
        for i in 0..20u32 {
            a1.observe(&rec(&format!("10.0.{i}.1"), "1.1.1.1", i as u64 + 1));
            b1.observe(&rec(&format!("10.1.{i}.1"), "2.2.2.2", i as u64 + 1));
        }
        let mut ab = a1.clone();
        ab.merge(&b1);
        let mut ba = b1.clone();
        ba.merge(&a1);
        // Same mass at the same keys in both directions (zero-score
        // structure nodes may differ — merge only transfers mass).
        assert_eq!(ab.total(), ba.total());
        for v in ab.nodes().into_iter().filter(|v| !v.own_score.is_zero()) {
            assert_eq!(
                ba.get(&v.key).map(|n| n.own_score),
                Some(v.own_score),
                "mismatch at {}",
                v.key
            );
        }
        ab.check_invariants();
        ba.check_invariants();
    }

    #[test]
    fn merge_respects_capacity() {
        let mut a = tree(32);
        let mut b = tree(1024);
        for i in 0..100u32 {
            b.observe(&rec(&format!("10.{}.{}.1", i % 10, i), "1.1.1.1", 1));
        }
        a.merge(&b);
        assert!(a.len() <= 32);
        assert_eq!(a.total().value(), 100);
        a.check_invariants();
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_incompatible() {
        let mut a = tree(8);
        let b = Flowtree::new(FlowtreeConfig::default().with_score_kind(ScoreKind::Bytes));
        a.merge(&b);
    }

    #[test]
    fn diff_subtracts_and_prunes() {
        let mut a = tree(1024);
        a.observe(&rec("10.0.0.1", "1.1.1.1", 5));
        a.observe(&rec("10.0.0.2", "1.1.1.1", 7));
        let mut b = tree(1024);
        b.observe(&rec("10.0.0.1", "1.1.1.1", 5));
        let len_before = a.len();
        a.diff(&b);
        // 10.0.0.1's leaf hit zero and was pruned; 10.0.0.2 untouched.
        let k1 = FlowKey::from_record(&rec("10.0.0.1", "1.1.1.1", 0));
        let k2 = FlowKey::from_record(&rec("10.0.0.2", "1.1.1.1", 0));
        assert!(a.get(&k1).is_none());
        assert_eq!(a.get(&k2).unwrap().own_score.value(), 7);
        assert!(a.len() < len_before);
        assert_eq!(a.total().value(), 7);
        a.check_invariants();
    }

    #[test]
    fn diff_saturates_at_zero() {
        let mut a = tree(1024);
        a.observe(&rec("10.0.0.1", "1.1.1.1", 3));
        let mut b = tree(1024);
        b.observe(&rec("10.0.0.1", "1.1.1.1", 100));
        a.diff(&b);
        assert_eq!(a.total(), Popularity::ZERO);
        a.check_invariants();
    }

    #[test]
    fn diff_ignores_absent_keys() {
        let mut a = tree(1024);
        a.observe(&rec("10.0.0.1", "1.1.1.1", 3));
        let mut b = tree(1024);
        b.observe(&rec("99.99.99.99", "1.1.1.1", 100));
        a.diff(&b);
        assert_eq!(a.total().value(), 3);
    }

    #[test]
    fn self_diff_empties_tree() {
        let mut a = tree(1024);
        for i in 0..10u32 {
            a.observe(&rec(&format!("10.0.0.{i}"), "1.1.1.1", i as u64 + 1));
        }
        let b = a.clone();
        a.diff(&b);
        assert_eq!(a.total(), Popularity::ZERO);
        assert_eq!(a.len(), 1, "everything but the root pruned");
        a.check_invariants();
    }

    #[test]
    fn paper_composition_merge_then_compress() {
        // A12 = compress(A1 ∪ A2) — the §VI composition.
        let mut a1 = tree(4096);
        let mut a2 = tree(4096);
        for i in 0..200u32 {
            a1.observe(&rec(&format!("10.0.{}.1", i % 50), "1.1.1.1", 2));
            a2.observe(&rec(&format!("10.1.{}.1", i % 50), "1.1.1.1", 3));
        }
        let mut a12 = a1.clone();
        a12.merge(&a2);
        a12.compress_to(64);
        assert!(a12.len() <= 64);
        assert_eq!(a12.total().value(), 200 * 2 + 200 * 3);
        // Region queries still answered (prefix aggregate preserved).
        let left = FlowKey::root().with_src_prefix("10.0.0.0/16".parse().unwrap());
        let right = FlowKey::root().with_src_prefix("10.1.0.0/16".parse().unwrap());
        assert_eq!(a12.query(&left).value() + a12.query(&right).value(), 1000);
        a12.check_invariants();
    }

    #[test]
    fn primitive_contract() {
        let mut t = tree(100);
        assert!(t.describe().domain_aware);
        t.ingest(&rec("10.0.0.1", "1.1.1.1", 5), Timestamp::ZERO);
        assert_eq!(t.total().value(), 5);
        let snap = t.snapshot(TimeWindow::default());
        assert_eq!(snap.total().value(), 5);
        t.set_granularity(Granularity::new(0.1));
        assert_eq!(t.config().capacity, 10);
        assert!((ComputingPrimitive::granularity(&t).value() - 0.1).abs() < 1e-9);
        t.reset();
        assert!(t.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Merge conserves total mass and invariants for arbitrary pairs.
        #[test]
        fn prop_merge_mass_conserved(
            fa in proptest::collection::vec((0u8..6, 1u64..30), 1..60),
            fb in proptest::collection::vec((0u8..6, 1u64..30), 1..60),
            cap in 8usize..128,
        ) {
            let mut a = tree(cap);
            let mut b = tree(cap);
            for (i, p) in &fa {
                a.observe(&rec(&format!("10.0.{i}.1"), "1.1.1.1", *p));
            }
            for (i, p) in &fb {
                b.observe(&rec(&format!("10.{i}.0.2"), "2.2.2.2", *p));
            }
            let expected = a.total() + b.total();
            a.merge(&b);
            prop_assert_eq!(a.total(), expected);
            a.check_invariants();
        }

        /// diff(merge(a, b), b) never leaves more mass than a had.
        #[test]
        fn prop_merge_diff_roundtrip_bounded(
            fa in proptest::collection::vec((0u8..4, 1u64..20), 1..40),
            fb in proptest::collection::vec((0u8..4, 1u64..20), 1..40),
        ) {
            let mut a = tree(4096);
            let mut b = tree(4096);
            for (i, p) in &fa {
                a.observe(&rec(&format!("10.0.{i}.1"), "1.1.1.1", *p));
            }
            for (i, p) in &fb {
                b.observe(&rec(&format!("10.0.{i}.1"), "1.1.1.1", *p));
            }
            let orig = a.total();
            let mut ab = a.clone();
            ab.merge(&b);
            ab.diff(&b);
            // With ample capacity (no compression), diff exactly undoes merge.
            prop_assert_eq!(ab.total(), orig);
            ab.check_invariants();
        }
    }
}
