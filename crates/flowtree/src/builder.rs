//! Flowtree configuration.

use megastream_flow::key::FeatureSet;
use megastream_flow::mask::GeneralizationSchema;
use megastream_flow::score::ScoreKind;

/// Configuration of a [`Flowtree`](crate::Flowtree).
///
/// "Parameters at each data store include feature sets as well as time and
/// location granularity" (§VI) — the feature set and generalization schema
/// live here; time/location tagging is applied by the data store when it
/// snapshots summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowtreeConfig {
    /// The generalization schema inducing the flow hierarchy (property P5:
    /// aggregation follows the subnet structure of the data domain).
    pub schema: GeneralizationSchema,
    /// Features the tree distinguishes; all others are wildcarded on ingest.
    pub features: FeatureSet,
    /// The popularity measure nodes accumulate.
    pub score_kind: ScoreKind,
    /// Maximum number of nodes before compression kicks in.
    pub capacity: usize,
    /// After exceeding `capacity`, compress down to
    /// `capacity × compact_ratio` nodes (hysteresis so compression is
    /// amortized rather than per-insert).
    pub compact_ratio: f64,
}

impl FlowtreeConfig {
    /// Sets the node capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "flowtree capacity must be at least 1");
        self.capacity = capacity;
        self
    }

    /// Sets the feature projection.
    #[must_use]
    pub fn with_features(mut self, features: FeatureSet) -> Self {
        self.features = features;
        self
    }

    /// Sets the popularity measure.
    #[must_use]
    pub fn with_score_kind(mut self, score_kind: ScoreKind) -> Self {
        self.score_kind = score_kind;
        self
    }

    /// Sets the generalization schema.
    #[must_use]
    pub fn with_schema(mut self, schema: GeneralizationSchema) -> Self {
        self.schema = schema;
        self
    }

    /// Sets the compression hysteresis ratio (clamped into `(0, 1]`).
    #[must_use]
    pub fn with_compact_ratio(mut self, ratio: f64) -> Self {
        self.compact_ratio = if ratio.is_finite() {
            ratio.clamp(0.1, 1.0)
        } else {
            0.75
        };
        self
    }

    /// The enforced ceiling on live arena nodes: the capacity plus
    /// headroom for one in-flight observation chain (compression runs
    /// *after* a root-to-leaf chain materializes, so a full chain of
    /// `max_depth` new nodes above capacity must fit). Every allocation in
    /// the tree asserts against this figure — it replaces the previous
    /// ad-hoc "capacity plus whatever compression tolerates" slack.
    pub fn node_budget(&self) -> usize {
        self.capacity + self.schema.max_depth() + 2
    }

    /// The node count compression targets.
    pub(crate) fn compact_target(&self) -> usize {
        ((self.capacity as f64) * self.compact_ratio)
            .floor()
            .max(1.0) as usize
    }

    /// Whether two configurations produce combinable trees (same hierarchy,
    /// same feature projection, same measure).
    pub fn compatible_with(&self, other: &FlowtreeConfig) -> bool {
        self.schema == other.schema
            && self.features == other.features
            && self.score_kind == other.score_kind
    }
}

impl Default for FlowtreeConfig {
    fn default() -> Self {
        FlowtreeConfig {
            schema: GeneralizationSchema::network_default(),
            features: FeatureSet::FIVE_TUPLE,
            score_kind: ScoreKind::Packets,
            capacity: 4096,
            compact_ratio: 0.75,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = FlowtreeConfig::default()
            .with_capacity(100)
            .with_score_kind(ScoreKind::Bytes)
            .with_features(FeatureSet::SRC_DST_IP)
            .with_compact_ratio(0.5);
        assert_eq!(cfg.capacity, 100);
        assert_eq!(cfg.score_kind, ScoreKind::Bytes);
        assert_eq!(cfg.compact_target(), 50);
    }

    #[test]
    fn compact_ratio_clamped() {
        assert_eq!(
            FlowtreeConfig::default()
                .with_compact_ratio(5.0)
                .compact_ratio,
            1.0
        );
        assert_eq!(
            FlowtreeConfig::default()
                .with_compact_ratio(0.0)
                .compact_ratio,
            0.1
        );
        assert_eq!(
            FlowtreeConfig::default()
                .with_compact_ratio(f64::NAN)
                .compact_ratio,
            0.75
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = FlowtreeConfig::default().with_capacity(0);
    }

    #[test]
    fn compatibility() {
        let a = FlowtreeConfig::default();
        let b = FlowtreeConfig::default().with_capacity(17);
        assert!(a.compatible_with(&b)); // capacity does not matter
        let c = FlowtreeConfig::default().with_score_kind(ScoreKind::Bytes);
        assert!(!a.compatible_with(&c));
    }
}
