//! The index-based node arena backing [`Flowtree`](crate::Flowtree).
//!
//! Nodes live in one contiguous `Vec<Slot>` addressed by [`NodeId`] (a
//! `u32` index newtype). Parent and child links are ids, children are an
//! intrusive sibling list (`first_child` / `next_sibling`) kept sorted by
//! key so the layout — and therefore the serialized pre-order frame — is a
//! canonical function of the tree's contents, never of insertion history.
//! Freed slots are threaded into an explicit free list and reused before
//! the arena grows.
//!
//! The arena carries an identity `token`, minted from a process-global
//! counter: cloning the arena (copy-on-write splits) mints a fresh token,
//! while `Arc`-sharing preserves it. Two Flowtrees report the same token
//! exactly when they share storage, which is what lets the accounting
//! plane count a deduplicated arena once.
//!
//! `NodeId`'s inner index is private to this module: all slot access goes
//! through the arena's methods (or [`IdMap`]), so no `as usize` cast of a
//! node id can appear outside this file — the `arena-ids` megalint pass
//! is the lexical backstop for the same rule.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::ops::{Index, IndexMut};
use std::sync::atomic::{AtomicU64, Ordering};

use megastream_flow::key::FlowKey;
use megastream_flow::score::Popularity;

/// Process-global arena identity source. Relaxed is enough: tokens only
/// need to be unique, never ordered.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

fn fresh_token() -> u64 {
    NEXT_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// Index of a node in the arena. Copyable, comparable, never a pointer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct NodeId(u32);

impl NodeId {
    /// The root node: always slot 0, allocated at arena construction.
    pub(crate) const ROOT: NodeId = NodeId(0);
    /// Sentinel for "no node" in parent/child/sibling links.
    pub(crate) const NONE: NodeId = NodeId(u32::MAX);
    /// Sentinel stored in a freed slot's `parent` link, distinguishing a
    /// free slot from a live root-like slot.
    const FREE: NodeId = NodeId(u32::MAX - 1);

    pub(crate) fn is_none(self) -> bool {
        self == NodeId::NONE
    }

    pub(crate) fn is_some(self) -> bool {
        self != NodeId::NONE
    }

    /// The only id → index conversion in the crate.
    fn idx(self) -> usize {
        self.0 as usize
    }

    fn from_idx(i: usize) -> NodeId {
        debug_assert!(i < NodeId::FREE.0 as usize, "arena exceeds u32 id space");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "NodeId(NONE)")
        } else if *self == NodeId::FREE {
            write!(f, "NodeId(FREE)")
        } else {
            write!(f, "NodeId({})", self.0)
        }
    }
}

/// One arena slot: a node's payload plus its structural links. `Copy`, no
/// heap data — the whole arena is a flat memcpy-able region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Slot {
    pub(crate) key: FlowKey,
    /// Score attributed directly to this node: traffic observed at exactly
    /// this key plus mass folded up from compressed descendants.
    pub(crate) own: Popularity,
    /// Parent id; `NONE` for the root, `FREE` for a freed slot.
    pub(crate) parent: NodeId,
    pub(crate) first_child: NodeId,
    /// Next sibling under the same parent for a live node; next free slot
    /// when this slot is on the free list.
    pub(crate) next_sibling: NodeId,
}

/// The contiguous node store plus the key index and free list.
#[derive(Debug)]
pub(crate) struct Arena {
    slots: Vec<Slot>,
    free_head: NodeId,
    free_len: usize,
    len: usize,
    token: u64,
    /// Key → id lookup. Never iterated (lookup/insert/remove only), so the
    /// nondeterministic bucket order can't leak into results.
    index: HashMap<FlowKey, NodeId>,
}

impl Clone for Arena {
    /// A deep copy is a *new* storage identity: it mints a fresh token.
    /// (`Arc::clone` of a shared arena preserves the token — that is the
    /// O(1) snapshot path.)
    fn clone(&self) -> Self {
        Arena {
            slots: self.slots.clone(),
            free_head: self.free_head,
            free_len: self.free_len,
            len: self.len,
            token: fresh_token(),
            index: self.index.clone(),
        }
    }
}

impl Arena {
    /// Creates an arena holding only the root node.
    pub(crate) fn new() -> Self {
        let root = Slot {
            key: FlowKey::root(),
            own: Popularity::ZERO,
            parent: NodeId::NONE,
            first_child: NodeId::NONE,
            next_sibling: NodeId::NONE,
        };
        let mut index = HashMap::new();
        index.insert(FlowKey::root(), NodeId::ROOT);
        Arena {
            slots: vec![root],
            free_head: NodeId::NONE,
            free_len: 0,
            len: 1,
            token: fresh_token(),
            index,
        }
    }

    /// Number of live nodes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Number of allocated slots (live + free) — the arena's real memory
    /// extent in nodes.
    pub(crate) fn slots_len(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently on the free list.
    pub(crate) fn free_len(&self) -> usize {
        self.free_len
    }

    /// The storage-identity token (see module docs).
    pub(crate) fn token(&self) -> u64 {
        self.token
    }

    pub(crate) fn slot(&self, id: NodeId) -> &Slot {
        let s = &self.slots[id.idx()];
        debug_assert!(s.parent != NodeId::FREE, "dangling node id {id:?}");
        s
    }

    pub(crate) fn slot_mut(&mut self, id: NodeId) -> &mut Slot {
        let s = &mut self.slots[id.idx()];
        debug_assert!(s.parent != NodeId::FREE, "dangling node id {id:?}");
        s
    }

    fn is_free(&self, id: NodeId) -> bool {
        self.slots[id.idx()].parent == NodeId::FREE
    }

    /// Id of `key`'s node, if materialized. `key` must already be
    /// normalized and projected by the caller.
    pub(crate) fn lookup(&self, key: &FlowKey) -> Option<NodeId> {
        self.index.get(key).copied()
    }

    /// Allocates a detached slot for `key` (no parent/child links yet),
    /// reusing the free list before growing. The caller links it with
    /// [`Arena::link_child`].
    pub(crate) fn alloc(&mut self, key: FlowKey) -> NodeId {
        let slot = Slot {
            key,
            own: Popularity::ZERO,
            parent: NodeId::NONE,
            first_child: NodeId::NONE,
            next_sibling: NodeId::NONE,
        };
        let id = if self.free_head.is_some() {
            let id = self.free_head;
            self.free_head = self.slots[id.idx()].next_sibling;
            self.free_len -= 1;
            self.slots[id.idx()] = slot;
            id
        } else {
            self.slots.push(slot);
            NodeId::from_idx(self.slots.len() - 1)
        };
        self.index.insert(key, id);
        self.len += 1;
        id
    }

    /// Unlinks a childless non-root node from its parent and threads the
    /// slot onto the free list. The key is removed from the index.
    pub(crate) fn free(&mut self, id: NodeId) {
        debug_assert!(id != NodeId::ROOT, "cannot free the root");
        debug_assert!(
            self.slot(id).first_child.is_none(),
            "cannot free a node with children"
        );
        let parent = self.slot(id).parent;
        if parent.is_some() {
            self.unlink_child(parent, id);
        }
        let key = self.slots[id.idx()].key;
        if let Entry::Occupied(e) = self.index.entry(key) {
            if *e.get() == id {
                e.remove();
            }
        }
        let free_head = self.free_head;
        let s = &mut self.slots[id.idx()];
        s.parent = NodeId::FREE;
        s.first_child = NodeId::NONE;
        s.next_sibling = free_head;
        self.free_head = id;
        self.free_len += 1;
        self.len -= 1;
    }

    /// Inserts `child` into `parent`'s sibling list, keeping the list
    /// sorted by key (canonical layout) and setting the back link.
    pub(crate) fn link_child(&mut self, parent: NodeId, child: NodeId) {
        let key = self.slot(child).key;
        let first = self.slot(parent).first_child;
        if first.is_none() || self.slot(first).key > key {
            self.slot_mut(child).next_sibling = first;
            self.slot_mut(parent).first_child = child;
        } else {
            let mut cur = first;
            loop {
                let next = self.slot(cur).next_sibling;
                if next.is_none() || self.slot(next).key > key {
                    break;
                }
                cur = next;
            }
            let next = self.slot(cur).next_sibling;
            self.slot_mut(child).next_sibling = next;
            self.slot_mut(cur).next_sibling = child;
        }
        self.slot_mut(child).parent = parent;
    }

    /// Splices `child` out of `parent`'s sibling list. The child's parent
    /// link is left for the caller to overwrite (re-parent or free).
    pub(crate) fn unlink_child(&mut self, parent: NodeId, child: NodeId) {
        let first = self.slot(parent).first_child;
        if first == child {
            let next = self.slot(child).next_sibling;
            self.slot_mut(parent).first_child = next;
        } else {
            let mut cur = first;
            while cur.is_some() && self.slot(cur).next_sibling != child {
                cur = self.slot(cur).next_sibling;
            }
            debug_assert!(cur.is_some(), "child not on parent's sibling list");
            if cur.is_some() {
                let next = self.slot(child).next_sibling;
                self.slot_mut(cur).next_sibling = next;
            }
        }
        self.slot_mut(child).next_sibling = NodeId::NONE;
    }

    /// Whether the node has at least one child.
    pub(crate) fn has_children(&self, id: NodeId) -> bool {
        self.slot(id).first_child.is_some()
    }

    /// Iterator over a node's children in key order.
    pub(crate) fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            arena: self,
            cur: self.slot(id).first_child,
        }
    }

    /// Iterator over all live node ids in slot order.
    pub(crate) fn live_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.slots.len())
            .map(NodeId::from_idx)
            .filter(move |&id| !self.is_free(id))
    }

    /// Verifies the arena's own structural invariants (free-list and
    /// sibling-list integrity); the semantic tree invariants live in
    /// [`Flowtree::check_invariants`](crate::Flowtree::check_invariants).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub(crate) fn check(&self) {
        // Free-list walk: every slot on it is marked free, no cycles, and
        // the length matches the free counter.
        let mut walked = 0usize;
        let mut cur = self.free_head;
        while cur.is_some() {
            assert!(
                self.slots[cur.idx()].parent == NodeId::FREE,
                "free-list entry {cur:?} is not marked free"
            );
            walked += 1;
            assert!(
                walked <= self.slots.len(),
                "free list longer than the arena (cycle?)"
            );
            cur = self.slots[cur.idx()].next_sibling;
        }
        assert_eq!(walked, self.free_len, "free-list length out of sync");
        assert_eq!(
            self.len + self.free_len,
            self.slots.len(),
            "live + free must cover every slot"
        );
        // Sibling lists are sorted by key and back links agree.
        for id in self.live_ids() {
            let mut prev: Option<FlowKey> = None;
            for c in self.children(id) {
                assert_eq!(self.slot(c).parent, id, "child {c:?} has wrong parent");
                let key = self.slot(c).key;
                if let Some(p) = prev {
                    assert!(p < key, "sibling list of {id:?} not sorted by key");
                }
                prev = Some(key);
            }
        }
        assert_eq!(self.index.len(), self.len, "index size mismatch");
    }
}

/// Key-ordered child iterator.
pub(crate) struct Children<'a> {
    arena: &'a Arena,
    cur: NodeId,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.cur.is_none() {
            return None;
        }
        let id = self.cur;
        self.cur = self.arena.slot(id).next_sibling;
        Some(id)
    }
}

/// A dense per-slot side table addressed by [`NodeId`] — the only way to
/// index auxiliary data by node id outside this module.
pub(crate) struct IdMap<T> {
    data: Vec<T>,
}

impl<T: Clone> IdMap<T> {
    pub(crate) fn new(arena: &Arena, fill: T) -> Self {
        IdMap {
            data: vec![fill; arena.slots_len()],
        }
    }
}

impl<T> Index<NodeId> for IdMap<T> {
    type Output = T;

    fn index(&self, id: NodeId) -> &T {
        &self.data[id.idx()]
    }
}

impl<T> IndexMut<NodeId> for IdMap<T> {
    fn index_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.data[id.idx()]
    }
}
