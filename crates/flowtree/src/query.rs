//! Query operators: Query, Drilldown, Top-k, Above-x, HHH (Table II).

use megastream_flow::key::{Feature, FlowKey};
use megastream_flow::score::Popularity;

use crate::tree::Flowtree;

/// One row of a [`Flowtree::drilldown`] result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrilldownEntry {
    /// The child's generalized flow key.
    pub key: FlowKey,
    /// The child's popularity (subtree) score.
    pub score: Popularity,
    /// Whether the child is a leaf (no further drilldown possible).
    pub is_leaf: bool,
}

/// One hierarchical heavy hitter reported by [`Flowtree::hhh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeHhhItem {
    /// The (generalized) flow key.
    pub key: FlowKey,
    /// Total (subtree) score under this key.
    pub score: Popularity,
    /// Score after discounting descendants already reported.
    pub discounted: Popularity,
}

/// Whether two keys can share traffic: on every feature, one side's mask
/// must contain the other's. (Per feature, masked values are prefixes, so
/// two fields are either disjoint or nested.)
fn overlaps(a: &FlowKey, b: &FlowKey) -> bool {
    Feature::ALL.into_iter().all(|f| {
        let (fa, fb) = (a.field(f), b.field(f));
        fa.contains(fb) || fb.contains(fa)
    })
}

impl Flowtree {
    /// **Query** (Table II): the popularity score of a single (possibly
    /// generalized) flow.
    ///
    /// Returns the total score of all materialized nodes contained in
    /// `key`. Because compression only ever folds a node's mass into an
    /// *ancestor*, mass attributed below `key` can only have moved to nodes
    /// that either are still inside `key` or strictly contain it — so the
    /// estimate **never overestimates** the true score and is exact while
    /// the relevant subtree has not been compressed away.
    pub fn query(&self, key: &FlowKey) -> Popularity {
        let mut total = Popularity::ZERO;
        let mut stack = vec![self.root_id()];
        while let Some(id) = stack.pop() {
            let node_key = self.node_ref(id).0;
            if key.contains(&node_key) {
                total += self.subtree_score_of(id);
            } else if overlaps(key, &node_key) {
                for c in self.children_of(id) {
                    stack.push(c);
                }
            }
        }
        total
    }

    /// **Drilldown** (Table II): the flows one level below `key` with their
    /// popularity scores, highest first.
    ///
    /// If `key` is materialized, these are its children. Otherwise (`key`
    /// was compressed away, or is a lattice point no observation chain
    /// passes through, e.g. a bare `src=/24` query under a priority schema)
    /// the *maximal materialized nodes strictly contained in `key`* are
    /// returned, which is what a drilldown can still distinguish.
    pub fn drilldown(&self, key: &FlowKey) -> Vec<DrilldownEntry> {
        let ids = match self.id_of(key) {
            Some(id) => self.children_of(id),
            None => {
                // DFS from the root collecting maximal contained nodes.
                let mut found = Vec::new();
                let mut stack = vec![self.root_id()];
                while let Some(id) = stack.pop() {
                    let node_key = self.node_ref(id).0;
                    if key.contains(&node_key) && *key != node_key {
                        found.push(id);
                    } else if overlaps(key, &node_key) {
                        stack.extend(self.children_of(id));
                    }
                }
                found
            }
        };
        let mut out: Vec<DrilldownEntry> = ids
            .into_iter()
            .map(|c| DrilldownEntry {
                key: self.node_ref(c).0,
                score: self.subtree_score_of(c),
                is_leaf: self.node_ref_children_empty(c),
            })
            .collect();
        out.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.key.cmp(&b.key)));
        out
    }

    /// **Top-k** (Table II): the `k` flows with the highest popularity
    /// score, excluding the root (whose score is trivially the total).
    pub fn top_k(&self, k: usize) -> Vec<(FlowKey, Popularity)> {
        self.top_k_where(k, |_| true)
    }

    /// Top-k restricted to keys matching `pred` — e.g. only exact 5-tuples,
    /// or only /24 source prefixes.
    pub fn top_k_where(
        &self,
        k: usize,
        pred: impl Fn(&FlowKey) -> bool,
    ) -> Vec<(FlowKey, Popularity)> {
        let scores = self.subtree_scores();
        let mut entries: Vec<(FlowKey, Popularity)> = self
            .live_ids()
            .filter(|&id| id != self.root_id())
            .map(|id| (self.node_ref(id).0, scores[id]))
            .filter(|(key, _)| pred(key))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// **Above-x** (Table II): all flows with a popularity score above `x`,
    /// highest first (root excluded).
    pub fn above_x(&self, x: Popularity) -> Vec<(FlowKey, Popularity)> {
        let scores = self.subtree_scores();
        let mut entries: Vec<(FlowKey, Popularity)> = self
            .live_ids()
            .filter(|&id| id != self.root_id())
            .map(|id| (self.node_ref(id).0, scores[id]))
            .filter(|(_, s)| *s > x)
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries
    }

    /// **HHH** (Table II): "all flows across the Flowtree that have a
    /// substantial popularity score" — discounted hierarchical heavy
    /// hitters. A node is reported iff its subtree score, after subtracting
    /// the discounted scores of already-reported descendants, is at least
    /// `threshold`. Results are deepest-first.
    pub fn hhh(&self, threshold: Popularity) -> Vec<TreeHhhItem> {
        if threshold.is_zero() {
            return Vec::new();
        }
        let scores = self.subtree_scores();
        let mut ids: Vec<_> = self.live_ids().collect();
        ids.sort_by(|&a, &b| {
            let (ka, kb) = (self.node_ref(a).0, self.node_ref(b).0);
            let schema = &self.config().schema;
            schema
                .depth(&kb)
                .cmp(&schema.depth(&ka))
                .then_with(|| ka.cmp(&kb))
        });
        let mut reported: Vec<TreeHhhItem> = Vec::new();
        for id in ids {
            let key = self.node_ref(id).0;
            let total = scores[id];
            let discounted = reported
                .iter()
                .filter(|item| key.contains(&item.key) && key != item.key)
                .map(|item| item.discounted)
                .fold(total, |acc, d| acc - d);
            if discounted >= threshold {
                reported.push(TreeHhhItem {
                    key,
                    score: total,
                    discounted,
                });
            }
        }
        reported
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FlowtreeConfig;
    use megastream_flow::record::FlowRecord;

    fn rec(src: &str, dst: &str, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 4242)
            .dst(dst.parse().unwrap(), 80)
            .packets(packets)
            .build()
    }

    fn populated(cap: usize) -> Flowtree {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(cap));
        // 10.0.0.0/24: 10 hosts × 10 packets; 10.1.0.0/24: 1 host × 500.
        for i in 0..10u32 {
            t.observe(&rec(&format!("10.0.0.{i}"), "1.1.1.1", 10));
        }
        t.observe(&rec("10.1.0.9", "1.1.1.1", 500));
        t
    }

    #[test]
    fn query_exact_and_prefix() {
        let t = populated(4096);
        let leaf = FlowKey::from_record(&rec("10.0.0.3", "1.1.1.1", 0));
        assert_eq!(t.query(&leaf).value(), 10);
        let p24 = FlowKey::root().with_src_prefix("10.0.0.0/24".parse().unwrap());
        assert_eq!(t.query(&p24).value(), 100);
        let p8 = FlowKey::root().with_src_prefix("10.0.0.0/8".parse().unwrap());
        assert_eq!(t.query(&p8).value(), 600);
        assert_eq!(t.query(&FlowKey::root()).value(), 600);
    }

    #[test]
    fn query_off_ladder_prefix() {
        // /20 is not on the default ladder but containment still works.
        let t = populated(4096);
        let p20 = FlowKey::root().with_src_prefix("10.0.0.0/20".parse().unwrap());
        assert_eq!(t.query(&p20).value(), 100);
    }

    #[test]
    fn query_missing_returns_zero() {
        let t = populated(4096);
        let other = FlowKey::root().with_src_prefix("172.16.0.0/12".parse().unwrap());
        assert_eq!(t.query(&other), Popularity::ZERO);
    }

    #[test]
    fn query_never_overestimates_after_compression() {
        let mut t = populated(4096);
        let p24 = FlowKey::root().with_src_prefix("10.0.0.0/24".parse().unwrap());
        let exact = t.query(&p24);
        t.compress_to(8);
        assert!(t.query(&p24) <= exact);
        // Root query is always exact.
        assert_eq!(t.query(&FlowKey::root()).value(), 600);
    }

    #[test]
    fn drilldown_lists_children_sorted() {
        let t = populated(4096);
        // The materialized /24 node on the observation chain: ports and
        // proto generalized first (priority schema), destination still exact.
        let chain24 = t
            .config()
            .schema
            .self_and_ancestors(&FlowKey::from_record(&rec("10.0.0.3", "1.1.1.1", 0)))
            .find(|k| k.src_prefix().len() == 24)
            .unwrap();
        let rows = t.drilldown(&chain24);
        assert_eq!(rows.len(), 10);
        assert!(rows.windows(2).all(|w| w[0].score >= w[1].score));
        // Children of a /24 on the default ladder are /32 hosts.
        assert!(rows.iter().all(|r| r.key.src_prefix().len() == 32));
        assert!(rows.iter().all(|r| r.score.value() == 10));
    }

    #[test]
    fn drilldown_virtual_key_returns_maximal_contained() {
        let t = populated(4096);
        // `src=/24, everything else wildcard` is a lattice point no
        // observation chain passes through → virtual drilldown.
        let p24 = FlowKey::root().with_src_prefix("10.0.0.0/24".parse().unwrap());
        let rows = t.drilldown(&p24);
        assert_eq!(rows.len(), 1, "one maximal node covers all mice: {rows:?}");
        assert_eq!(rows[0].score.value(), 100);
    }

    #[test]
    fn drilldown_missing_key_is_empty() {
        let t = populated(4096);
        let nowhere = FlowKey::root().with_src_prefix("9.9.0.0/16".parse().unwrap());
        assert!(t.drilldown(&nowhere).is_empty());
    }

    #[test]
    fn top_k_finds_the_elephant() {
        let t = populated(4096);
        let top = t.top_k_where(3, |k| k.specificity() == 104);
        assert_eq!(top[0].1.value(), 500);
        assert_eq!(
            top[0].0,
            FlowKey::from_record(&rec("10.1.0.9", "1.1.1.1", 0))
        );
    }

    #[test]
    fn top_k_without_filter_ranks_generalizations() {
        let t = populated(4096);
        let top = t.top_k(1);
        // The highest-scoring non-root node carries all 600.
        assert_eq!(top[0].1.value(), 600);
    }

    #[test]
    fn above_x_threshold() {
        let t = populated(4096);
        let hh = t.above_x(Popularity::new(99));
        assert!(!hh.is_empty());
        assert!(hh.iter().all(|(_, s)| s.value() > 99));
        // The elephant leaf qualifies; mouse leaves do not.
        assert!(hh
            .iter()
            .any(|(k, _)| *k == FlowKey::from_record(&rec("10.1.0.9", "1.1.1.1", 0))));
        assert!(!hh
            .iter()
            .any(|(k, _)| *k == FlowKey::from_record(&rec("10.0.0.3", "1.1.1.1", 0))));
    }

    #[test]
    fn hhh_discounts() {
        let t = populated(4096);
        let hhh = t.hhh(Popularity::new(100));
        // The elephant's exact flow is reported.
        let elephant = FlowKey::from_record(&rec("10.1.0.9", "1.1.1.1", 0));
        assert!(hhh.iter().any(|h| h.key == elephant));
        // The mice are only heavy together: a node covering all of them is
        // reported with discounted score 100.
        let mouse = FlowKey::from_record(&rec("10.0.0.3", "1.1.1.1", 0));
        let covering = hhh
            .iter()
            .find(|h| h.key.contains(&mouse) && h.key != elephant)
            .expect("no node covering the mice reported");
        assert_eq!(covering.discounted.value(), 100);
        // Zero threshold reports nothing.
        assert!(t.hhh(Popularity::ZERO).is_empty());
    }

    #[test]
    fn hhh_agrees_with_exact_on_uncompressed_tree() {
        use megastream_flow::key::FeatureSet;
        use megastream_flow::mask::GeneralizationSchema;
        use megastream_flow::score::ScoreKind;
        use megastream_primitives::exact::ExactFlowTable;

        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(100_000));
        let mut exact = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        for i in 0..40u32 {
            let r = rec(
                &format!("10.{}.{}.5", i % 4, i % 10),
                &format!("1.1.1.{}", i % 3),
                (i as u64 % 9) + 1,
            );
            t.observe(&r);
            exact.observe(&r);
        }
        let threshold = Popularity::new(20);
        let mine: std::collections::BTreeSet<FlowKey> =
            t.hhh(threshold).into_iter().map(|h| h.key).collect();
        let truth: std::collections::BTreeSet<FlowKey> = exact
            .hhh(&GeneralizationSchema::default(), threshold)
            .into_iter()
            .map(|h| h.key)
            .collect();
        assert_eq!(mine, truth);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// The headline approximation guarantee: for ANY observation
        /// sequence, ANY compression level, and ANY prefix query, the
        /// Flowtree estimate never exceeds the true score — and the root
        /// query is always exact.
        #[test]
        fn prop_query_never_overestimates(
            flows in proptest::collection::vec((0u8..6, 0u8..6, 0u8..4, 1u64..50), 1..120),
            target in 2usize..64,
            q_octet in 0u8..6,
            q_len in proptest::sample::select(vec![8u8, 16, 24, 32]),
        ) {
            use megastream_flow::key::FeatureSet;
            use megastream_flow::score::ScoreKind;
            use megastream_primitives::exact::ExactFlowTable;

            let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(4096));
            let mut exact = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
            let mut total = 0u64;
            for (a, b, d, pkts) in flows {
                let r = rec(&format!("10.{a}.{b}.1"), &format!("1.1.1.{d}"), pkts);
                tree.observe(&r);
                exact.observe(&r);
                total += pkts;
            }
            tree.compress_to(target);
            tree.check_invariants();
            let q = FlowKey::root().with_src_prefix(
                format!("10.{q_octet}.0.0/{q_len}").parse().unwrap(),
            );
            let est = tree.query(&q);
            let truth = exact.query(&q);
            proptest::prop_assert!(
                est <= truth,
                "overestimate: {est} > {truth} at {q} (target {target})"
            );
            // The root stays exact under any compression.
            proptest::prop_assert_eq!(tree.query(&FlowKey::root()).value(), total);
        }
    }

    #[test]
    fn overlap_semantics() {
        let a = FlowKey::root().with_src_prefix("10.0.0.0/8".parse().unwrap());
        let b = FlowKey::root()
            .with_src_prefix("10.1.0.0/16".parse().unwrap())
            .with_dst_prefix("2.0.0.0/8".parse().unwrap());
        // a contains b's src side and b's dst is more specific than a's
        // wildcard → overlapping.
        assert!(overlaps(&a, &b));
        let c = FlowKey::root().with_src_prefix("11.0.0.0/8".parse().unwrap());
        assert!(!overlaps(&a, &c));
    }
}
