//! **OracleTree** — the retired pointer-based Flowtree, kept verbatim as a
//! differential-testing oracle (feature `oracle`, dev/test builds only).
//!
//! This is the pre-arena implementation: `Option<Node>` boxes in a `Vec`,
//! per-node `Vec<usize>` child lists, deep `Clone` snapshots. It exists so
//! `tests/arena_differential.rs` can drive both trees through identical op
//! sequences and assert observational equality — the proof that the arena
//! refactor changed the representation and nothing else. The one deliberate
//! alignment with the new tree: compression breaks own-score ties by *key*
//! (not by slot id), so eviction order is representation-independent and
//! the two implementations stay structurally identical, not just
//! query-equal.
//!
//! Do not use this type outside tests and benches; it is the slow baseline
//! the E18 bench measures against.

use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use megastream_flow::key::{Feature, FlowKey};
use megastream_flow::record::FlowRecord;
use megastream_flow::score::Popularity;

use crate::builder::FlowtreeConfig;
use crate::query::{DrilldownEntry, TreeHhhItem};
use crate::tree::NodeView;

/// One materialized node of the oracle tree.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    key: FlowKey,
    own: Popularity,
    parent: Option<usize>,
    children: Vec<usize>,
}

/// Whether two keys can share traffic (per feature, masked values are
/// prefixes: either disjoint or nested).
fn overlaps(a: &FlowKey, b: &FlowKey) -> bool {
    Feature::ALL.into_iter().all(|f| {
        let (fa, fb) = (a.field(f), b.field(f));
        fa.contains(fb) || fb.contains(fa)
    })
}

/// The pointer-based Flowtree (see module docs). API mirrors
/// [`Flowtree`](crate::Flowtree)'s operator surface one-for-one.
#[derive(Debug, Clone)]
pub struct OracleTree {
    config: FlowtreeConfig,
    base_capacity: usize,
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    index: HashMap<FlowKey, usize>,
    root: usize,
    len: usize,
    total: Popularity,
    records: u64,
}

impl OracleTree {
    /// Creates an empty oracle tree.
    pub fn new(config: FlowtreeConfig) -> Self {
        let root_node = Node {
            key: FlowKey::root(),
            own: Popularity::ZERO,
            parent: None,
            children: Vec::new(),
        };
        let mut index = HashMap::new();
        index.insert(FlowKey::root(), 0);
        OracleTree {
            base_capacity: config.capacity,
            config,
            nodes: vec![Some(root_node)],
            free: Vec::new(),
            index,
            root: 0,
            len: 1,
            total: Popularity::ZERO,
            records: 0,
        }
    }

    /// Rebuilds a tree from `(key, own score)` pairs plus the record count,
    /// shallow-first (mirrors `Flowtree::from_parts`).
    pub fn from_parts(
        config: FlowtreeConfig,
        nodes: Vec<(FlowKey, Popularity)>,
        records: u64,
    ) -> Self {
        let mut tree = OracleTree::new(config);
        let mut entries: Vec<(usize, FlowKey, Popularity)> = nodes
            .into_iter()
            .map(|(key, own)| (tree.config.schema.depth(&key), key, own))
            .collect();
        entries.sort_by_key(|(depth, _, _)| *depth);
        for (_, key, own) in entries {
            tree.insert_exact(&key, own);
        }
        tree.records = records;
        tree
    }

    /// The tree's configuration.
    pub fn config(&self) -> &FlowtreeConfig {
        &self.config
    }

    /// The capacity the tree was constructed with.
    pub fn base_capacity(&self) -> usize {
        self.base_capacity
    }

    /// Changes the node capacity, compressing immediately if exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity >= 1, "flowtree capacity must be at least 1");
        self.config.capacity = capacity;
        if self.len > capacity {
            self.compress_to(self.config.compact_target());
        }
    }

    /// Number of materialized nodes (including the root).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 1 && self.total.is_zero()
    }

    /// Total score ingested.
    pub fn total(&self) -> Popularity {
        self.total
    }

    /// Number of flow records observed.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Deep in-memory footprint of the pointer representation: arena slot
    /// (including the child-`Vec` header) + index entry + parent/child link
    /// words per node, plus the tree header. The E18 bytes-per-node
    /// baseline.
    pub fn deep_bytes(&self) -> usize {
        let per_node = std::mem::size_of::<Node>()
            + std::mem::size_of::<FlowKey>()
            + 2 * std::mem::size_of::<usize>();
        self.len * per_node + std::mem::size_of::<Self>()
    }

    /// Ingests one raw flow record.
    pub fn observe(&mut self, record: &FlowRecord) {
        let key = FlowKey::from_record_projected(record, self.config.features);
        let score = self.config.score_kind.score(record);
        self.records += 1;
        self.add_mass(&key, score);
    }

    /// Adds `score` at `key` (normalized and projected first).
    pub fn add_mass(&mut self, key: &FlowKey, score: Popularity) {
        let key = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let id = self.ensure_node(&key);
        self.node_mut(id).own += score;
        self.total += score;
        if self.len > self.config.capacity {
            self.compress_to(self.config.compact_target());
        }
    }

    /// Merge: joins another oracle tree into this one (shallow-first
    /// insertion of nonzero nodes, then compression).
    ///
    /// # Panics
    ///
    /// Panics if the configurations are incompatible.
    pub fn merge(&mut self, other: &OracleTree) {
        assert!(
            self.config.compatible_with(&other.config),
            "cannot merge flowtrees with incompatible configurations"
        );
        let mut entries: Vec<(usize, FlowKey, Popularity)> = other
            .live_ids()
            .map(|id| {
                let n = other.node(id);
                (other.config.schema.depth(&n.key), n.key, n.own)
            })
            .collect();
        entries.sort_by_key(|(depth, _, _)| *depth);
        for (_, key, own) in entries {
            if !own.is_zero() {
                self.insert_exact(&key, own);
            }
        }
        self.records += other.records;
        if self.len > self.config.capacity {
            self.compress_to(self.config.compact_target());
        }
    }

    /// Diff: subtracts `other`'s per-key scores (saturating), pruning
    /// zeroed leaves.
    ///
    /// # Panics
    ///
    /// Panics if the configurations are incompatible.
    pub fn diff(&mut self, other: &OracleTree) {
        assert!(
            self.config.compatible_with(&other.config),
            "cannot diff flowtrees with incompatible configurations"
        );
        let ids: Vec<usize> = other.live_ids().collect();
        for id in ids {
            let n = other.node(id);
            if n.own.is_zero() {
                continue;
            }
            let norm = self
                .config
                .schema
                .normalize(&n.key.project(self.config.features));
            if let Some(&my_id) = self.index.get(&norm) {
                let node = self.node_mut(my_id);
                let removed = if n.own > node.own { node.own } else { n.own };
                node.own -= removed;
                self.total -= removed;
            }
        }
        loop {
            let victims: Vec<usize> = self
                .live_ids()
                .filter(|&id| {
                    id != self.root
                        && self.node(id).children.is_empty()
                        && self.node(id).own.is_zero()
                })
                .collect();
            if victims.is_empty() {
                break;
            }
            for id in victims {
                self.detach_and_free(id);
            }
        }
    }

    /// Compress: folds the least-popular leaves into their parents until at
    /// most `target` nodes remain. Ties on the own score break by key —
    /// the same representation-independent order the arena tree uses.
    pub fn compress_to(&mut self, target: usize) {
        let target = target.max(1);
        if self.len <= target {
            return;
        }
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, FlowKey)>> = self
            .live_ids()
            .filter(|&id| id != self.root && self.node(id).children.is_empty())
            .map(|id| {
                let n = self.node(id);
                std::cmp::Reverse((n.own.value(), n.key))
            })
            .collect();
        while self.len > target {
            let Some(std::cmp::Reverse((score, key))) = heap.pop() else {
                break;
            };
            let Some(&id) = self.index.get(&key) else {
                continue; // stale: evicted already
            };
            match &self.nodes[id] {
                Some(n) if n.children.is_empty() && n.own.value() == score => {}
                _ => continue, // stale: grew children or changed score
            }
            let parent = self.node(id).parent.expect("non-root leaf has a parent");
            let own = self.node(id).own;
            self.node_mut(parent).own += own;
            self.detach_and_free(id);
            if parent != self.root && self.node(parent).children.is_empty() {
                let pn = self.node(parent);
                heap.push(std::cmp::Reverse((pn.own.value(), pn.key)));
            }
        }
    }

    /// Read-only views of all nodes, in unspecified order.
    pub fn nodes(&self) -> Vec<NodeView> {
        let subtree = self.subtree_scores();
        self.live_ids()
            .map(|id| {
                let n = self.node(id);
                NodeView {
                    key: n.key,
                    own_score: n.own,
                    subtree_score: subtree[id],
                    is_leaf: n.children.is_empty(),
                }
            })
            .collect()
    }

    /// The view of a single key's node, if materialized.
    pub fn get(&self, key: &FlowKey) -> Option<NodeView> {
        let norm = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let id = *self.index.get(&norm)?;
        let n = self.node(id);
        Some(NodeView {
            key: n.key,
            own_score: n.own,
            subtree_score: self.subtree_score_of(id),
            is_leaf: n.children.is_empty(),
        })
    }

    /// Resets the tree to empty, keeping the configuration.
    pub fn clear(&mut self) {
        let base = self.base_capacity;
        *self = OracleTree::new(self.config.clone());
        self.base_capacity = base;
    }

    /// Query: total score of all materialized nodes contained in `key`.
    pub fn query(&self, key: &FlowKey) -> Popularity {
        let mut total = Popularity::ZERO;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node_key = self.node(id).key;
            if key.contains(&node_key) {
                total += self.subtree_score_of(id);
            } else if overlaps(key, &node_key) {
                stack.extend(self.node(id).children.iter().copied());
            }
        }
        total
    }

    /// Drilldown: the flows one level below `key`, highest first.
    pub fn drilldown(&self, key: &FlowKey) -> Vec<DrilldownEntry> {
        let norm = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let ids = match self.index.get(&norm) {
            Some(&id) => self.node(id).children.clone(),
            None => {
                let mut found = Vec::new();
                let mut stack = vec![self.root];
                while let Some(id) = stack.pop() {
                    let node_key = self.node(id).key;
                    if key.contains(&node_key) && *key != node_key {
                        found.push(id);
                    } else if overlaps(key, &node_key) {
                        stack.extend(self.node(id).children.iter().copied());
                    }
                }
                found
            }
        };
        let mut out: Vec<DrilldownEntry> = ids
            .into_iter()
            .map(|c| {
                let n = self.node(c);
                DrilldownEntry {
                    key: n.key,
                    score: self.subtree_score_of(c),
                    is_leaf: n.children.is_empty(),
                }
            })
            .collect();
        out.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.key.cmp(&b.key)));
        out
    }

    /// Top-k: the `k` highest-scoring flows, root excluded.
    pub fn top_k(&self, k: usize) -> Vec<(FlowKey, Popularity)> {
        let scores = self.subtree_scores();
        let mut entries: Vec<(FlowKey, Popularity)> = self
            .live_ids()
            .filter(|&id| id != self.root)
            .map(|id| (self.node(id).key, scores[id]))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Above-x: all flows scoring above `x`, highest first, root excluded.
    pub fn above_x(&self, x: Popularity) -> Vec<(FlowKey, Popularity)> {
        let scores = self.subtree_scores();
        let mut entries: Vec<(FlowKey, Popularity)> = self
            .live_ids()
            .filter(|&id| id != self.root)
            .map(|id| (self.node(id).key, scores[id]))
            .filter(|(_, s)| *s > x)
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries
    }

    /// HHH: discounted hierarchical heavy hitters, deepest-first.
    pub fn hhh(&self, threshold: Popularity) -> Vec<TreeHhhItem> {
        if threshold.is_zero() {
            return Vec::new();
        }
        let scores = self.subtree_scores();
        let mut ids: Vec<usize> = self.live_ids().collect();
        ids.sort_by(|&a, &b| {
            let (ka, kb) = (self.node(a).key, self.node(b).key);
            let schema = &self.config.schema;
            schema
                .depth(&kb)
                .cmp(&schema.depth(&ka))
                .then_with(|| ka.cmp(&kb))
        });
        let mut reported: Vec<TreeHhhItem> = Vec::new();
        for id in ids {
            let key = self.node(id).key;
            let total = scores[id];
            let discounted = reported
                .iter()
                .filter(|item| key.contains(&item.key) && key != item.key)
                .map(|item| item.discounted)
                .fold(total, |acc, d| acc - d);
            if discounted >= threshold {
                reported.push(TreeHhhItem {
                    key,
                    score: total,
                    discounted,
                });
            }
        }
        reported
    }

    /// Verifies every structural invariant.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        let mut own_sum = Popularity::ZERO;
        for id in self.live_ids() {
            seen += 1;
            let n = self.node(id);
            own_sum += n.own;
            assert_eq!(
                self.index.get(&n.key),
                Some(&id),
                "index out of sync for {}",
                n.key
            );
            if id == self.root {
                assert!(n.parent.is_none(), "root has a parent");
                assert!(n.key.is_root(), "root key is not the wildcard key");
            } else {
                let p = n.parent.expect("non-root node without parent");
                let pn = self.node(p);
                assert!(
                    pn.key.contains(&n.key) && pn.key != n.key,
                    "parent {} does not strictly contain child {}",
                    pn.key,
                    n.key
                );
                assert!(
                    pn.children.contains(&id),
                    "parent {} missing child link to {}",
                    pn.key,
                    n.key
                );
            }
            assert!(
                self.config.schema.is_normalized(&n.key),
                "node key {} is not on the schema ladder",
                n.key
            );
        }
        assert_eq!(seen, self.len, "len out of sync with live nodes");
        assert_eq!(
            own_sum, self.total,
            "score mass not conserved: sum {own_sum} != total {}",
            self.total
        );
    }

    // ------------------------------------------------------------------
    // internal plumbing (the old pointer machinery, unchanged)
    // ------------------------------------------------------------------

    fn node(&self, id: usize) -> &Node {
        self.nodes[id].as_ref().expect("dangling node id")
    }

    fn node_mut(&mut self, id: usize) -> &mut Node {
        self.nodes[id].as_mut().expect("dangling node id")
    }

    fn live_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(id, n)| n.as_ref().map(|_| id))
    }

    fn insert_exact(&mut self, key: &FlowKey, score: Popularity) {
        let key = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let id = if let Some(&id) = self.index.get(&key) {
            id
        } else {
            let anchor = self
                .config
                .schema
                .ancestors(&key)
                .find_map(|anc| self.index.get(&anc).copied())
                .unwrap_or(self.root);
            self.attach_new(key, anchor)
        };
        self.node_mut(id).own += score;
        self.total += score;
    }

    fn ensure_node(&mut self, key: &FlowKey) -> usize {
        if let Some(&id) = self.index.get(key) {
            return id;
        }
        let mut missing = vec![*key];
        let mut anchor = self.root;
        for anc in self.config.schema.ancestors(key) {
            if let Some(&id) = self.index.get(&anc) {
                anchor = id;
                break;
            }
            missing.push(anc);
        }
        let mut parent = anchor;
        for k in missing.into_iter().rev() {
            parent = self.attach_new(k, parent);
        }
        parent
    }

    fn attach_new(&mut self, key: FlowKey, parent: usize) -> usize {
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id] = Some(Node {
                    key,
                    own: Popularity::ZERO,
                    parent: Some(parent),
                    children: Vec::new(),
                });
                id
            }
            None => {
                self.nodes.push(Some(Node {
                    key,
                    own: Popularity::ZERO,
                    parent: Some(parent),
                    children: Vec::new(),
                }));
                self.nodes.len() - 1
            }
        };
        let stolen: Vec<usize> = self
            .node(parent)
            .children
            .iter()
            .copied()
            .filter(|&c| key.contains(&self.node(c).key))
            .collect();
        for c in &stolen {
            self.node_mut(*c).parent = Some(id);
        }
        let parent_node = self.node_mut(parent);
        parent_node.children.retain(|c| !stolen.contains(c));
        parent_node.children.push(id);
        self.node_mut(id).children = stolen;
        self.index.insert(key, id);
        self.len += 1;
        id
    }

    fn detach_and_free(&mut self, id: usize) {
        debug_assert!(id != self.root, "cannot remove the root");
        debug_assert!(
            self.node(id).children.is_empty(),
            "cannot free a node with children"
        );
        let parent = self.node(id).parent.expect("non-root node has a parent");
        self.node_mut(parent).children.retain(|&c| c != id);
        let key = self.node(id).key;
        match self.index.entry(key) {
            Entry::Occupied(e) if *e.get() == id => {
                e.remove();
            }
            _ => {}
        }
        self.nodes[id] = None;
        self.free.push(id);
        self.len -= 1;
    }

    fn subtree_scores(&self) -> Vec<Popularity> {
        let mut scores = vec![Popularity::ZERO; self.nodes.len()];
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                let n = self.node(id);
                let mut s = n.own;
                for &c in &n.children {
                    s += scores[c];
                }
                scores[id] = s;
            } else {
                stack.push((id, true));
                for &c in &self.node(id).children {
                    stack.push((c, false));
                }
            }
        }
        scores
    }

    fn subtree_score_of(&self, id: usize) -> Popularity {
        let mut total = Popularity::ZERO;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let n = self.node(cur);
            total += n.own;
            stack.extend(n.children.iter().copied());
        }
        total
    }
}
