//! **Flowtree** — the paper's novel computing primitive for network
//! monitoring (§VI, Table II).
//!
//! A Flowtree is a *self-adjusting* summary of a stream of flow records.
//! Every observed flow and every generalization thereof is a node of the
//! flow hierarchy (induced by a
//! [`GeneralizationSchema`](megastream_flow::mask::GeneralizationSchema));
//! the tree materializes a bounded-size subset of that hierarchy and
//! annotates each node with a popularity score. When the node budget is
//! exceeded, the least popular leaves are folded into their parents
//! (*compression*), trading detail for space while **never losing score
//! mass** — the sum of all node scores always equals the total score
//! ingested.
//!
//! The eight operators of Table II:
//!
//! | Operator | Method |
//! |---|---|
//! | Merge | [`Flowtree::merge`] |
//! | Compress | [`Flowtree::compress_to`] |
//! | Diff | [`Flowtree::diff`] |
//! | Query | [`Flowtree::query`] |
//! | Drilldown | [`Flowtree::drilldown`] |
//! | Top-k | [`Flowtree::top_k`] |
//! | Above-x | [`Flowtree::above_x`] |
//! | HHH | [`Flowtree::hhh`] |
//!
//! # Example
//!
//! ```
//! use megastream_flow::record::FlowRecord;
//! use megastream_flow::key::FlowKey;
//! use megastream_flowtree::{Flowtree, FlowtreeConfig};
//!
//! let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(256));
//! for i in 0..100u32 {
//!     let rec = FlowRecord::builder()
//!         .proto(6)
//!         .src(format!("10.0.{}.{}", i / 256, i % 256).parse()?, 443)
//!         .dst("93.184.216.34".parse()?, 55000)
//!         .packets(10)
//!         .build();
//!     tree.observe(&rec);
//! }
//! // All traffic came from 10.0.0.0/8.
//! let q = FlowKey::root().with_src_prefix("10.0.0.0/8".parse()?);
//! assert_eq!(tree.query(&q).value(), 1000);
//! # Ok::<(), megastream_flow::addr::ParseAddrError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arena;
mod builder;
mod ops;
#[cfg(feature = "oracle")]
pub mod oracle;
mod query;
mod tree;

pub use builder::FlowtreeConfig;
pub use query::{DrilldownEntry, TreeHhhItem};
pub use tree::{FlatNode, FlatTreeError, Flowtree, NodeView, FLAT_NO_PARENT};
