//! The Flowtree node store: a bounded arena of generalized-flow nodes.

use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use megastream_flow::key::FlowKey;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::Popularity;

use crate::builder::FlowtreeConfig;

/// One materialized node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Node {
    pub(crate) key: FlowKey,
    /// Score attributed directly to this node: traffic observed at exactly
    /// this key plus mass folded up from compressed descendants.
    pub(crate) own: Popularity,
    pub(crate) parent: Option<usize>,
    pub(crate) children: Vec<usize>,
}

/// A read-only view of one Flowtree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeView {
    /// The node's generalized flow key.
    pub key: FlowKey,
    /// Score attributed directly to this node (including folded mass).
    pub own_score: Popularity,
    /// Total score of the node's subtree — the node's *popularity score* in
    /// the paper's terms ("the sum of its own popularity score plus the
    /// popularity scores of the children").
    pub subtree_score: Popularity,
    /// Whether the node currently has no children.
    pub is_leaf: bool,
}

/// The Flowtree summary structure. See the [crate docs](crate) for an
/// overview and the per-method docs for the Table II operators.
#[derive(Debug, Clone)]
pub struct Flowtree {
    config: FlowtreeConfig,
    /// Capacity at construction time; the granularity dial scales
    /// `config.capacity` relative to this base.
    base_capacity: usize,
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    index: HashMap<FlowKey, usize>,
    root: usize,
    len: usize,
    total: Popularity,
    records: u64,
}

impl Flowtree {
    /// Creates an empty Flowtree.
    pub fn new(config: FlowtreeConfig) -> Self {
        let root_node = Node {
            key: FlowKey::root(),
            own: Popularity::ZERO,
            parent: None,
            children: Vec::new(),
        };
        let mut index = HashMap::new();
        index.insert(FlowKey::root(), 0);
        Flowtree {
            base_capacity: config.capacity,
            config,
            nodes: vec![Some(root_node)],
            free: Vec::new(),
            index,
            root: 0,
            len: 1,
            total: Popularity::ZERO,
            records: 0,
        }
    }

    /// Rebuilds a tree from its flat serialized form: the `(key, own score)`
    /// pairs of every node (as read from [`Flowtree::nodes`]) plus the
    /// record count. Entries are inserted shallow-first so deep nodes attach
    /// under their true ancestors and the original topology — including
    /// zero-score interior nodes — is reproduced exactly; the result
    /// compares equal to the source tree under [`PartialEq`]. Used by the
    /// cold-tier codec.
    pub fn from_parts(
        config: FlowtreeConfig,
        nodes: Vec<(FlowKey, Popularity)>,
        records: u64,
    ) -> Self {
        let mut tree = Flowtree::new(config);
        let mut entries: Vec<(usize, FlowKey, Popularity)> = nodes
            .into_iter()
            .map(|(key, own)| (tree.config.schema.depth(&key), key, own))
            .collect();
        entries.sort_by_key(|(depth, _, _)| *depth);
        for (_, key, own) in entries {
            tree.insert_exact(&key, own);
        }
        tree.records = records;
        tree
    }

    /// The tree's configuration.
    pub fn config(&self) -> &FlowtreeConfig {
        &self.config
    }

    /// The capacity the tree was constructed with (the granularity dial in
    /// [`ComputingPrimitive`](megastream_primitives::aggregator::ComputingPrimitive)
    /// scales the live capacity relative to this base).
    pub fn base_capacity(&self) -> usize {
        self.base_capacity
    }

    /// Changes the node capacity, compressing immediately if the tree now
    /// exceeds it.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity >= 1, "flowtree capacity must be at least 1");
        self.config.capacity = capacity;
        if self.len > capacity {
            self.compress_to(self.config.compact_target());
        }
    }

    /// Number of materialized nodes (including the root).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no data (only the empty root).
    pub fn is_empty(&self) -> bool {
        self.len == 1 && self.total.is_zero()
    }

    /// Total score ingested. Invariant: equals the sum of all own scores,
    /// regardless of how often the tree was compressed or merged.
    pub fn total(&self) -> Popularity {
        self.total
    }

    /// Number of flow records observed (across merges).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Approximate size of the tree on the wire, in bytes (used by the
    /// transfer-optimization experiments to account export volume).
    pub fn wire_size(&self) -> usize {
        self.len * (std::mem::size_of::<FlowKey>() + std::mem::size_of::<u64>())
    }

    /// Deterministic deep in-memory footprint in bytes: per-node arena and
    /// index payload plus the parent/child link structure, computed from
    /// the *materialized node count* alone (never from `Vec` capacities or
    /// free-list length, so structurally equal trees always agree). This
    /// is the quantity the accounting plane's `store.memory.bytes` gauges
    /// carry; the wire size above stays the export-volume measure.
    pub fn deep_bytes(&self) -> usize {
        // Arena slot + index entry + child-link slot per live node. Every
        // non-root node occupies exactly one parent's child slot; charging
        // one `usize` per node over-counts the root's missing slot by one
        // word, which the fixed header absorbs.
        let per_node = std::mem::size_of::<Node>()
            + std::mem::size_of::<FlowKey>()
            + 2 * std::mem::size_of::<usize>();
        self.len * per_node + std::mem::size_of::<Self>()
    }

    /// Number of materialized nodes — an alias of [`Flowtree::len`] named
    /// for the accounting plane's per-query work counters.
    pub fn node_count(&self) -> usize {
        self.len
    }

    /// Ingests one raw flow record ("uses existing network traces as input
    /// and works on the fly").
    pub fn observe(&mut self, record: &FlowRecord) {
        let key = FlowKey::from_record_projected(record, self.config.features);
        let score = self.config.score_kind.score(record);
        self.records += 1;
        self.add_mass(&key, score);
    }

    /// Adds `score` at `key` (normalized and projected first). Compresses if
    /// the node budget is exceeded.
    pub fn add_mass(&mut self, key: &FlowKey, score: Popularity) {
        let key = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let id = self.ensure_node(&key);
        let node = self.node_mut(id);
        node.own += score;
        self.total += score;
        self.maybe_compress();
    }

    /// Inserts `key` with `score` *without* materializing missing ancestors
    /// (the node attaches under its deepest already-materialized ancestor).
    /// Used to reconstruct a tree from its flat serialized form exactly.
    pub(crate) fn insert_exact(&mut self, key: &FlowKey, score: Popularity) {
        let key = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let id = if let Some(&id) = self.index.get(&key) {
            id
        } else {
            let anchor = self
                .config
                .schema
                .ancestors(&key)
                .find_map(|anc| self.index.get(&anc).copied())
                .unwrap_or(self.root);
            self.attach_new(key, anchor)
        };
        self.node_mut(id).own += score;
        self.total += score;
    }

    pub(crate) fn maybe_compress(&mut self) {
        if self.len > self.config.capacity {
            self.compress_to(self.config.compact_target());
        }
    }

    /// **Compress** (Table II): folds the least-popular leaves into their
    /// parents until at most `target` nodes remain. Score mass is preserved
    /// exactly; detail below the surviving nodes is lost.
    pub fn compress_to(&mut self, target: usize) {
        let target = target.max(1);
        if self.len <= target {
            return;
        }
        // Min-heap of (own score, id) over current leaves.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = self
            .live_ids()
            .filter(|&id| id != self.root && self.node(id).children.is_empty())
            .map(|id| std::cmp::Reverse((self.node(id).own.value(), id)))
            .collect();
        while self.len > target {
            let Some(std::cmp::Reverse((score, id))) = heap.pop() else {
                break; // only the root remains
            };
            // Skip stale entries (node already evicted, or gained children,
            // or its score snapshot is outdated).
            match &self.nodes[id] {
                Some(n) if n.children.is_empty() && n.own.value() == score => {}
                _ => continue,
            }
            let parent = self.node(id).parent.expect("non-root leaf has a parent");
            let own = self.node(id).own;
            self.node_mut(parent).own += own;
            self.detach_and_free(id);
            if parent != self.root && self.node(parent).children.is_empty() {
                heap.push(std::cmp::Reverse((self.node(parent).own.value(), parent)));
            }
        }
    }

    /// Read-only views of all nodes, in unspecified order, with subtree
    /// scores computed.
    pub fn nodes(&self) -> Vec<NodeView> {
        let subtree = self.subtree_scores();
        self.live_ids()
            .map(|id| {
                let n = self.node(id);
                NodeView {
                    key: n.key,
                    own_score: n.own,
                    subtree_score: subtree[id],
                    is_leaf: n.children.is_empty(),
                }
            })
            .collect()
    }

    /// The view of a single key's node, if materialized.
    pub fn get(&self, key: &FlowKey) -> Option<NodeView> {
        let norm = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let id = *self.index.get(&norm)?;
        let n = self.node(id);
        Some(NodeView {
            key: n.key,
            own_score: n.own,
            subtree_score: self.subtree_score_of(id),
            is_leaf: n.children.is_empty(),
        })
    }

    /// Resets the tree to empty, keeping the configuration (including the
    /// original base capacity, so the granularity dial stays meaningful
    /// across epoch rotations).
    pub fn clear(&mut self) {
        let base = self.base_capacity;
        *self = Flowtree::new(self.config.clone());
        self.base_capacity = base;
    }

    // ------------------------------------------------------------------
    // internal plumbing
    // ------------------------------------------------------------------

    pub(crate) fn root_id(&self) -> usize {
        self.root
    }

    pub(crate) fn node(&self, id: usize) -> &Node {
        self.nodes[id].as_ref().expect("dangling node id")
    }

    pub(crate) fn node_mut(&mut self, id: usize) -> &mut Node {
        self.nodes[id].as_mut().expect("dangling node id")
    }

    pub(crate) fn live_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(id, n)| n.as_ref().map(|_| id))
    }

    pub(crate) fn records_mut(&mut self) -> &mut u64 {
        &mut self.records
    }

    /// `(key, own score)` of a live node.
    pub(crate) fn node_ref(&self, id: usize) -> (FlowKey, Popularity) {
        let n = self.node(id);
        (n.key, n.own)
    }

    /// Whether the node currently has no children.
    pub(crate) fn node_ref_children_empty(&self, id: usize) -> bool {
        self.node(id).children.is_empty()
    }

    /// Arena id of `key`'s node (after normalization/projection), if any.
    pub(crate) fn id_of(&self, key: &FlowKey) -> Option<usize> {
        let norm = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        self.index.get(&norm).copied()
    }

    /// Returns the id of `key`'s node, materializing it (and any missing
    /// ancestors) if needed. `key` must already be normalized and projected.
    fn ensure_node(&mut self, key: &FlowKey) -> usize {
        if let Some(&id) = self.index.get(key) {
            return id;
        }
        // Walk up until we hit a materialized ancestor.
        let mut missing = vec![*key];
        let mut anchor = self.root;
        for anc in self.config.schema.ancestors(key) {
            if let Some(&id) = self.index.get(&anc) {
                anchor = id;
                break;
            }
            missing.push(anc);
        }
        // Materialize top-down so each new node hangs off the previous one.
        let mut parent = anchor;
        for k in missing.into_iter().rev() {
            parent = self.attach_new(k, parent);
        }
        parent
    }

    /// Creates a node for `key` under `parent`, re-parenting any of
    /// `parent`'s children that belong below the new node (keeps the
    /// invariant that each node's parent is its deepest materialized proper
    /// ancestor).
    fn attach_new(&mut self, key: FlowKey, parent: usize) -> usize {
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id] = Some(Node {
                    key,
                    own: Popularity::ZERO,
                    parent: Some(parent),
                    children: Vec::new(),
                });
                id
            }
            None => {
                self.nodes.push(Some(Node {
                    key,
                    own: Popularity::ZERO,
                    parent: Some(parent),
                    children: Vec::new(),
                }));
                self.nodes.len() - 1
            }
        };
        // Steal children of `parent` that are more specific than `key`.
        let stolen: Vec<usize> = self
            .node(parent)
            .children
            .iter()
            .copied()
            .filter(|&c| key.contains(&self.node(c).key))
            .collect();
        for c in &stolen {
            self.node_mut(*c).parent = Some(id);
        }
        let parent_node = self.node_mut(parent);
        parent_node.children.retain(|c| !stolen.contains(c));
        parent_node.children.push(id);
        self.node_mut(id).children = stolen;
        self.index.insert(key, id);
        self.len += 1;
        id
    }

    /// Removes a (leaf or internal) node from its parent and frees the slot.
    /// Children must have been handled by the caller.
    pub(crate) fn detach_and_free(&mut self, id: usize) {
        debug_assert!(id != self.root, "cannot remove the root");
        debug_assert!(
            self.node(id).children.is_empty(),
            "cannot free a node with children"
        );
        let parent = self.node(id).parent.expect("non-root node has a parent");
        self.node_mut(parent).children.retain(|&c| c != id);
        let key = self.node(id).key;
        match self.index.entry(key) {
            Entry::Occupied(e) if *e.get() == id => {
                e.remove();
            }
            _ => {}
        }
        self.nodes[id] = None;
        self.free.push(id);
        self.len -= 1;
    }

    /// Subtracts `amount` from a node's own score (saturating) and from the
    /// tree total, returning how much was actually removed.
    pub(crate) fn remove_own(&mut self, id: usize, amount: Popularity) -> Popularity {
        let node = self.node_mut(id);
        let removed = if amount > node.own { node.own } else { amount };
        node.own -= removed;
        self.total -= removed;
        removed
    }

    /// Post-order subtree scores for all live slots (dense by arena id).
    pub(crate) fn subtree_scores(&self) -> Vec<Popularity> {
        let mut scores = vec![Popularity::ZERO; self.nodes.len()];
        // Iterative post-order from the root.
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                let n = self.node(id);
                let mut s = n.own;
                for &c in &n.children {
                    s += scores[c];
                }
                scores[id] = s;
            } else {
                stack.push((id, true));
                for &c in &self.node(id).children {
                    stack.push((c, false));
                }
            }
        }
        scores
    }

    pub(crate) fn subtree_score_of(&self, id: usize) -> Popularity {
        let mut total = Popularity::ZERO;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let n = self.node(cur);
            total += n.own;
            stack.extend(n.children.iter().copied());
        }
        total
    }

    /// Verifies every structural invariant; used by tests and property
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        let mut own_sum = Popularity::ZERO;
        for id in self.live_ids() {
            seen += 1;
            let n = self.node(id);
            own_sum += n.own;
            assert_eq!(
                self.index.get(&n.key),
                Some(&id),
                "index out of sync for {}",
                n.key
            );
            if id == self.root {
                assert!(n.parent.is_none(), "root has a parent");
                assert!(n.key.is_root(), "root key is not the wildcard key");
            } else {
                let p = n.parent.expect("non-root node without parent");
                let pn = self.node(p);
                assert!(
                    pn.key.contains(&n.key) && pn.key != n.key,
                    "parent {} does not strictly contain child {}",
                    pn.key,
                    n.key
                );
                assert!(
                    pn.children.contains(&id),
                    "parent {} missing child link to {}",
                    pn.key,
                    n.key
                );
            }
            for &c in &n.children {
                assert_eq!(
                    self.node(c).parent,
                    Some(id),
                    "child {} has wrong parent",
                    self.node(c).key
                );
            }
            assert!(
                self.config.schema.is_normalized(&n.key),
                "node key {} is not on the schema ladder",
                n.key
            );
        }
        assert_eq!(seen, self.len, "len out of sync with live nodes");
        assert_eq!(self.index.len(), self.len, "index size mismatch");
        assert_eq!(
            own_sum, self.total,
            "score mass not conserved: sum {own_sum} != total {}",
            self.total
        );
    }
}

impl PartialEq for Flowtree {
    /// Two Flowtrees are equal when they summarize the same mass at the same
    /// keys under the same configuration (arena layout is irrelevant).
    fn eq(&self, other: &Self) -> bool {
        if self.config != other.config
            || self.len != other.len
            || self.total != other.total
            || self.records != other.records
        {
            return false;
        }
        self.live_ids().all(|id| {
            let n = self.node(id);
            other
                .index
                .get(&n.key)
                .is_some_and(|&oid| other.node(oid).own == n.own)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::key::FeatureSet;
    use megastream_flow::score::ScoreKind;
    use proptest::prelude::*;

    fn rec(src: &str, dst: &str, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 4242)
            .dst(dst.parse().unwrap(), 80)
            .packets(packets)
            .build()
    }

    fn small_tree() -> Flowtree {
        Flowtree::new(FlowtreeConfig::default().with_capacity(1024))
    }

    #[test]
    fn empty_tree() {
        let t = small_tree();
        assert!(t.is_empty());
        assert_eq!(t.len(), 1);
        assert_eq!(t.total(), Popularity::ZERO);
        t.check_invariants();
    }

    #[test]
    fn observe_builds_chain() {
        let mut t = small_tree();
        t.observe(&rec("10.0.0.1", "1.1.1.1", 7));
        // Exact node + every generalization up to the root.
        assert_eq!(t.len(), t.config().schema.max_depth() + 1);
        assert_eq!(t.total().value(), 7);
        t.check_invariants();
        let exact = FlowKey::from_record(&rec("10.0.0.1", "1.1.1.1", 0));
        let view = t.get(&exact).unwrap();
        assert_eq!(view.own_score.value(), 7);
        assert!(view.is_leaf);
    }

    #[test]
    fn repeated_observations_accumulate() {
        let mut t = small_tree();
        for _ in 0..5 {
            t.observe(&rec("10.0.0.1", "1.1.1.1", 2));
        }
        assert_eq!(t.total().value(), 10);
        assert_eq!(t.records(), 5);
        let exact = FlowKey::from_record(&rec("10.0.0.1", "1.1.1.1", 0));
        assert_eq!(t.get(&exact).unwrap().own_score.value(), 10);
        t.check_invariants();
    }

    #[test]
    fn compression_preserves_mass() {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(64));
        for i in 0..200u32 {
            t.observe(&rec(
                &format!("10.{}.{}.{}", i % 3, (i / 3) % 250, i % 250),
                "1.1.1.1",
                1 + (i as u64 % 7),
            ));
        }
        assert!(t.len() <= 64);
        let expect: u64 = (0..200u32).map(|i| 1 + (i as u64 % 7)).sum();
        assert_eq!(t.total().value(), expect);
        t.check_invariants();
    }

    #[test]
    fn compress_to_explicit_target() {
        let mut t = small_tree();
        for i in 0..100u32 {
            t.observe(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 1));
        }
        let before = t.total();
        t.compress_to(10);
        assert!(t.len() <= 10);
        assert_eq!(t.total(), before);
        t.check_invariants();
        // Root query still exact after compression.
        assert_eq!(t.subtree_score_of(t.root_id()), before);
    }

    #[test]
    fn compression_keeps_heavy_leaves() {
        let mut t = small_tree();
        // One elephant and many mice.
        t.observe(&rec("10.9.9.9", "1.1.1.1", 1_000_000));
        for i in 0..100u32 {
            t.observe(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 1));
        }
        t.compress_to(15);
        let elephant = FlowKey::from_record(&rec("10.9.9.9", "1.1.1.1", 0));
        let view = t.get(&elephant).expect("elephant evicted");
        assert!(view.own_score.value() >= 1_000_000);
    }

    #[test]
    fn reparenting_keeps_deepest_ancestor_invariant() {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(8));
        // Fill, compress away intermediates, then insert a key between the
        // root region and a surviving deep node.
        for i in 0..50u32 {
            t.observe(&rec(&format!("10.1.{}.7", i % 30), "1.1.1.1", 1));
        }
        t.observe(&rec("10.1.2.3", "1.1.1.1", 100));
        t.check_invariants();
        for i in 0..50u32 {
            t.observe(&rec(&format!("10.1.2.{}", i), "1.1.1.1", 2));
        }
        t.check_invariants();
    }

    #[test]
    fn clear_resets() {
        let mut t = small_tree();
        t.observe(&rec("10.0.0.1", "1.1.1.1", 7));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.records(), 0);
        t.check_invariants();
    }

    #[test]
    fn feature_projection_collapses_keys() {
        let mut t = Flowtree::new(
            FlowtreeConfig::default()
                .with_features(FeatureSet::SRC_DST_IP)
                .with_score_kind(ScoreKind::Flows),
        );
        let mut r1 = rec("10.0.0.1", "1.1.1.1", 5);
        r1.src_port = 1111;
        let mut r2 = rec("10.0.0.1", "1.1.1.1", 5);
        r2.src_port = 2222;
        t.observe(&r1);
        t.observe(&r2);
        let key = FlowKey::from_record(&r1).project(FeatureSet::SRC_DST_IP);
        assert_eq!(t.get(&key).unwrap().own_score.value(), 2);
        t.check_invariants();
    }

    #[test]
    fn wire_size_tracks_len() {
        let mut t = small_tree();
        let empty = t.wire_size();
        t.observe(&rec("10.0.0.1", "1.1.1.1", 7));
        assert!(t.wire_size() > empty);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mass conservation and structural invariants hold under arbitrary
        /// observation sequences and capacities.
        #[test]
        fn prop_invariants_hold(
            caps in 4usize..64,
            flows in proptest::collection::vec((0u8..8, 0u8..8, 1u64..100), 1..200),
        ) {
            let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(caps));
            let mut expected = 0u64;
            for (a, b, pkts) in flows {
                t.observe(&rec(
                    &format!("10.{a}.{b}.1"),
                    &format!("192.168.{b}.{a}"),
                    pkts,
                ));
                expected += pkts;
            }
            t.check_invariants();
            prop_assert!(t.len() <= caps.max(2));
            prop_assert_eq!(t.total().value(), expected);
            prop_assert_eq!(t.subtree_score_of(t.root_id()).value(), expected);
        }
    }
}
