//! The Flowtree node store: a bounded, arena-backed tree of
//! generalized-flow nodes with O(1) snapshots and structural dedup.
//!
//! Storage lives in an [`Arena`](crate::arena::Arena) behind an `Arc`:
//! cloning a Flowtree copies four words and bumps a refcount; the first
//! mutation after a snapshot copy-on-writes the arena (minting a fresh
//! storage token). Structurally identical trees can share one arena via
//! [`Flowtree::dedup_with`], and the accounting plane uses
//! [`Flowtree::storage_token`] to count shared storage once.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use megastream_flow::key::FlowKey;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::Popularity;

use crate::arena::{Arena, IdMap, NodeId, Slot};
use crate::builder::FlowtreeConfig;

/// A read-only view of one Flowtree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeView {
    /// The node's generalized flow key.
    pub key: FlowKey,
    /// Score attributed directly to this node (including folded mass).
    pub own_score: Popularity,
    /// Total score of the node's subtree — the node's *popularity score* in
    /// the paper's terms ("the sum of its own popularity score plus the
    /// popularity scores of the children").
    pub subtree_score: Popularity,
    /// Whether the node currently has no children.
    pub is_leaf: bool,
}

/// One node of a Flowtree's flat serialized form: pre-order position of
/// the parent plus the node payload. Produced by [`Flowtree::flat_nodes`]
/// and consumed by [`Flowtree::try_from_flat`]; the cold-tier codec ships
/// this layout verbatim (arena slice + root-first pre-order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatNode {
    /// The node's generalized flow key.
    pub key: FlowKey,
    /// The node's own score.
    pub own: Popularity,
    /// Index of the parent in the same flat sequence. Always strictly less
    /// than the node's own index (pre-order), which makes cyclic or
    /// forward parent links unrepresentable; [`FLAT_NO_PARENT`] for the
    /// root, which is always entry 0.
    pub parent: u32,
}

/// The `parent` sentinel of the root entry in a flat node sequence.
pub const FLAT_NO_PARENT: u32 = u32::MAX;

/// Why a flat node sequence was rejected by [`Flowtree::try_from_flat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatTreeError {
    /// The sequence was empty (a tree always has at least its root).
    Empty,
    /// Entry 0 was not the wildcard root with the no-parent sentinel.
    Root,
    /// A parent index was not strictly smaller than the node's own index
    /// (out of range, forward, or cyclic).
    Order,
    /// A parent key did not strictly contain its child's key.
    Containment,
    /// A key was not normalized/projected under the tree's schema.
    Normalization,
    /// The same key appeared twice.
    Duplicate,
    /// The node count exceeded the configuration's node budget.
    Budget,
}

impl FlatTreeError {
    /// Short static description, used as the codec's `Malformed` detail.
    pub fn what(self) -> &'static str {
        match self {
            FlatTreeError::Empty => "flowtree frame: empty node list",
            FlatTreeError::Root => "flowtree frame: entry 0 is not the root",
            FlatTreeError::Order => "flowtree frame: parent index not pre-order",
            FlatTreeError::Containment => "flowtree frame: parent does not contain child",
            FlatTreeError::Normalization => "flowtree frame: key off the schema ladder",
            FlatTreeError::Duplicate => "flowtree frame: duplicate key",
            FlatTreeError::Budget => "flowtree frame: node count exceeds budget",
        }
    }
}

impl std::fmt::Display for FlatTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.what())
    }
}

/// The Flowtree summary structure. See the [crate docs](crate) for an
/// overview and the per-method docs for the Table II operators.
#[derive(Debug, Clone)]
pub struct Flowtree {
    config: FlowtreeConfig,
    /// Capacity at construction time; the granularity dial scales
    /// `config.capacity` relative to this base.
    base_capacity: usize,
    /// Enforced ceiling on live arena nodes. Normally
    /// [`FlowtreeConfig::node_budget`]; bulk operations (merge, rebuild)
    /// raise it explicitly for their transient and re-tighten afterwards —
    /// every allocation asserts against it, replacing ad-hoc capacity math.
    node_budget: usize,
    arena: Arc<Arena>,
    total: Popularity,
    records: u64,
}

impl Flowtree {
    /// Creates an empty Flowtree.
    pub fn new(config: FlowtreeConfig) -> Self {
        Flowtree {
            base_capacity: config.capacity,
            node_budget: config.node_budget(),
            config,
            arena: Arc::new(Arena::new()),
            total: Popularity::ZERO,
            records: 0,
        }
    }

    /// Rebuilds a tree from its `(key, own score)` pairs plus the record
    /// count. Entries are inserted shallow-first so deep nodes attach under
    /// their true ancestors and the original topology — including
    /// zero-score interior nodes — is reproduced exactly; the result
    /// compares equal to the source tree under [`PartialEq`]. Prefer
    /// [`Flowtree::try_from_flat`] for untrusted input: this constructor
    /// trusts its caller and re-derives structure instead of validating it.
    pub fn from_parts(
        config: FlowtreeConfig,
        nodes: Vec<(FlowKey, Popularity)>,
        records: u64,
    ) -> Self {
        let mut tree = Flowtree::new(config);
        tree.reserve_nodes(nodes.len());
        let mut entries: Vec<(usize, FlowKey, Popularity)> = nodes
            .into_iter()
            .map(|(key, own)| (tree.config.schema.depth(&key), key, own))
            .collect();
        entries.sort_by_key(|(depth, _, _)| *depth);
        for (_, key, own) in entries {
            tree.insert_exact(&key, own);
        }
        tree.records = records;
        tree.tighten_budget();
        tree
    }

    /// Validates and rebuilds a tree from its flat serialized form (see
    /// [`FlatNode`]). Never panics: every structural attack — out-of-range
    /// or cyclic parent links, duplicate keys, off-ladder keys, parents
    /// that do not strictly contain their children, node counts beyond
    /// the budget — returns a typed [`FlatTreeError`]. The dense pre-order
    /// layout has no free list, so freed-slot overlap is unrepresentable
    /// by construction.
    pub fn try_from_flat(
        config: FlowtreeConfig,
        nodes: &[FlatNode],
        records: u64,
    ) -> Result<Self, FlatTreeError> {
        let Some(first) = nodes.first() else {
            return Err(FlatTreeError::Empty);
        };
        if !first.key.is_root() || first.parent != FLAT_NO_PARENT {
            return Err(FlatTreeError::Root);
        }
        if nodes.len() > config.node_budget() {
            return Err(FlatTreeError::Budget);
        }
        let mut tree = Flowtree::new(config);
        let mut ids: Vec<NodeId> = Vec::with_capacity(nodes.len());
        ids.push(NodeId::ROOT);
        Arc::make_mut(&mut tree.arena).slot_mut(NodeId::ROOT).own = first.own;
        tree.total = first.own;
        for (i, node) in nodes.iter().enumerate().skip(1) {
            let parent_id = match usize::try_from(node.parent) {
                Ok(p) if p < i => ids[p],
                _ => return Err(FlatTreeError::Order),
            };
            let norm = tree
                .config
                .schema
                .normalize(&node.key.project(tree.config.features));
            if norm != node.key {
                return Err(FlatTreeError::Normalization);
            }
            if tree.arena.lookup(&node.key).is_some() {
                return Err(FlatTreeError::Duplicate);
            }
            let parent_key = tree.arena.slot(parent_id).key;
            if !parent_key.contains(&node.key) || parent_key == node.key {
                return Err(FlatTreeError::Containment);
            }
            // Strict containment is the *whole* structural invariant: keys
            // generalize along a lattice (src and dst prefixes shorten
            // independently), so a node attached under a generalized key
            // that is not on the canonical ancestor chain is a legitimate,
            // history-dependent shape — the frame carries that structure
            // explicitly and it is reproduced verbatim.
            let arena = Arc::make_mut(&mut tree.arena);
            let id = arena.alloc(node.key);
            arena.slot_mut(id).own = node.own;
            arena.link_child(parent_id, id);
            tree.total += node.own;
            ids.push(id);
        }
        tree.records = records;
        tree.tighten_budget();
        Ok(tree)
    }

    /// The tree's configuration.
    pub fn config(&self) -> &FlowtreeConfig {
        &self.config
    }

    /// The capacity the tree was constructed with (the granularity dial in
    /// [`ComputingPrimitive`](megastream_primitives::aggregator::ComputingPrimitive)
    /// scales the live capacity relative to this base).
    pub fn base_capacity(&self) -> usize {
        self.base_capacity
    }

    /// Changes the node capacity, compressing immediately if the tree now
    /// exceeds it.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity >= 1, "flowtree capacity must be at least 1");
        self.config.capacity = capacity;
        if self.len() > capacity {
            self.compress_to(self.config.compact_target());
        }
        self.tighten_budget();
    }

    /// Number of materialized nodes (including the root).
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the tree holds no data (only the empty root).
    pub fn is_empty(&self) -> bool {
        self.len() == 1 && self.total.is_zero()
    }

    /// Total score ingested. Invariant: equals the sum of all own scores,
    /// regardless of how often the tree was compressed or merged.
    pub fn total(&self) -> Popularity {
        self.total
    }

    /// Number of flow records observed (across merges).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Approximate size of the tree on the wire, in bytes: one flat frame
    /// entry (key + own score + parent index) per node. Used by the
    /// transfer-optimization experiments to account export volume.
    pub fn wire_size(&self) -> usize {
        self.len()
            * (std::mem::size_of::<FlowKey>()
                + std::mem::size_of::<u64>()
                + std::mem::size_of::<u32>())
    }

    /// Deterministic deep in-memory footprint in bytes: the tree header
    /// plus the arena ([`Flowtree::header_bytes`] +
    /// [`Flowtree::arena_bytes`]). Still a pure function of the
    /// materialized node count (never of slot-vector capacity or free-list
    /// length), so structurally equal trees always agree. Trees sharing one
    /// arena each report the full figure; the store-level accounting uses
    /// the split accessors to count a shared arena once.
    pub fn deep_bytes(&self) -> usize {
        self.header_bytes() + self.arena_bytes()
    }

    /// The non-shared part of [`Flowtree::deep_bytes`]: the per-tree
    /// header that exists even when the arena is deduplicated away.
    pub fn header_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// The shareable part of [`Flowtree::deep_bytes`]: arena slot plus
    /// key-index entry per live node, plus the fixed arena header. A pure
    /// function of the node count.
    pub fn arena_bytes(&self) -> usize {
        let per_node = std::mem::size_of::<Slot>()
            + std::mem::size_of::<FlowKey>()
            + std::mem::size_of::<NodeId>();
        self.len() * per_node + std::mem::size_of::<Arena>()
    }

    /// Number of materialized nodes — an alias of [`Flowtree::len`] named
    /// for the accounting plane's per-query work counters.
    pub fn node_count(&self) -> usize {
        self.len()
    }

    /// The enforced ceiling on live arena nodes (see
    /// [`FlowtreeConfig::node_budget`]); every node allocation asserts
    /// against it.
    pub fn node_budget(&self) -> usize {
        self.node_budget
    }

    /// Number of allocated arena slots (live + free) — the arena's real
    /// memory extent. Exposed for the arena law tests and benches.
    pub fn arena_slots(&self) -> usize {
        self.arena.slots_len()
    }

    /// Number of arena slots currently on the free list.
    pub fn arena_free(&self) -> usize {
        self.arena.free_len()
    }

    /// The arena's storage-identity token: preserved by O(1) snapshots
    /// ([`Clone`]) and by [`Flowtree::dedup_with`], re-minted whenever a
    /// copy-on-write split or deep copy creates new storage. Two trees
    /// report the same token exactly when they share one arena — the
    /// accounting plane's key for counting shared storage once.
    pub fn storage_token(&self) -> u64 {
        self.arena.token()
    }

    /// Whether `self` and `other` share one arena (same `Arc`).
    pub fn shares_storage_with(&self, other: &Flowtree) -> bool {
        Arc::ptr_eq(&self.arena, &other.arena)
    }

    /// A structural fingerprint for value numbering: a commutative,
    /// deterministic hash over the `(key, own score)` multiset plus the
    /// tree's counters. Layout- and history-independent — equal trees hash
    /// equal regardless of slot order or compression path. Used by the
    /// summary store as a cheap pre-filter before [`Flowtree::dedup_with`].
    pub fn value_number(&self) -> u64 {
        let mut acc: u64 = 0;
        for id in self.arena.live_ids() {
            let s = self.arena.slot(id);
            let mut h = std::collections::hash_map::DefaultHasher::new();
            s.key.hash(&mut h);
            s.own.value().hash(&mut h);
            acc = acc.wrapping_add(h.finish());
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.len().hash(&mut h);
        self.total.value().hash(&mut h);
        self.records.hash(&mut h);
        acc.wrapping_add(h.finish())
    }

    /// Hash-consing across trees: if `canonical` is structurally equal to
    /// `self` (same configuration, keys, scores, and counters), drop this
    /// tree's arena and share `canonical`'s instead. Returns whether the
    /// arenas were united; `false` when the trees differ or already share
    /// storage. After a successful dedup the trees report one
    /// [`Flowtree::storage_token`] and later mutation of either side
    /// copy-on-writes, so sharing is never observable through the API.
    pub fn dedup_with(&mut self, canonical: &Flowtree) -> bool {
        if Arc::ptr_eq(&self.arena, &canonical.arena) || self != canonical {
            return false;
        }
        self.arena = Arc::clone(&canonical.arena);
        true
    }

    /// Ingests one raw flow record ("uses existing network traces as input
    /// and works on the fly").
    pub fn observe(&mut self, record: &FlowRecord) {
        let key = FlowKey::from_record_projected(record, self.config.features);
        let score = self.config.score_kind.score(record);
        self.records += 1;
        self.add_mass(&key, score);
    }

    /// Adds `score` at `key` (normalized and projected first). Compresses if
    /// the node budget is exceeded.
    pub fn add_mass(&mut self, key: &FlowKey, score: Popularity) {
        let key = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let id = self.ensure_node(&key);
        self.arena_mut().slot_mut(id).own += score;
        self.total += score;
        self.maybe_compress();
    }

    /// Inserts `key` with `score` *without* materializing missing ancestors
    /// (the node attaches under its deepest already-materialized ancestor).
    /// Used to reconstruct a tree from its flat serialized form exactly.
    pub(crate) fn insert_exact(&mut self, key: &FlowKey, score: Popularity) {
        let key = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let id = if let Some(id) = self.arena.lookup(&key) {
            id
        } else {
            let anchor = self
                .config
                .schema
                .ancestors(&key)
                .find_map(|anc| self.arena.lookup(&anc))
                .unwrap_or(NodeId::ROOT);
            self.attach_new(key, anchor)
        };
        self.arena_mut().slot_mut(id).own += score;
        self.total += score;
    }

    pub(crate) fn maybe_compress(&mut self) {
        if self.len() > self.config.capacity {
            self.compress_to(self.config.compact_target());
        }
        self.tighten_budget();
    }

    /// **Compress** (Table II): folds the least-popular leaves into their
    /// parents until at most `target` nodes remain. Score mass is preserved
    /// exactly; detail below the surviving nodes is lost. Ties on the own
    /// score break by key, so the fold order — and the resulting tree — is
    /// a function of the tree's contents, never of arena layout.
    pub fn compress_to(&mut self, target: usize) {
        let target = target.max(1);
        if self.len() <= target {
            return;
        }
        // Min-heap of (own score, key, id) over current leaves.
        let mut heap: BinaryHeap<Reverse<(u64, FlowKey, NodeId)>> = self
            .arena
            .live_ids()
            .filter(|&id| id != NodeId::ROOT && !self.arena.has_children(id))
            .map(|id| {
                let s = self.arena.slot(id);
                Reverse((s.own.value(), s.key, id))
            })
            .collect();
        while self.len() > target {
            let Some(Reverse((score, key, id))) = heap.pop() else {
                break; // only the root remains
            };
            // Skip stale entries (node already evicted — possibly with the
            // slot reused under a new key — or gained children, or its
            // score snapshot is outdated). Compression only frees slots,
            // but the key check also guards the general reuse case.
            {
                let s = self.arena.slot(id);
                if s.key != key || s.own.value() != score || s.first_child.is_some() {
                    continue;
                }
            }
            let (parent, own) = {
                let s = self.arena.slot(id);
                (s.parent, s.own)
            };
            self.arena_mut().slot_mut(parent).own += own;
            self.detach_and_free(id);
            if parent != NodeId::ROOT && !self.arena.has_children(parent) {
                let s = self.arena.slot(parent);
                heap.push(Reverse((s.own.value(), s.key, parent)));
            }
        }
    }

    /// Read-only views of all nodes in canonical pre-order (children in
    /// key order), with subtree scores computed.
    pub fn nodes(&self) -> Vec<NodeView> {
        let subtree = self.subtree_scores();
        self.preorder_ids()
            .into_iter()
            .map(|id| {
                let s = self.arena.slot(id);
                NodeView {
                    key: s.key,
                    own_score: s.own,
                    subtree_score: subtree[id],
                    is_leaf: s.first_child.is_none(),
                }
            })
            .collect()
    }

    /// The tree's flat serialized form: every node in canonical pre-order
    /// with its parent's position in the same sequence. This is the arena
    /// slice the cold-tier codec ships as-is; see [`FlatNode`].
    pub fn flat_nodes(&self) -> Vec<FlatNode> {
        let mut pos: IdMap<u32> = IdMap::new(&self.arena, FLAT_NO_PARENT);
        let mut out = Vec::with_capacity(self.len());
        for id in self.preorder_ids() {
            let s = self.arena.slot(id);
            let parent = if id == NodeId::ROOT {
                FLAT_NO_PARENT
            } else {
                pos[s.parent]
            };
            pos[id] = out.len() as u32;
            out.push(FlatNode {
                key: s.key,
                own: s.own,
                parent,
            });
        }
        out
    }

    /// The view of a single key's node, if materialized.
    pub fn get(&self, key: &FlowKey) -> Option<NodeView> {
        let norm = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        let id = self.arena.lookup(&norm)?;
        let s = self.arena.slot(id);
        Some(NodeView {
            key: s.key,
            own_score: s.own,
            subtree_score: self.subtree_score_of(id),
            is_leaf: s.first_child.is_none(),
        })
    }

    /// Resets the tree to empty, keeping the configuration (including the
    /// original base capacity, so the granularity dial stays meaningful
    /// across epoch rotations). Drops this tree's reference to the arena —
    /// outstanding snapshots keep theirs.
    pub fn clear(&mut self) {
        let base = self.base_capacity;
        *self = Flowtree::new(self.config.clone());
        self.base_capacity = base;
    }

    // ------------------------------------------------------------------
    // internal plumbing
    // ------------------------------------------------------------------

    /// Mutable arena access: copy-on-write. If the arena is shared with a
    /// snapshot or a deduplicated twin, this clones it (minting a fresh
    /// storage token); a sole owner mutates in place.
    fn arena_mut(&mut self) -> &mut Arena {
        Arc::make_mut(&mut self.arena)
    }

    /// Re-derives the node budget from the configuration, keeping
    /// single-insert headroom above the current size (relevant only after
    /// an over-capacity bulk rebuild).
    fn tighten_budget(&mut self) {
        let slack = self.config.schema.max_depth() + 2;
        self.node_budget = self.config.node_budget().max(self.len() + slack);
    }

    /// Raises the budget for a bulk operation that transiently holds up to
    /// `extra` nodes beyond the current size (merge, rebuild). The caller
    /// re-tightens via [`Flowtree::tighten_budget`] / `maybe_compress`.
    pub(crate) fn reserve_nodes(&mut self, extra: usize) {
        let slack = self.config.schema.max_depth() + 2;
        self.node_budget = self.node_budget.max(self.len() + extra + slack);
    }

    pub(crate) fn root_id(&self) -> NodeId {
        NodeId::ROOT
    }

    pub(crate) fn live_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.arena.live_ids()
    }

    pub(crate) fn records_mut(&mut self) -> &mut u64 {
        &mut self.records
    }

    /// `(key, own score)` of a live node.
    pub(crate) fn node_ref(&self, id: NodeId) -> (FlowKey, Popularity) {
        let s = self.arena.slot(id);
        (s.key, s.own)
    }

    /// Whether the node currently has no children.
    pub(crate) fn node_ref_children_empty(&self, id: NodeId) -> bool {
        !self.arena.has_children(id)
    }

    /// Children of a node, in key order.
    pub(crate) fn children_of(&self, id: NodeId) -> Vec<NodeId> {
        self.arena.children(id).collect()
    }

    /// Arena id of `key`'s node (after normalization/projection), if any.
    pub(crate) fn id_of(&self, key: &FlowKey) -> Option<NodeId> {
        let norm = self
            .config
            .schema
            .normalize(&key.project(self.config.features));
        self.arena.lookup(&norm)
    }

    /// All live ids in canonical pre-order (children visited in key order).
    fn preorder_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![NodeId::ROOT];
        let mut kids: Vec<NodeId> = Vec::new();
        while let Some(id) = stack.pop() {
            out.push(id);
            kids.clear();
            kids.extend(self.arena.children(id));
            for &c in kids.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Returns the id of `key`'s node, materializing it (and any missing
    /// ancestors) if needed. `key` must already be normalized and projected.
    fn ensure_node(&mut self, key: &FlowKey) -> NodeId {
        if let Some(id) = self.arena.lookup(key) {
            return id;
        }
        // Walk up until we hit a materialized ancestor.
        let mut missing = vec![*key];
        let mut anchor = NodeId::ROOT;
        for anc in self.config.schema.ancestors(key) {
            if let Some(id) = self.arena.lookup(&anc) {
                anchor = id;
                break;
            }
            missing.push(anc);
        }
        // Materialize top-down so each new node hangs off the previous one.
        let mut parent = anchor;
        for k in missing.into_iter().rev() {
            parent = self.attach_new(k, parent);
        }
        parent
    }

    /// Creates a node for `key` under `parent`, re-parenting any of
    /// `parent`'s children that belong below the new node (keeps the
    /// invariant that each node's parent is its deepest materialized proper
    /// ancestor).
    ///
    /// # Panics
    ///
    /// Panics if the allocation would exceed the node budget.
    fn attach_new(&mut self, key: FlowKey, parent: NodeId) -> NodeId {
        assert!(
            self.arena.len() < self.node_budget,
            "flowtree node budget exceeded ({} nodes)",
            self.node_budget
        );
        let arena = self.arena_mut();
        let id = arena.alloc(key);
        // Steal children of `parent` that are more specific than `key`.
        let stolen: Vec<NodeId> = {
            let shared: &Arena = arena;
            shared
                .children(parent)
                .filter(|&c| key.contains(&shared.slot(c).key))
                .collect()
        };
        for c in stolen {
            arena.unlink_child(parent, c);
            arena.link_child(id, c);
        }
        arena.link_child(parent, id);
        id
    }

    /// Removes a (leaf or internal) node from its parent and frees the slot.
    /// Children must have been handled by the caller.
    pub(crate) fn detach_and_free(&mut self, id: NodeId) {
        self.arena_mut().free(id);
    }

    /// Subtracts `amount` from a node's own score (saturating) and from the
    /// tree total, returning how much was actually removed.
    pub(crate) fn remove_own(&mut self, id: NodeId, amount: Popularity) -> Popularity {
        let node = self.arena_mut().slot_mut(id);
        let removed = if amount > node.own { node.own } else { amount };
        node.own -= removed;
        self.total -= removed;
        removed
    }

    /// Post-order subtree scores for all live slots (dense by arena id).
    pub(crate) fn subtree_scores(&self) -> IdMap<Popularity> {
        let mut scores = IdMap::new(&self.arena, Popularity::ZERO);
        // Iterative post-order from the root.
        let mut stack = vec![(NodeId::ROOT, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                let mut s = self.arena.slot(id).own;
                for c in self.arena.children(id) {
                    s += scores[c];
                }
                scores[id] = s;
            } else {
                stack.push((id, true));
                for c in self.arena.children(id) {
                    stack.push((c, false));
                }
            }
        }
        scores
    }

    pub(crate) fn subtree_score_of(&self, id: NodeId) -> Popularity {
        let mut total = Popularity::ZERO;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            total += self.arena.slot(cur).own;
            stack.extend(self.arena.children(cur));
        }
        total
    }

    /// Verifies every structural invariant; used by tests and property
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        self.arena.check();
        assert!(
            self.len() <= self.node_budget,
            "arena len {} exceeds node budget {}",
            self.len(),
            self.node_budget
        );
        let mut seen = 0usize;
        let mut own_sum = Popularity::ZERO;
        for id in self.arena.live_ids() {
            seen += 1;
            let s = self.arena.slot(id);
            own_sum += s.own;
            assert_eq!(
                self.arena.lookup(&s.key),
                Some(id),
                "index out of sync for {}",
                s.key
            );
            if id == NodeId::ROOT {
                assert!(s.parent.is_none(), "root has a parent");
                assert!(s.key.is_root(), "root key is not the wildcard key");
            } else {
                assert!(s.parent.is_some(), "non-root node without parent");
                let pn = self.arena.slot(s.parent);
                assert!(
                    pn.key.contains(&s.key) && pn.key != s.key,
                    "parent {} does not strictly contain child {}",
                    pn.key,
                    s.key
                );
                assert!(
                    self.arena.children(s.parent).any(|c| c == id),
                    "parent {} missing child link to {}",
                    pn.key,
                    s.key
                );
            }
            assert!(
                self.config.schema.is_normalized(&s.key),
                "node key {} is not on the schema ladder",
                s.key
            );
        }
        assert_eq!(seen, self.len(), "len out of sync with live nodes");
        assert_eq!(
            own_sum, self.total,
            "score mass not conserved: sum {own_sum} != total {}",
            self.total
        );
    }
}

impl PartialEq for Flowtree {
    /// Two Flowtrees are equal when they summarize the same mass at the same
    /// keys under the same configuration (arena layout, storage sharing,
    /// and the transient node budget are all irrelevant).
    fn eq(&self, other: &Self) -> bool {
        if self.config != other.config
            || self.len() != other.len()
            || self.total != other.total
            || self.records != other.records
        {
            return false;
        }
        if Arc::ptr_eq(&self.arena, &other.arena) {
            return true;
        }
        self.arena.live_ids().all(|id| {
            let s = self.arena.slot(id);
            other
                .arena
                .lookup(&s.key)
                .is_some_and(|oid| other.arena.slot(oid).own == s.own)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::key::FeatureSet;
    use megastream_flow::score::ScoreKind;
    use proptest::prelude::*;

    fn rec(src: &str, dst: &str, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 4242)
            .dst(dst.parse().unwrap(), 80)
            .packets(packets)
            .build()
    }

    fn small_tree() -> Flowtree {
        Flowtree::new(FlowtreeConfig::default().with_capacity(1024))
    }

    #[test]
    fn empty_tree() {
        let t = small_tree();
        assert!(t.is_empty());
        assert_eq!(t.len(), 1);
        assert_eq!(t.total(), Popularity::ZERO);
        t.check_invariants();
    }

    #[test]
    fn observe_builds_chain() {
        let mut t = small_tree();
        t.observe(&rec("10.0.0.1", "1.1.1.1", 7));
        // Exact node + every generalization up to the root.
        assert_eq!(t.len(), t.config().schema.max_depth() + 1);
        assert_eq!(t.total().value(), 7);
        t.check_invariants();
        let exact = FlowKey::from_record(&rec("10.0.0.1", "1.1.1.1", 0));
        let view = t.get(&exact).unwrap();
        assert_eq!(view.own_score.value(), 7);
        assert!(view.is_leaf);
    }

    #[test]
    fn repeated_observations_accumulate() {
        let mut t = small_tree();
        for _ in 0..5 {
            t.observe(&rec("10.0.0.1", "1.1.1.1", 2));
        }
        assert_eq!(t.total().value(), 10);
        assert_eq!(t.records(), 5);
        let exact = FlowKey::from_record(&rec("10.0.0.1", "1.1.1.1", 0));
        assert_eq!(t.get(&exact).unwrap().own_score.value(), 10);
        t.check_invariants();
    }

    #[test]
    fn compression_preserves_mass() {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(64));
        for i in 0..200u32 {
            t.observe(&rec(
                &format!("10.{}.{}.{}", i % 3, (i / 3) % 250, i % 250),
                "1.1.1.1",
                1 + (i as u64 % 7),
            ));
        }
        assert!(t.len() <= 64);
        let expect: u64 = (0..200u32).map(|i| 1 + (i as u64 % 7)).sum();
        assert_eq!(t.total().value(), expect);
        t.check_invariants();
    }

    #[test]
    fn compress_to_explicit_target() {
        let mut t = small_tree();
        for i in 0..100u32 {
            t.observe(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 1));
        }
        let before = t.total();
        t.compress_to(10);
        assert!(t.len() <= 10);
        assert_eq!(t.total(), before);
        t.check_invariants();
        // Root query still exact after compression.
        assert_eq!(t.subtree_score_of(t.root_id()), before);
    }

    #[test]
    fn compression_keeps_heavy_leaves() {
        let mut t = small_tree();
        // One elephant and many mice.
        t.observe(&rec("10.9.9.9", "1.1.1.1", 1_000_000));
        for i in 0..100u32 {
            t.observe(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 1));
        }
        t.compress_to(15);
        let elephant = FlowKey::from_record(&rec("10.9.9.9", "1.1.1.1", 0));
        let view = t.get(&elephant).expect("elephant evicted");
        assert!(view.own_score.value() >= 1_000_000);
    }

    #[test]
    fn reparenting_keeps_deepest_ancestor_invariant() {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(8));
        // Fill, compress away intermediates, then insert a key between the
        // root region and a surviving deep node.
        for i in 0..50u32 {
            t.observe(&rec(&format!("10.1.{}.7", i % 30), "1.1.1.1", 1));
        }
        t.observe(&rec("10.1.2.3", "1.1.1.1", 100));
        t.check_invariants();
        for i in 0..50u32 {
            t.observe(&rec(&format!("10.1.2.{}", i), "1.1.1.1", 2));
        }
        t.check_invariants();
    }

    #[test]
    fn clear_resets() {
        let mut t = small_tree();
        t.observe(&rec("10.0.0.1", "1.1.1.1", 7));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.records(), 0);
        t.check_invariants();
    }

    #[test]
    fn feature_projection_collapses_keys() {
        let mut t = Flowtree::new(
            FlowtreeConfig::default()
                .with_features(FeatureSet::SRC_DST_IP)
                .with_score_kind(ScoreKind::Flows),
        );
        let mut r1 = rec("10.0.0.1", "1.1.1.1", 5);
        r1.src_port = 1111;
        let mut r2 = rec("10.0.0.1", "1.1.1.1", 5);
        r2.src_port = 2222;
        t.observe(&r1);
        t.observe(&r2);
        let key = FlowKey::from_record(&r1).project(FeatureSet::SRC_DST_IP);
        assert_eq!(t.get(&key).unwrap().own_score.value(), 2);
        t.check_invariants();
    }

    #[test]
    fn wire_size_tracks_len() {
        let mut t = small_tree();
        let empty = t.wire_size();
        t.observe(&rec("10.0.0.1", "1.1.1.1", 7));
        assert!(t.wire_size() > empty);
    }

    #[test]
    fn snapshot_is_cheap_and_isolated() {
        let mut t = small_tree();
        for i in 0..20u32 {
            t.observe(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 3));
        }
        let snap = t.clone();
        assert!(t.shares_storage_with(&snap), "clone must share the arena");
        assert_eq!(t.storage_token(), snap.storage_token());
        // Mutating the original copy-on-writes: the snapshot is untouched
        // and the storage identities diverge.
        t.observe(&rec("10.9.9.9", "1.1.1.1", 100));
        assert!(!t.shares_storage_with(&snap));
        assert_ne!(t.storage_token(), snap.storage_token());
        assert_eq!(snap.total().value(), 60);
        assert_eq!(t.total().value(), 160);
        snap.check_invariants();
        t.check_invariants();
    }

    #[test]
    fn value_number_is_layout_independent() {
        // Same contents via different construction orders → same VN.
        let mut a = small_tree();
        let mut b = small_tree();
        for i in 0..15u32 {
            a.observe(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 2));
        }
        for i in (0..15u32).rev() {
            b.observe(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 2));
        }
        assert_eq!(a, b);
        assert_eq!(a.value_number(), b.value_number());
        // Different contents → (overwhelmingly) different VN.
        b.observe(&rec("10.0.0.1", "1.1.1.1", 1));
        assert_ne!(a.value_number(), b.value_number());
    }

    #[test]
    fn dedup_unites_equal_trees_only() {
        let mut a = small_tree();
        let mut b = small_tree();
        for i in 0..10u32 {
            a.observe(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 2));
            b.observe(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 2));
        }
        assert!(!a.shares_storage_with(&b));
        assert!(a.dedup_with(&b), "equal trees must unite");
        assert!(a.shares_storage_with(&b));
        assert!(!a.dedup_with(&b), "already-shared trees report false");
        let mut c = small_tree();
        c.observe(&rec("10.0.0.1", "1.1.1.1", 1));
        assert!(!c.dedup_with(&b), "different trees must not unite");
        a.check_invariants();
        b.check_invariants();
    }

    #[test]
    fn flat_roundtrip_reproduces_tree() {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(64));
        for i in 0..150u32 {
            t.observe(&rec(
                &format!("10.{}.{}.9", i % 5, i % 40),
                "1.1.1.1",
                1 + u64::from(i % 11),
            ));
        }
        let flat = t.flat_nodes();
        assert_eq!(flat.len(), t.len());
        assert_eq!(flat[0].parent, FLAT_NO_PARENT);
        // Pre-order: every parent index precedes its node.
        for (i, n) in flat.iter().enumerate().skip(1) {
            assert!((n.parent as usize) < i);
        }
        let back = Flowtree::try_from_flat(t.config().clone(), &flat, t.records())
            .expect("valid flat form decodes");
        assert_eq!(back, t);
        back.check_invariants();
    }

    #[test]
    fn try_from_flat_rejects_structural_attacks() {
        let mut t = small_tree();
        t.observe(&rec("10.0.0.1", "1.1.1.1", 7));
        let config = t.config().clone();
        let flat = t.flat_nodes();

        assert_eq!(
            Flowtree::try_from_flat(config.clone(), &[], 0),
            Err(FlatTreeError::Empty)
        );
        // Entry 0 must be the root.
        let mut bad = flat.clone();
        bad[0].parent = 0;
        assert_eq!(
            Flowtree::try_from_flat(config.clone(), &bad, 0),
            Err(FlatTreeError::Root)
        );
        // Self/forward parent link (a cycle in pointer terms).
        let mut bad = flat.clone();
        bad[1].parent = 1;
        assert_eq!(
            Flowtree::try_from_flat(config.clone(), &bad, 0),
            Err(FlatTreeError::Order)
        );
        // Out-of-range parent id.
        let mut bad = flat.clone();
        bad[2].parent = 9_999;
        assert_eq!(
            Flowtree::try_from_flat(config.clone(), &bad, 0),
            Err(FlatTreeError::Order)
        );
        // Duplicate key.
        let mut bad = flat.clone();
        bad[2].key = bad[1].key;
        assert!(Flowtree::try_from_flat(config.clone(), &bad, 0).is_err());
        // Parent that does not contain the child.
        let mut bad = flat.clone();
        let deepest = bad.len() - 1;
        bad.swap(1, deepest);
        assert!(Flowtree::try_from_flat(config.clone(), &bad, 0).is_err());
        // Node count beyond the budget.
        let tight = FlowtreeConfig::default().with_capacity(1);
        let mut big = Flowtree::new(config.clone());
        for i in 0..40u32 {
            big.insert_exact(
                &FlowKey::from_record(&rec(&format!("10.0.{}.1", i), "1.1.1.1", 0)),
                Popularity::new(1),
            );
        }
        assert_eq!(
            Flowtree::try_from_flat(tight, &big.flat_nodes(), 0),
            Err(FlatTreeError::Budget)
        );
    }

    #[test]
    #[should_panic(expected = "node budget exceeded")]
    fn budget_is_enforced_on_alloc() {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(4));
        // insert_exact never compresses, so pushing far past the budget
        // without a reserve must trip the assertion.
        for i in 0..500u32 {
            t.insert_exact(
                &FlowKey::from_record(&rec(&format!("10.{}.{}.1", i % 50, i), "1.1.1.1", 0)),
                Popularity::new(1),
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mass conservation and structural invariants hold under arbitrary
        /// observation sequences and capacities.
        #[test]
        fn prop_invariants_hold(
            caps in 4usize..64,
            flows in proptest::collection::vec((0u8..8, 0u8..8, 1u64..100), 1..200),
        ) {
            let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(caps));
            let mut expected = 0u64;
            for (a, b, pkts) in flows {
                t.observe(&rec(
                    &format!("10.{a}.{b}.1"),
                    &format!("192.168.{b}.{a}"),
                    pkts,
                ));
                expected += pkts;
            }
            t.check_invariants();
            prop_assert!(t.len() <= caps.max(2));
            prop_assert_eq!(t.total().value(), expected);
            prop_assert_eq!(t.subtree_score_of(t.root_id()).value(), expected);
        }
    }
}
