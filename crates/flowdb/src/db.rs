//! The FlowDB summary store and index.

use megastream_flow::time::TimeWindow;
use megastream_flowtree::Flowtree;
use megastream_telemetry::{labeled, ScopedTimer, Telemetry, TraceSpan, LATENCY_MICROS_BOUNDS};

use std::collections::BTreeSet;

use crate::ast::Query;
use crate::exec::{execute_partial_traced, execute_traced, QueryError, QueryResult};
use crate::par::Parallelism;

/// One indexed flow summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DbEntry {
    /// Where the summary was produced (a data-store name).
    pub location: String,
    /// The time period it covers.
    pub window: TimeWindow,
    /// The summary itself.
    pub tree: Flowtree,
}

/// FlowDB: "takes flow summaries as input, stores, and indexes them while
/// using them to answer FlowQL queries" (§VI).
#[derive(Debug, Clone, Default)]
pub struct FlowDb {
    entries: Vec<DbEntry>,
    tel: Telemetry,
    par: Parallelism,
}

impl PartialEq for FlowDb {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl FlowDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        FlowDb::default()
    }

    /// Connects the database to a telemetry registry: insert counts and
    /// per-operator execution timings are recorded. Passing
    /// [`Telemetry::disabled`] detaches again.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
    }

    /// The telemetry handle execution stages record into.
    pub(crate) fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Sets how many worker threads the per-location query fan-out uses.
    /// The default is [`Parallelism::Auto`]; every setting produces the
    /// same results ([`Parallelism::Sequential`] is the oracle the
    /// equivalence tests compare against).
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// Builder-style [`FlowDb::set_parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.set_parallelism(par);
        self
    }

    /// The fan-out parallelism in effect.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Inserts one flow summary.
    pub fn insert(&mut self, location: impl Into<String>, window: TimeWindow, tree: Flowtree) {
        self.entries.push(DbEntry {
            location: location.into(),
            window,
            tree,
        });
        self.tel.counter("flowdb.summaries_total").inc();
        self.tel
            .gauge("flowdb.index_bytes")
            .set(self.total_bytes() as i64);
    }

    /// Number of indexed summaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of all indexed summaries.
    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.tree.wire_size()).sum()
    }

    /// Distinct locations with stored summaries, sorted.
    pub fn locations(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.entries.iter().map(|e| e.location.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All windows stored for `location`, sorted by start.
    pub fn windows_of(&self, location: &str) -> Vec<TimeWindow> {
        let mut out: Vec<TimeWindow> = self
            .entries
            .iter()
            .filter(|e| e.location == location)
            .map(|e| e.window)
            .collect();
        out.sort_by_key(|w| w.start);
        out
    }

    /// Entries matching a query's time selection and location restrictions.
    pub(crate) fn select<'a>(&'a self, query: &'a Query) -> impl Iterator<Item = &'a DbEntry> {
        let locations = query.locations();
        self.entries.iter().filter(move |e| {
            query.time.matches(e.window)
                && (locations.is_empty() || locations.contains(&e.location.as_str()))
        })
    }

    /// Executes a parsed FlowQL query.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] if no summary matches the selection or the
    /// matching summaries have incompatible configurations.
    pub fn execute(&self, query: &Query) -> Result<QueryResult, QueryError> {
        self.execute_traced(query, &TraceSpan::disabled())
    }

    /// [`FlowDb::execute`] with causal tracing: execution stages (plan,
    /// per-location fan-out, merge, per-operator run) are recorded as
    /// children of `parent`, forming the `EXPLAIN ANALYZE` lineage tree.
    /// A null `parent` (see [`TraceSpan::disabled`]) records nothing.
    ///
    /// # Errors
    ///
    /// Same as [`FlowDb::execute`].
    pub fn execute_traced(
        &self,
        query: &Query,
        parent: &TraceSpan,
    ) -> Result<QueryResult, QueryError> {
        if !self.tel.is_enabled() {
            return execute_traced(self, query, parent);
        }
        let kind = query.op.kind();
        let timer = ScopedTimer::start(&self.tel.histogram(
            &labeled("flowdb.exec.micros", "op", kind),
            LATENCY_MICROS_BOUNDS,
        ));
        self.tel
            .counter(&labeled("flowdb.exec.total", "op", kind))
            .inc();
        let result = execute_traced(self, query, parent);
        match &result {
            Err(_) => self.tel.counter("flowdb.exec.errors_total").inc(),
            Ok(r) => {
                self.record_result_metrics(r);
            }
        }
        timer.stop();
        result
    }

    /// Result-shape metrics shared by the complete and partial execution
    /// paths: the answer's row count, the completeness percentage the
    /// ops plane's degradation rule watches, and the cost-accounting
    /// distributions (bytes merged and nodes visited per query).
    fn record_result_metrics(&self, result: &QueryResult) {
        self.tel
            .histogram("flowdb.exec.rows", EXEC_ROWS_BOUNDS)
            .record(result.rows.len() as u64);
        let pct = (result.completeness.fraction() * 100.0).round() as i64;
        self.tel.gauge("flowdb.exec.completeness_pct").set(pct);
        self.tel
            .histogram("flowdb.cost.bytes_merged", COST_BYTES_BOUNDS)
            .record(result.cost.bytes_merged);
        self.tel
            .histogram("flowdb.cost.nodes_visited", COST_NODES_BOUNDS)
            .record(result.cost.nodes_visited as u64);
    }

    /// Degraded execution: summaries from `unavailable` locations are
    /// excluded and the result's
    /// [`Completeness`](crate::exec::Completeness) records locations
    /// reached vs matching. If every matching location is unavailable the
    /// result is empty with completeness `0/n`, not an error.
    ///
    /// # Errors
    ///
    /// Same as [`FlowDb::execute`], except unreachable locations no longer
    /// cause incomplete results to error.
    pub fn execute_partial(
        &self,
        query: &Query,
        unavailable: &BTreeSet<String>,
    ) -> Result<QueryResult, QueryError> {
        self.execute_partial_traced(query, &TraceSpan::disabled(), unavailable)
    }

    /// [`FlowDb::execute_partial`] with causal tracing: skipped locations
    /// are recorded as `fanout` spans annotated `skipped=unreachable`, so
    /// the lineage tree explains *why* a result is partial.
    ///
    /// # Errors
    ///
    /// Same as [`FlowDb::execute_partial`].
    pub fn execute_partial_traced(
        &self,
        query: &Query,
        parent: &TraceSpan,
        unavailable: &BTreeSet<String>,
    ) -> Result<QueryResult, QueryError> {
        if !self.tel.is_enabled() {
            return execute_partial_traced(self, query, parent, unavailable);
        }
        let kind = query.op.kind();
        let timer = ScopedTimer::start(&self.tel.histogram(
            &labeled("flowdb.exec.micros", "op", kind),
            LATENCY_MICROS_BOUNDS,
        ));
        self.tel
            .counter(&labeled("flowdb.exec.total", "op", kind))
            .inc();
        let result = execute_partial_traced(self, query, parent, unavailable);
        match &result {
            Err(_) => self.tel.counter("flowdb.exec.errors_total").inc(),
            Ok(r) => {
                if !r.completeness.is_complete() {
                    self.tel.counter("flowdb.exec.partial_total").inc();
                }
                self.record_result_metrics(r);
            }
        }
        timer.stop();
        result
    }
}

/// Bucket bounds for the per-query answer row count
/// (`flowdb.exec.rows`).
const EXEC_ROWS_BOUNDS: &[u64] = &[1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 10_000];

/// Bucket bounds for per-query merged wire bytes
/// (`flowdb.cost.bytes_merged`).
const COST_BYTES_BOUNDS: &[u64] = &[
    1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];

/// Bucket bounds for per-query Flowtree nodes visited
/// (`flowdb.cost.nodes_visited`).
const COST_NODES_BOUNDS: &[u64] = &[
    16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
];

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::record::FlowRecord;
    use megastream_flow::time::{TimeDelta, Timestamp};
    use megastream_flowtree::FlowtreeConfig;

    fn tree(packets: u64) -> Flowtree {
        let mut t = Flowtree::new(FlowtreeConfig::default());
        t.observe(
            &FlowRecord::builder()
                .proto(6)
                .src("10.0.0.1".parse().unwrap(), 80)
                .dst("1.1.1.1".parse().unwrap(), 443)
                .packets(packets)
                .build(),
        );
        t
    }

    fn w(s: u64) -> TimeWindow {
        TimeWindow::starting_at(Timestamp::from_secs(s), TimeDelta::from_secs(60))
    }

    #[test]
    fn insert_and_index() {
        let mut db = FlowDb::new();
        db.insert("a", w(0), tree(1));
        db.insert("b", w(0), tree(2));
        db.insert("a", w(60), tree(3));
        assert_eq!(db.len(), 3);
        assert_eq!(db.locations(), vec!["a", "b"]);
        assert_eq!(db.windows_of("a").len(), 2);
        assert_eq!(db.windows_of("a")[1].start, Timestamp::from_secs(60));
        assert!(db.total_bytes() > 0);
    }

    #[test]
    fn select_filters_by_time_and_location() {
        use crate::ast::{Restriction, SelectOp, TimeSelection};
        let mut db = FlowDb::new();
        db.insert("a", w(0), tree(1));
        db.insert("b", w(0), tree(2));
        db.insert("a", w(60), tree(3));
        let q = Query {
            op: SelectOp::Query,
            time: TimeSelection::Windows(vec![w(0)]),
            restrictions: vec![Restriction::Location("a".into())],
            group_by_location: false,
        };
        let selected: Vec<_> = db.select(&q).collect();
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].location, "a");
        assert_eq!(selected[0].window, w(0));
    }
}
