//! The parallelism knob of the data plane.
//!
//! The paper's property P2 (combinable summaries) is what makes the
//! per-location query fan-out embarrassingly parallel: each location's
//! summaries merge into a partial result independently, and the partials
//! combine in a **fixed location order** regardless of which thread
//! produced them. [`Parallelism`] selects how many worker threads carry
//! that fan-out — the *result* is identical across every setting, which is
//! why [`Parallelism::Sequential`] is kept forever as the test oracle
//! (`tests/parallel_e2e.rs` pins the equivalence, `tests/merge_laws.rs`
//! the algebraic laws it rests on).

use std::num::NonZeroUsize;

use megastream_telemetry::clock;

/// How many worker threads data-plane fan-outs use.
///
/// Applies to FlowDB's per-location query fan-out and (through the same
/// type re-exported from the `megastream` facade) to the hierarchy pump's
/// sibling epoch rotations. Every setting produces bit-identical results;
/// only wall-clock time differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One thread, inline — the reference semantics and the test oracle.
    Sequential,
    /// A fixed worker count (`Threads(0)` is treated as `Threads(1)`).
    Threads(usize),
    /// Use up to [`std::thread::available_parallelism`] workers.
    #[default]
    Auto,
}

impl Parallelism {
    /// The number of workers to use for `items` independent work units:
    /// the configured width, clamped to `[1, items]`. Zero items still
    /// report one worker (the caller runs inline and does nothing).
    pub fn worker_count(self, items: usize) -> usize {
        let width = match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        };
        width.clamp(1, items.max(1))
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Sequential => write!(f, "sequential"),
            Parallelism::Threads(n) => write!(f, "threads({n})"),
            Parallelism::Auto => write!(f, "auto"),
        }
    }
}

/// Maps `f` over `items` on up to `workers` scoped threads, returning the
/// outputs **in input order** — the deterministic fan-out primitive behind
/// the parallel data plane (FlowDB's per-location query fan-out and the
/// store hierarchy's sibling epoch rotations both run on it). Work unit
/// `i` goes to worker `i % workers` (striped), so the assignment is itself
/// deterministic.
///
/// With one worker (or one item) everything runs inline on the caller's
/// thread: that *is* the sequential path, not a simulation of it.
///
/// `report` receives each worker's busy time in microseconds (used for the
/// `*.workers` telemetry histograms); it is called once per worker, in
/// worker order, from the calling thread.
pub fn fan_out<T, U, F>(items: Vec<T>, workers: usize, f: F, mut report: impl FnMut(u64)) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        let started = clock::start();
        let out: Vec<U> = items.into_iter().map(&f).collect();
        report(started.elapsed_micros());
        return out;
    }
    // Striped assignment: worker w takes items w, w+workers, w+2*workers…
    let mut stripes: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        stripes[i % workers].push((i, item));
    }
    let mut indexed: Vec<(usize, U)> = Vec::new();
    let mut busy: Vec<u64> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|stripe| {
                scope.spawn(|| {
                    let started = clock::start();
                    let out: Vec<(usize, U)> =
                        stripe.into_iter().map(|(i, item)| (i, f(item))).collect();
                    (out, started.elapsed_micros())
                })
            })
            .collect();
        for handle in handles {
            // A worker panic is re-raised on the caller's thread as-is:
            // this introduces no new panic site, it propagates the
            // original one across the scope boundary.
            let (out, micros) = match handle.join() {
                Ok(pair) => pair,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            indexed.extend(out);
            busy.push(micros);
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    for micros in busy {
        report(micros);
    }
    indexed.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_clamps_to_items() {
        assert_eq!(Parallelism::Sequential.worker_count(100), 1);
        assert_eq!(Parallelism::Threads(4).worker_count(100), 4);
        assert_eq!(Parallelism::Threads(4).worker_count(2), 2);
        assert_eq!(Parallelism::Threads(0).worker_count(5), 1);
        assert!(Parallelism::Auto.worker_count(100) >= 1);
        assert_eq!(Parallelism::Auto.worker_count(1), 1);
        assert_eq!(Parallelism::Threads(8).worker_count(0), 1);
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn display_names() {
        assert_eq!(Parallelism::Sequential.to_string(), "sequential");
        assert_eq!(Parallelism::Threads(3).to_string(), "threads(3)");
        assert_eq!(Parallelism::Auto.to_string(), "auto");
    }

    #[test]
    fn fan_out_preserves_input_order() {
        for workers in [1, 2, 3, 8] {
            let mut reports = 0;
            let out = fan_out(
                (0..17u64).collect::<Vec<_>>(),
                workers,
                |x| x * 2,
                |_| reports += 1,
            );
            assert_eq!(out, (0..17u64).map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(reports, workers.min(17));
        }
    }

    #[test]
    fn fan_out_empty_input() {
        let out: Vec<u64> = fan_out(Vec::<u64>::new(), 4, |x| x, |_| {});
        assert!(out.is_empty());
    }
}
