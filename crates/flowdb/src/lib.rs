//! **FlowDB** and **FlowQL** (paper §VI, Fig. 5 ④/⑤).
//!
//! FlowDB is the analytic engine of the Flowstream system: it "takes flow
//! summaries as input, stores, and indexes them while using them to answer
//! FlowQL queries". FlowQL is "an SQL-like query language which uses
//! Flowtree operators to answer network management questions": the user
//! chooses the operator via the `SELECT` clause, one or multiple time
//! periods via the `FROM` clause, and the feature set plus restrictions via
//! the `WHERE` clause.
//!
//! ```
//! use megastream_flowdb::{FlowDb, parse};
//! use megastream_flow::record::FlowRecord;
//! use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
//! use megastream_flowtree::{Flowtree, FlowtreeConfig};
//!
//! let mut tree = Flowtree::new(FlowtreeConfig::default());
//! tree.observe(&FlowRecord::builder()
//!     .proto(6)
//!     .src("10.1.2.3".parse()?, 443)
//!     .dst("8.8.8.8".parse()?, 53)
//!     .packets(10)
//!     .build());
//!
//! let mut db = FlowDb::new();
//! db.insert("region-0", TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(60)), tree);
//!
//! let query = parse("SELECT QUERY FROM [0, 60) WHERE src_ip = 10.0.0.0/8")?;
//! let result = db.execute(&query)?;
//! assert_eq!(result.rows[0].score, 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod db;
pub mod exec;
pub mod lexer;
pub mod par;
pub mod parser;

pub use ast::{Query, Restriction, SelectOp, TimeSelection};
pub use db::FlowDb;
pub use exec::{Completeness, QueryCost, QueryError, QueryResult, ResultRow};
pub use par::Parallelism;
pub use parser::{parse, ParseError};
