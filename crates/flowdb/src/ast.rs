//! The FlowQL abstract syntax tree.

use megastream_flow::addr::Prefix;
use megastream_flow::key::{Feature, FlowKey, MaskedField};
use megastream_flow::time::TimeWindow;

/// The operator chosen in the `SELECT` clause — one Flowtree operator per
/// query (Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectOp {
    /// `SELECT QUERY` — popularity score of the WHERE key.
    Query,
    /// `SELECT TOPK k` — the k most popular flows under the WHERE key.
    TopK(usize),
    /// `SELECT ABOVE x` — flows with popularity above `x`.
    Above(u64),
    /// `SELECT HHH x` — hierarchical heavy hitters at threshold `x`.
    Hhh(u64),
    /// `SELECT DRILLDOWN` — children of the WHERE key.
    Drilldown,
}

impl SelectOp {
    /// Stable lower-case label of the operator kind, used as the `op=` tag
    /// on telemetry metric names.
    pub fn kind(&self) -> &'static str {
        match self {
            SelectOp::Query => "query",
            SelectOp::TopK(_) => "topk",
            SelectOp::Above(_) => "above",
            SelectOp::Hhh(_) => "hhh",
            SelectOp::Drilldown => "drilldown",
        }
    }
}

impl std::fmt::Display for SelectOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectOp::Query => write!(f, "QUERY"),
            SelectOp::TopK(k) => write!(f, "TOPK {k}"),
            SelectOp::Above(x) => write!(f, "ABOVE {x}"),
            SelectOp::Hhh(x) => write!(f, "HHH {x}"),
            SelectOp::Drilldown => write!(f, "DRILLDOWN"),
        }
    }
}

/// The `FROM` clause: which time periods to combine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeSelection {
    /// `FROM ALL` — every stored period.
    All,
    /// `FROM [a, b), [c, d), …` — explicit windows (seconds).
    Windows(Vec<TimeWindow>),
}

impl TimeSelection {
    /// Whether a stored summary window matches the selection.
    pub fn matches(&self, window: TimeWindow) -> bool {
        match self {
            TimeSelection::All => true,
            TimeSelection::Windows(ws) => ws.iter().any(|w| w.overlaps(window)),
        }
    }
}

/// One `WHERE` restriction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Restriction {
    /// `location = "region-0"` — restrict to summaries from one location.
    Location(String),
    /// `src_ip = a.b.c.d/n` (or `dst_ip = …`) — an IP feature restriction.
    IpFeature {
        /// Which IP feature.
        feature: Feature,
        /// The prefix to match.
        prefix: Prefix,
    },
    /// `proto = 6`, `src_port = 443`, `dst_port = 53` — an exact numeric
    /// feature restriction.
    NumericFeature {
        /// Which numeric feature.
        feature: Feature,
        /// The exact value.
        value: u32,
    },
}

/// A parsed FlowQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The Flowtree operator to run.
    pub op: SelectOp,
    /// Which time periods to combine.
    pub time: TimeSelection,
    /// WHERE restrictions.
    pub restrictions: Vec<Restriction>,
    /// `GROUP BY location`: run the operator once per location instead of
    /// merging across locations (e.g. a per-region top-k).
    pub group_by_location: bool,
}

impl Query {
    /// The locations the query restricts to (empty = all locations).
    pub fn locations(&self) -> Vec<&str> {
        self.restrictions
            .iter()
            .filter_map(|r| match r {
                Restriction::Location(l) => Some(l.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Builds the generalized flow key the feature restrictions describe
    /// (the WHERE clause "chooses the feature set").
    ///
    /// # Panics
    ///
    /// Panics if a numeric restriction targets an IP feature or vice versa
    /// (the parser never produces such a query).
    pub fn where_key(&self) -> FlowKey {
        let mut key = FlowKey::root();
        for r in &self.restrictions {
            match r {
                Restriction::Location(_) => {}
                Restriction::IpFeature { feature, prefix } => {
                    assert!(
                        matches!(feature, Feature::SrcIp | Feature::DstIp),
                        "IP restriction on non-IP feature"
                    );
                    key = key.with_field(
                        *feature,
                        MaskedField::new(prefix.addr().bits(), 32, prefix.len()),
                    );
                }
                Restriction::NumericFeature { feature, value } => {
                    assert!(
                        !matches!(feature, Feature::SrcIp | Feature::DstIp),
                        "numeric restriction on IP feature"
                    );
                    key = key.with_field(*feature, MaskedField::exact(*value, feature.width()));
                }
            }
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::time::{TimeDelta, Timestamp};

    #[test]
    fn time_selection_matching() {
        let w = |s: u64| TimeWindow::starting_at(Timestamp::from_secs(s), TimeDelta::from_secs(60));
        assert!(TimeSelection::All.matches(w(5)));
        let sel = TimeSelection::Windows(vec![w(0), w(120)]);
        assert!(sel.matches(w(30)));
        assert!(!sel.matches(w(60)));
        assert!(sel.matches(w(150)));
    }

    #[test]
    fn where_key_combines_restrictions() {
        let q = Query {
            op: SelectOp::Query,
            time: TimeSelection::All,
            restrictions: vec![
                Restriction::IpFeature {
                    feature: Feature::SrcIp,
                    prefix: "10.0.0.0/8".parse().unwrap(),
                },
                Restriction::NumericFeature {
                    feature: Feature::DstPort,
                    value: 53,
                },
                Restriction::Location("region-0".into()),
            ],
            group_by_location: false,
        };
        let key = q.where_key();
        assert_eq!(key.src_prefix().to_string(), "10.0.0.0/8");
        assert_eq!(key.field(Feature::DstPort).value(), 53);
        assert!(key.field(Feature::Proto).is_wildcard());
        assert_eq!(q.locations(), vec!["region-0"]);
    }

    #[test]
    fn empty_where_is_root() {
        let q = Query {
            op: SelectOp::Query,
            time: TimeSelection::All,
            restrictions: vec![],
            group_by_location: false,
        };
        assert!(q.where_key().is_root());
        assert!(q.locations().is_empty());
    }

    #[test]
    fn select_op_display() {
        assert_eq!(SelectOp::TopK(5).to_string(), "TOPK 5");
        assert_eq!(SelectOp::Hhh(100).to_string(), "HHH 100");
    }
}
