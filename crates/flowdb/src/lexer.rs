//! The FlowQL lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A bare word: keyword or identifier (`SELECT`, `src_ip`, ...).
    Word(String),
    /// An unsigned integer literal.
    Number(u64),
    /// An IPv4 address or prefix literal (`10.0.0.0/8`, `1.2.3.4`).
    Address(String),
    /// A double-quoted string literal (quotes stripped).
    Str(String),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Equals,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Address(a) => write!(f, "{a}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Equals => write!(f, "="),
        }
    }
}

/// A lexing error: the offending character and its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The unexpected character.
    pub ch: char,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} at offset {}",
            self.ch, self.offset
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a FlowQL string.
///
/// Numeric-looking tokens containing `.` or `/` are lexed as
/// [`Token::Address`]; pure digit runs as [`Token::Number`].
///
/// # Errors
///
/// Returns [`LexError`] on any character that cannot start a token or an
/// unterminated string literal.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '=' => {
                out.push(Token::Equals);
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != '"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError { ch: '"', offset: i });
                }
                out.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_address = false;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_digit() {
                        i += 1;
                    } else if c == '.' || c == '/' {
                        is_address = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if is_address {
                    out.push(Token::Address(text.to_owned()));
                } else {
                    let n = text.parse().map_err(|_| LexError {
                        ch: c,
                        offset: start,
                    })?;
                    out.push(Token::Number(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Word(input[start..i].to_owned()));
            }
            other => {
                return Err(LexError {
                    ch: other,
                    offset: i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_full_query() {
        let tokens = lex("SELECT TOPK 5 FROM [0, 60) WHERE src_ip = 10.0.0.0/8").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("TOPK".into()),
                Token::Number(5),
                Token::Word("FROM".into()),
                Token::LBracket,
                Token::Number(0),
                Token::Comma,
                Token::Number(60),
                Token::RParen,
                Token::Word("WHERE".into()),
                Token::Word("src_ip".into()),
                Token::Equals,
                Token::Address("10.0.0.0/8".into()),
            ]
        );
    }

    #[test]
    fn lexes_strings_and_hyphenated_words() {
        let tokens = lex("location = \"region-0\"").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Word("location".into()),
                Token::Equals,
                Token::Str("region-0".into()),
            ]
        );
    }

    #[test]
    fn address_without_mask() {
        let tokens = lex("dst_ip = 1.2.3.4").unwrap();
        assert_eq!(tokens[2], Token::Address("1.2.3.4".into()));
    }

    #[test]
    fn rejects_garbage_and_unterminated_string() {
        assert!(lex("SELECT @").is_err());
        let err = lex("\"unterminated").unwrap_err();
        assert_eq!(err.ch, '"');
        assert!(err.to_string().contains("offset 0"));
    }

    #[test]
    fn empty_input() {
        assert_eq!(lex("").unwrap(), vec![]);
        assert_eq!(lex("   \n\t ").unwrap(), vec![]);
    }
}
