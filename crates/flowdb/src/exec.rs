//! FlowQL query execution.
//!
//! Execution follows the §VI composition: select the summaries matching the
//! `FROM`/`location` clauses, `Merge` them ("A12 = compress(A1 ∪ A2)"),
//! then run the selected Flowtree operator restricted to the WHERE key.
//! With `GROUP BY location`, the merge-and-operate step runs once per
//! location instead of across all of them.
//!
//! The merge step is structured as a **per-location fan-out** (property P2:
//! summaries combine across location): each contacted location's trees
//! merge into one partial, and the partials combine in fixed location
//! order. The fan-out runs on up to
//! [`Parallelism::worker_count`](crate::Parallelism) scoped worker
//! threads; because the partials are merged back in location order no
//! matter which thread produced them, every [`Parallelism`](crate::par)
//! setting yields the same result (`tests/parallel_e2e.rs` pins this).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use megastream_flow::key::FlowKey;
use megastream_flow::score::Popularity;
use megastream_flowtree::Flowtree;
use megastream_telemetry::{clock, TraceSpan, LATENCY_MICROS_BOUNDS};

use crate::ast::{Query, SelectOp};
use crate::db::FlowDb;
use crate::par::fan_out;

/// A query-execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// No stored summary matched the FROM/location selection.
    NoMatchingSummaries,
    /// Matching summaries have incompatible Flowtree configurations.
    IncompatibleSummaries,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoMatchingSummaries => {
                write!(f, "no stored summary matches the FROM/location selection")
            }
            QueryError::IncompatibleSummaries => {
                write!(f, "matching summaries have incompatible configurations")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultRow {
    /// The flow the row describes (`None` for scalar results).
    pub key: Option<FlowKey>,
    /// The popularity score.
    pub score: u64,
    /// Extra annotation (e.g. the discounted HHH score).
    pub note: Option<String>,
    /// The location this row belongs to (`None` unless `GROUP BY location`).
    pub location: Option<String>,
}

/// How much of the queried data a result actually covers: the locations
/// whose summaries were consulted vs the locations that matched the query.
/// A degraded (partial) execution skips unreachable locations, so
/// `reached < total` — see [`FlowDb::execute_partial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completeness {
    /// Locations whose summaries contributed to the result.
    pub reached: usize,
    /// Locations with summaries matching the query.
    pub total: usize,
}

impl Completeness {
    /// A fully complete result over `n` locations.
    pub fn complete(n: usize) -> Self {
        Completeness {
            reached: n,
            total: n,
        }
    }

    /// `reached / total` as a fraction (1.0 when nothing matched at all —
    /// an empty result is vacuously complete).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.reached as f64 / self.total as f64
        }
    }

    /// Whether every matching location was consulted.
    pub fn is_complete(&self) -> bool {
        self.reached == self.total
    }
}

impl fmt::Display for Completeness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} locations", self.reached, self.total)
    }
}

/// Per-query resource accounting: how much work an execution did and how
/// long its stages took.
///
/// The *work* fields (locations, summaries, nodes, bytes, rows) are pure
/// functions of the database contents and the query, so they are
/// **bit-identical across [`Parallelism`](crate::par) settings** — the
/// equivalence tests pin this. The `*_micros` *timing* fields are
/// wall-clock measurements and vary run to run; they are deliberately
/// **excluded from `PartialEq`/`Eq`** so result comparison (and the
/// sequential-vs-threaded oracle) stays exact.
#[derive(Debug, Clone, Default)]
pub struct QueryCost {
    /// Locations whose summaries were consulted (fan-out width).
    pub locations: usize,
    /// Stored summaries merged to answer the query.
    pub summaries: usize,
    /// Total materialized Flowtree nodes in the consulted summaries.
    pub nodes_visited: usize,
    /// Total wire bytes of the consulted summaries (the merge input).
    pub bytes_merged: u64,
    /// Result rows produced.
    pub rows_returned: usize,
    /// Wall-clock micros spent selecting and grouping summaries.
    pub plan_micros: u64,
    /// Wall-clock micros spent in the fan-out + merge + operator stage.
    pub run_micros: u64,
    /// Wall-clock micros for the whole execution.
    pub total_micros: u64,
}

impl QueryCost {
    /// Deterministic work units for ranking queries by expense: bytes
    /// merged dominate (the merge step is the paper's costly primitive),
    /// with node and row counts as tie-breakers. Stable across runs and
    /// parallelism settings, unlike wall-clock time.
    pub fn work_units(&self) -> u64 {
        self.bytes_merged + self.nodes_visited as u64 + self.rows_returned as u64
    }
}

impl PartialEq for QueryCost {
    fn eq(&self, other: &Self) -> bool {
        // Timing fields excluded: only deterministic work is compared.
        self.locations == other.locations
            && self.summaries == other.summaries
            && self.nodes_visited == other.nodes_visited
            && self.bytes_merged == other.bytes_merged
            && self.rows_returned == other.rows_returned
    }
}

impl Eq for QueryCost {}

impl fmt::Display for QueryCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} location(s), {} summaries, {} nodes, {} B merged, {} row(s) in {}us (plan {}us, run {}us)",
            self.locations,
            self.summaries,
            self.nodes_visited,
            self.bytes_merged,
            self.rows_returned,
            self.total_micros,
            self.plan_micros,
            self.run_micros,
        )
    }
}

/// The result of a FlowQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// The operator that produced the result.
    pub op: String,
    /// How many stored summaries were merged to answer it.
    pub summaries_used: usize,
    /// Result rows, most significant first (grouped queries order by
    /// location first).
    pub rows: Vec<ResultRow>,
    /// Locations reached vs matching (always complete outside degraded
    /// executions).
    pub completeness: Completeness,
    /// Resource accounting for the execution that produced this result.
    pub cost: QueryCost,
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "-- {} over {} summaries, {} row(s)",
            self.op,
            self.summaries_used,
            self.rows.len()
        )?;
        if !self.completeness.is_complete() {
            write!(f, " [PARTIAL: {}]", self.completeness)?;
        }
        writeln!(f)?;
        let mut current_location: Option<&str> = None;
        for row in &self.rows {
            if let Some(loc) = &row.location {
                if current_location != Some(loc.as_str()) {
                    writeln!(f, "[{loc}]")?;
                    current_location = Some(loc);
                }
            }
            match (&row.key, &row.note) {
                (Some(k), Some(n)) => writeln!(f, "{:>12}  {k}  ({n})", row.score)?,
                (Some(k), None) => writeln!(f, "{:>12}  {k}", row.score)?,
                (None, Some(n)) => writeln!(f, "{:>12}  ({n})", row.score)?,
                (None, None) => writeln!(f, "{:>12}", row.score)?,
            }
        }
        Ok(())
    }
}

/// Runs one Table II operator on a merged tree.
fn run_op(merged: &Flowtree, op: &SelectOp, where_key: &FlowKey) -> Vec<ResultRow> {
    let row = |key: Option<FlowKey>, score: u64, note: Option<String>| ResultRow {
        key,
        score,
        note,
        location: None,
    };
    match op {
        SelectOp::Query => vec![row(Some(*where_key), merged.query(where_key).value(), None)],
        SelectOp::Drilldown => merged
            .drilldown(where_key)
            .into_iter()
            .map(|e| {
                row(
                    Some(e.key),
                    e.score.value(),
                    e.is_leaf.then(|| "leaf".to_owned()),
                )
            })
            .collect(),
        SelectOp::TopK(k) => merged
            .top_k_where(*k, |key| where_key.contains(key))
            .into_iter()
            .map(|(key, score)| row(Some(key), score.value(), None))
            .collect(),
        SelectOp::Above(x) => merged
            .above_x(Popularity::new(*x))
            .into_iter()
            .filter(|(key, _)| where_key.contains(key))
            .map(|(key, score)| row(Some(key), score.value(), None))
            .collect(),
        SelectOp::Hhh(x) => merged
            .hhh(Popularity::new(*x))
            .into_iter()
            .filter(|item| where_key.contains(&item.key))
            .map(|item| {
                row(
                    Some(item.key),
                    item.score.value(),
                    Some(format!("discounted {}", item.discounted)),
                )
            })
            .collect(),
    }
}

/// Merges the trees of a group of entries.
fn merge_group(trees: &[&Flowtree]) -> Result<Flowtree, QueryError> {
    let (first, rest) = trees.split_first().ok_or(QueryError::NoMatchingSummaries)?;
    let mut merged = (*first).clone();
    for tree in rest {
        if !merged.config().compatible_with(tree.config()) {
            return Err(QueryError::IncompatibleSummaries);
        }
        merged.merge(tree);
    }
    Ok(merged)
}

/// One location's share of a fan-out: the matching trees, in storage
/// order, plus their wire bytes and materialized node counts (which feed
/// both `fanout` span annotations and the result's [`QueryCost`]).
struct LocationGroup<'a> {
    location: &'a str,
    trees: Vec<&'a Flowtree>,
    bytes: u64,
    nodes: usize,
}

/// The plan stage: matching summaries grouped by location, in location
/// order (`BTreeMap` iteration), each group's trees in storage order.
fn plan_groups<'a>(db: &'a FlowDb, query: &'a Query) -> Vec<LocationGroup<'a>> {
    let mut by_location: BTreeMap<&str, LocationGroup<'a>> = BTreeMap::new();
    for entry in db.select(query) {
        let group = by_location
            .entry(entry.location.as_str())
            .or_insert_with(|| LocationGroup {
                location: entry.location.as_str(),
                trees: Vec::new(),
                bytes: 0,
                nodes: 0,
            });
        group.bytes += entry.tree.wire_size() as u64;
        group.nodes += entry.tree.node_count();
        group.trees.push(&entry.tree);
    }
    by_location.into_values().collect()
}

/// The deterministic work half of a [`QueryCost`], read off the planned
/// groups before the fan-out consumes them (timing and row count are
/// filled in afterwards).
fn cost_of_groups(groups: &[LocationGroup<'_>]) -> QueryCost {
    QueryCost {
        locations: groups.len(),
        summaries: groups.iter().map(|g| g.trees.len()).sum(),
        nodes_visited: groups.iter().map(|g| g.nodes).sum(),
        bytes_merged: groups.iter().map(|g| g.bytes).sum(),
        ..QueryCost::default()
    }
}

/// The fan-out + merge + operator stage shared by complete and degraded
/// executions: every group in `groups` is scanned — concurrently on up to
/// [`Parallelism::worker_count`](crate::Parallelism) workers — and the
/// partial results are combined **in location order**, so the outcome is
/// independent of the worker count. Returns the result rows and the number
/// of summaries used.
///
/// Per-location `fanout` spans are recorded as children of `parent` from
/// whichever thread runs them (the trace store is thread-safe); with
/// `GROUP BY location` each carries its own `merge`/`run` children,
/// otherwise a single top-level `merge` + `run` pair covers the
/// cross-location combination.
fn run_groups(
    db: &FlowDb,
    query: &Query,
    parent: &TraceSpan,
    groups: Vec<LocationGroup<'_>>,
    where_key: &FlowKey,
) -> Result<(Vec<ResultRow>, usize), QueryError> {
    let tel = db.telemetry();
    let used: usize = groups.iter().map(|g| g.trees.len()).sum();
    let workers = db.parallelism().worker_count(groups.len());
    if tel.is_enabled() {
        tel.gauge("flowdb.fanout.workers").set(workers as i64);
    }
    let worker_micros = tel.histogram("flowdb.fanout.worker.micros", LATENCY_MICROS_BOUNDS);
    let report = |micros: u64| worker_micros.record(micros);
    if query.group_by_location {
        // One merge-and-operate pass per location; rows concatenate in
        // location order.
        let per_location = fan_out(
            groups,
            workers,
            |group| {
                let mut group_span = parent.child("fanout");
                group_span.annotate("location", group.location);
                group_span.add_records(group.trees.len() as u64);
                let merge_span = group_span.child("merge");
                let merged = merge_group(&group.trees);
                merge_span.finish();
                let result = merged.map(|merged| {
                    let mut op_span = group_span.child("run");
                    op_span.annotate("op", query.op.kind());
                    let group_rows = run_op(&merged, &query.op, where_key);
                    op_span.add_records(group_rows.len() as u64);
                    op_span.finish();
                    group_rows
                });
                group_span.finish();
                result.map(|rows| (group.location.to_owned(), rows))
            },
            report,
        );
        let mut rows = Vec::new();
        for result in per_location {
            let (location, group_rows) = result?;
            for mut row in group_rows {
                row.location = Some(location.clone());
                rows.push(row);
            }
        }
        return Ok((rows, used));
    }
    // Merge fan-out: each location merges its own trees into a partial,
    // then the partials combine in location order.
    let partials = fan_out(
        groups,
        workers,
        |group| {
            let mut fanout_span = parent.child("fanout");
            fanout_span.annotate("location", group.location);
            fanout_span.add_records(group.trees.len() as u64);
            fanout_span.add_bytes(group.bytes);
            let partial = merge_group(&group.trees);
            fanout_span.finish();
            partial
        },
        report,
    );
    let mut merge_span = parent.child("merge");
    merge_span.add_records(used as u64);
    let mut partials = partials.into_iter();
    let mut merged = partials.next().ok_or(QueryError::NoMatchingSummaries)??;
    for partial in partials {
        let partial = partial?;
        if !merged.config().compatible_with(partial.config()) {
            return Err(QueryError::IncompatibleSummaries);
        }
        merged.merge(&partial);
    }
    merge_span.finish();
    let mut run_span = parent.child("run");
    run_span.annotate("op", query.op.kind());
    let rows = run_op(&merged, &query.op, where_key);
    run_span.add_records(rows.len() as u64);
    run_span.finish();
    Ok((rows, used))
}

/// Executes `query` against `db` with causal tracing. See
/// [`FlowDb::execute`].
///
/// The plan stage (summary selection/grouping) and the run stage
/// (fan-out + merge + operator) are timed separately into
/// `flowdb.plan.micros` and `flowdb.run.micros` when the database has live
/// telemetry; the fan-out additionally records the worker count into the
/// `flowdb.fanout.workers` gauge and each worker's busy time into the
/// `flowdb.fanout.worker.micros` histogram.
///
/// When `parent` is a recording span, the
/// execution emits a lineage tree under it — a `plan` span (summary
/// selection), one `fanout` span per contacted location annotated with the
/// summaries and bytes it contributed, a `merge` span, and a `run` span
/// carrying the operator and row count. With a null `parent` every span
/// site is a single branch.
pub(crate) fn execute_traced(
    db: &FlowDb,
    query: &Query,
    parent: &TraceSpan,
) -> Result<QueryResult, QueryError> {
    let tel = db.telemetry();
    let where_key = query.where_key();
    let clock_total = clock::start();
    let mut plan_span = parent.child("plan");
    let groups = plan_groups(db, query);
    plan_span.add_records(groups.iter().map(|g| g.trees.len() as u64).sum());
    plan_span.finish();
    let plan_micros = clock_total.elapsed_micros();
    if tel.is_enabled() {
        tel.histogram("flowdb.plan.micros", LATENCY_MICROS_BOUNDS)
            .record(plan_micros);
    }
    if groups.is_empty() {
        return Err(QueryError::NoMatchingSummaries);
    }
    let mut cost = cost_of_groups(&groups);
    cost.plan_micros = plan_micros;
    let location_count = groups.len();
    let clock_run = clock::start();
    let (rows, used) = run_groups(db, query, parent, groups, &where_key)?;
    cost.run_micros = clock_run.elapsed_micros();
    if tel.is_enabled() {
        tel.histogram("flowdb.run.micros", LATENCY_MICROS_BOUNDS)
            .record(cost.run_micros);
    }
    cost.rows_returned = rows.len();
    cost.total_micros = clock_total.elapsed_micros();
    let op = if query.group_by_location {
        format!("{} GROUP BY location", query.op)
    } else {
        query.op.to_string()
    };
    Ok(QueryResult {
        op,
        summaries_used: used,
        rows,
        completeness: Completeness::complete(location_count),
        cost,
    })
}

/// Degraded execution: like [`execute_traced`] but summaries from
/// `unavailable` locations are excluded from the merge instead of
/// contributing, and the result's [`Completeness`] records how many of the
/// matching locations were actually consulted. A `fanout` span annotated
/// `skipped=unreachable` is emitted per excluded location, so `explain`
/// shows *why* the result is partial.
pub(crate) fn execute_partial_traced(
    db: &FlowDb,
    query: &Query,
    parent: &TraceSpan,
    unavailable: &BTreeSet<String>,
) -> Result<QueryResult, QueryError> {
    let tel = db.telemetry();
    let where_key = query.where_key();
    let clock_total = clock::start();
    let mut plan_span = parent.child("plan");
    let mut groups = plan_groups(db, query);
    plan_span.add_records(groups.iter().map(|g| g.trees.len() as u64).sum());
    plan_span.finish();
    let plan_micros = clock_total.elapsed_micros();
    if tel.is_enabled() {
        tel.histogram("flowdb.plan.micros", LATENCY_MICROS_BOUNDS)
            .record(plan_micros);
    }
    let total = groups.len();
    if total == 0 {
        return Err(QueryError::NoMatchingSummaries);
    }
    groups.retain(|group| {
        if !unavailable.contains(group.location) {
            return true;
        }
        let mut span = parent.child("fanout");
        span.annotate("location", group.location);
        span.annotate("skipped", "unreachable");
        span.finish();
        false
    });
    let completeness = Completeness {
        reached: groups.len(),
        total,
    };
    // Cost counts only the work actually done: skipped locations
    // contribute nothing to the fan-out, merge, or node walks.
    let mut cost = cost_of_groups(&groups);
    cost.plan_micros = plan_micros;
    let op = if query.group_by_location {
        format!("{} GROUP BY location", query.op)
    } else {
        query.op.to_string()
    };
    if groups.is_empty() {
        // Every matching location is unreachable: an empty (0/n) result,
        // not an error — the caller chose degraded execution.
        cost.total_micros = clock_total.elapsed_micros();
        return Ok(QueryResult {
            op,
            summaries_used: 0,
            rows: Vec::new(),
            completeness,
            cost,
        });
    }
    let clock_run = clock::start();
    let (rows, used) = run_groups(db, query, parent, groups, &where_key)?;
    cost.run_micros = clock_run.elapsed_micros();
    if tel.is_enabled() {
        tel.histogram("flowdb.run.micros", LATENCY_MICROS_BOUNDS)
            .record(cost.run_micros);
    }
    cost.rows_returned = rows.len();
    cost.total_micros = clock_total.elapsed_micros();
    Ok(QueryResult {
        op,
        summaries_used: used,
        rows,
        completeness,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use megastream_flow::record::FlowRecord;
    use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
    use megastream_flowtree::FlowtreeConfig;

    fn rec(src: &str, dst: &str, dport: u16, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 50_000)
            .dst(dst.parse().unwrap(), dport)
            .packets(packets)
            .build()
    }

    fn w(s: u64) -> TimeWindow {
        TimeWindow::starting_at(Timestamp::from_secs(s), TimeDelta::from_secs(60))
    }

    /// Two sites, two epochs each.
    fn db() -> FlowDb {
        let mut db = FlowDb::new();
        for (site, base) in [("region-0", "10.0"), ("region-1", "10.1")] {
            for epoch in 0..2u64 {
                let mut t = Flowtree::new(FlowtreeConfig::default());
                for i in 0..5u32 {
                    t.observe(&rec(
                        &format!("{base}.0.{i}"),
                        "1.1.1.1",
                        443,
                        10 * (epoch + 1),
                    ));
                }
                // An elephant at region-1, epoch 1.
                if site == "region-1" && epoch == 1 {
                    t.observe(&rec("10.1.0.99", "2.2.2.2", 53, 1_000));
                }
                db.insert(site, w(epoch * 60), t);
            }
        }
        db
    }

    #[test]
    fn query_across_sites_and_time() {
        let db = db();
        // All traffic: 2 sites × (5×10 + 5×20) + 1000 elephant = 1300.
        let q = parse("SELECT QUERY FROM ALL").unwrap();
        let r = db.execute(&q).unwrap();
        assert_eq!(r.summaries_used, 4);
        assert_eq!(r.rows[0].score, 1300);
    }

    #[test]
    fn query_restricted_by_location_and_prefix() {
        let db = db();
        let q =
            parse("SELECT QUERY FROM ALL WHERE location = \"region-0\" AND src_ip = 10.0.0.0/16")
                .unwrap();
        let r = db.execute(&q).unwrap();
        assert_eq!(r.summaries_used, 2);
        assert_eq!(r.rows[0].score, 150);
    }

    #[test]
    fn query_restricted_by_time() {
        let db = db();
        let q = parse("SELECT QUERY FROM [0, 60)").unwrap();
        let r = db.execute(&q).unwrap();
        // Epoch 0 only: 2 sites × 50.
        assert_eq!(r.rows[0].score, 100);
    }

    #[test]
    fn topk_finds_elephant() {
        let db = db();
        let q = parse("SELECT TOPK 1 FROM ALL WHERE dst_port = 53").unwrap();
        let r = db.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].score, 1000);
    }

    #[test]
    fn above_filters_by_where() {
        let db = db();
        let q = parse("SELECT ABOVE 500 FROM ALL WHERE src_ip = 10.1.0.0/16").unwrap();
        let r = db.execute(&q).unwrap();
        assert!(!r.rows.is_empty());
        assert!(r.rows.iter().all(|row| row.score > 500));
    }

    #[test]
    fn hhh_reports_with_notes() {
        let db = db();
        let q = parse("SELECT HHH 900 FROM ALL").unwrap();
        let r = db.execute(&q).unwrap();
        assert!(!r.rows.is_empty());
        assert!(r.rows.iter().all(|row| row.note.is_some()));
    }

    #[test]
    fn drilldown_descends() {
        let db = db();
        let q = parse("SELECT DRILLDOWN FROM ALL WHERE src_ip = 10.0.0.0/24").unwrap();
        let r = db.execute(&q).unwrap();
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn group_by_location_runs_per_site() {
        let db = db();
        let q = parse("SELECT QUERY FROM ALL GROUP BY location").unwrap();
        let r = db.execute(&q).unwrap();
        assert_eq!(r.summaries_used, 4);
        assert_eq!(r.rows.len(), 2);
        let by_loc: std::collections::BTreeMap<&str, u64> = r
            .rows
            .iter()
            .map(|row| (row.location.as_deref().unwrap(), row.score))
            .collect();
        assert_eq!(by_loc["region-0"], 150);
        assert_eq!(by_loc["region-1"], 1150);
        // Display prints location headers.
        let text = r.to_string();
        assert!(text.contains("[region-0]"));
        assert!(text.contains("GROUP BY location"));
    }

    #[test]
    fn group_by_composes_with_where() {
        let db = db();
        let q =
            parse("SELECT TOPK 1 FROM [60, 120) WHERE dst_port = 443 GROUP BY location").unwrap();
        let r = db.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows.iter().all(|row| row.location.is_some()));
        // Epoch 1 per-site top flows carry 20 packets each.
        assert!(r.rows.iter().all(|row| row.score >= 20));
    }

    #[test]
    fn group_by_parse_errors() {
        assert!(parse("SELECT QUERY FROM ALL GROUP BY proto").is_err());
        assert!(parse("SELECT QUERY FROM ALL GROUP location").is_err());
    }

    #[test]
    fn no_matching_summaries_error() {
        let db = db();
        let q = parse("SELECT QUERY FROM [900, 999)").unwrap();
        assert_eq!(db.execute(&q), Err(QueryError::NoMatchingSummaries));
        let q2 = parse("SELECT QUERY FROM ALL WHERE location = \"mars\"").unwrap();
        assert_eq!(db.execute(&q2), Err(QueryError::NoMatchingSummaries));
        let q3 = parse("SELECT QUERY FROM [900, 999) GROUP BY location").unwrap();
        assert_eq!(db.execute(&q3), Err(QueryError::NoMatchingSummaries));
    }

    #[test]
    fn incompatible_summaries_error() {
        use megastream_flow::score::ScoreKind;
        let mut db = FlowDb::new();
        db.insert("a", w(0), Flowtree::new(FlowtreeConfig::default()));
        db.insert(
            "a",
            w(60),
            Flowtree::new(FlowtreeConfig::default().with_score_kind(ScoreKind::Bytes)),
        );
        let q = parse("SELECT QUERY FROM ALL").unwrap();
        assert_eq!(db.execute(&q), Err(QueryError::IncompatibleSummaries));
    }

    #[test]
    fn partial_execution_excludes_unavailable_locations() {
        let db = db();
        let q = parse("SELECT QUERY FROM ALL").unwrap();
        let unavailable: BTreeSet<String> = ["region-1".to_owned()].into();
        let r = db.execute_partial(&q, &unavailable).unwrap();
        // region-0 only: 150 packets, 2 of 4 summaries, 1 of 2 locations.
        assert_eq!(r.rows[0].score, 150);
        assert_eq!(r.summaries_used, 2);
        assert_eq!(
            r.completeness,
            Completeness {
                reached: 1,
                total: 2
            }
        );
        assert!((r.completeness.fraction() - 0.5).abs() < 1e-9);
        assert!(!r.completeness.is_complete());
        assert!(r.to_string().contains("[PARTIAL: 1/2 locations]"));
        // The complete execution of the same query says so.
        let full = db.execute(&q).unwrap();
        assert!(full.completeness.is_complete());
        assert_eq!(full.completeness, Completeness::complete(2));
        assert!(!full.to_string().contains("PARTIAL"));
    }

    #[test]
    fn partial_execution_composes_with_group_by() {
        let db = db();
        let q = parse("SELECT QUERY FROM ALL GROUP BY location").unwrap();
        let unavailable: BTreeSet<String> = ["region-1".to_owned()].into();
        let r = db.execute_partial(&q, &unavailable).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].location.as_deref(), Some("region-0"));
        assert_eq!(
            r.completeness,
            Completeness {
                reached: 1,
                total: 2
            }
        );
        assert!(r.op.contains("GROUP BY location"));
    }

    #[test]
    fn all_locations_unavailable_is_empty_not_error() {
        let db = db();
        let q = parse("SELECT QUERY FROM ALL").unwrap();
        let unavailable: BTreeSet<String> = ["region-0".to_owned(), "region-1".to_owned()].into();
        let r = db.execute_partial(&q, &unavailable).unwrap();
        assert!(r.rows.is_empty());
        assert_eq!(r.summaries_used, 0);
        assert_eq!(
            r.completeness,
            Completeness {
                reached: 0,
                total: 2
            }
        );
        assert_eq!(r.completeness.fraction(), 0.0);
        // But a query matching nothing at all still errors.
        let q2 = parse("SELECT QUERY FROM [900, 999)").unwrap();
        assert_eq!(
            db.execute_partial(&q2, &unavailable),
            Err(QueryError::NoMatchingSummaries)
        );
    }

    #[test]
    fn unavailable_set_not_matching_anything_is_complete() {
        let db = db();
        let q = parse("SELECT QUERY FROM ALL").unwrap();
        let unavailable: BTreeSet<String> = ["mars".to_owned()].into();
        let r = db.execute_partial(&q, &unavailable).unwrap();
        assert!(r.completeness.is_complete());
        assert_eq!(r.rows[0].score, 1300);
    }

    #[test]
    fn huge_time_range_is_parse_error_not_panic() {
        // Seconds past u64::MAX / 1e6 would overflow Timestamp::from_secs.
        let err = parse("SELECT QUERY FROM [0, 99999999999999999999]");
        assert!(err.is_err());
        let err = parse("SELECT QUERY FROM [0, 18446744073709551)").unwrap_err();
        assert!(err.to_string().contains("out of range") || format!("{err:?}").contains("Range"));
        // The largest representable bound still parses.
        assert!(parse("SELECT QUERY FROM [0, 18446744073709)").is_ok());
    }

    #[test]
    fn query_cost_accounts_deterministic_work() {
        let db = db();
        let q = parse("SELECT QUERY FROM ALL").unwrap();
        let r = db.execute(&q).unwrap();
        assert_eq!(r.cost.locations, 2);
        assert_eq!(r.cost.summaries, 4);
        assert_eq!(r.cost.summaries, r.summaries_used);
        assert_eq!(r.cost.rows_returned, r.rows.len());
        assert!(r.cost.nodes_visited > 0);
        assert!(r.cost.bytes_merged > 0);
        assert!(r.cost.work_units() >= r.cost.bytes_merged);
        // Equality ignores wall-clock timing: a re-run compares equal even
        // though its micros differ.
        let again = db.execute(&q).unwrap();
        assert_eq!(r, again);
        assert_eq!(r.cost, again.cost);
        let text = r.cost.to_string();
        assert!(text.contains("2 location(s)"));
        assert!(text.contains("4 summaries"));
    }

    #[test]
    fn partial_cost_counts_only_reached_locations() {
        let db = db();
        let q = parse("SELECT QUERY FROM ALL").unwrap();
        let full = db.execute(&q).unwrap();
        let unavailable: BTreeSet<String> = ["region-1".to_owned()].into();
        let r = db.execute_partial(&q, &unavailable).unwrap();
        assert_eq!(r.cost.locations, 1);
        assert_eq!(r.cost.summaries, 2);
        assert!(r.cost.bytes_merged < full.cost.bytes_merged);
        assert!(r.cost.nodes_visited < full.cost.nodes_visited);
        // All locations down: zero work, zero rows.
        let all: BTreeSet<String> = ["region-0".to_owned(), "region-1".to_owned()].into();
        let empty = db.execute_partial(&q, &all).unwrap();
        assert_eq!(empty.cost.work_units(), 0);
        assert_eq!(empty.cost.locations, 0);
    }

    #[test]
    fn result_display_renders_rows() {
        let db = db();
        let q = parse("SELECT TOPK 3 FROM ALL").unwrap();
        let text = db.execute(&q).unwrap().to_string();
        assert!(text.contains("TOPK 3"));
        assert!(text.lines().count() >= 2);
    }
}
