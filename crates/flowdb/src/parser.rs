//! The FlowQL recursive-descent parser.
//!
//! Grammar (keywords are case-insensitive):
//!
//! ```text
//! query      := SELECT op FROM time_sel [WHERE cond (AND cond)*]
//!               [GROUP BY location]
//! op         := QUERY | TOPK <n> | ABOVE <n> | HHH <n> | DRILLDOWN
//! time_sel   := ALL | range (',' range)*
//! range      := '[' <secs> ',' <secs> ')'
//! cond       := location '=' <string>
//!             | (src_ip | dst_ip) '=' <addr>[/<len>]
//!             | (proto | src_port | dst_port) '=' <n>
//! ```

use std::fmt;

use megastream_flow::addr::Prefix;
use megastream_flow::key::Feature;
use megastream_flow::time::{TimeWindow, Timestamp};

use crate::ast::{Query, Restriction, SelectOp, TimeSelection};
use crate::lexer::{lex, LexError, Token};

/// A FlowQL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexing failed.
    Lex(LexError),
    /// A token differed from what the grammar expects.
    Unexpected {
        /// What the parser was looking for.
        expected: String,
        /// What it found (`None` = end of input).
        found: Option<Token>,
    },
    /// A numeric value was out of range for its feature.
    ValueOutOfRange {
        /// The feature the value was for.
        feature: String,
        /// The offending value.
        value: u64,
    },
    /// A time range had `end <= start`.
    EmptyTimeRange,
    /// An IP prefix failed to parse.
    BadPrefix(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::Unexpected { expected, found } => match found {
                Some(t) => write!(f, "expected {expected}, found {t}"),
                None => write!(f, "expected {expected}, found end of query"),
            },
            ParseError::ValueOutOfRange { feature, value } => {
                write!(f, "value {value} out of range for {feature}")
            }
            ParseError::EmptyTimeRange => write!(f, "time range is empty or reversed"),
            ParseError::BadPrefix(s) => write!(f, "invalid address or prefix {s:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses one FlowQL query.
///
/// # Errors
///
/// Returns [`ParseError`] describing the first grammar violation.
///
/// ```
/// use megastream_flowdb::parser::parse;
/// let q = parse("SELECT HHH 1000 FROM ALL WHERE dst_port = 53")?;
/// assert_eq!(q.op.to_string(), "HHH 1000");
/// # Ok::<(), megastream_flowdb::parser::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let query = p.query()?;
    if let Some(extra) = p.peek() {
        return Err(ParseError::Unexpected {
            expected: "end of query".into(),
            found: Some(extra.clone()),
        });
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError::Unexpected {
                expected: kw.to_owned(),
                found: other,
            }),
        }
    }

    fn expect_token(&mut self, token: Token, name: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == token => Ok(()),
            other => Err(ParseError::Unexpected {
                expected: name.to_owned(),
                found: other,
            }),
        }
    }

    fn number(&mut self, what: &str) -> Result<u64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(ParseError::Unexpected {
                expected: format!("number ({what})"),
                found: other,
            }),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        let op = self.select_op()?;
        self.expect_keyword("FROM")?;
        let time = self.time_selection()?;
        let mut restrictions = Vec::new();
        if let Some(Token::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case("WHERE") {
                self.next();
                restrictions.push(self.condition()?);
                while let Some(Token::Word(w)) = self.peek() {
                    if w.eq_ignore_ascii_case("AND") {
                        self.next();
                        restrictions.push(self.condition()?);
                    } else {
                        break;
                    }
                }
            }
        }
        let mut group_by_location = false;
        if let Some(Token::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case("GROUP") {
                self.next();
                self.expect_keyword("BY")?;
                match self.next() {
                    Some(Token::Word(w)) if w.eq_ignore_ascii_case("location") => {
                        group_by_location = true;
                    }
                    other => {
                        return Err(ParseError::Unexpected {
                            expected: "location (the only GROUP BY dimension)".into(),
                            found: other,
                        })
                    }
                }
            }
        }
        Ok(Query {
            op,
            time,
            restrictions,
            group_by_location,
        })
    }

    fn select_op(&mut self) -> Result<SelectOp, ParseError> {
        match self.next() {
            Some(Token::Word(w)) => match w.to_ascii_uppercase().as_str() {
                "QUERY" => Ok(SelectOp::Query),
                "DRILLDOWN" => Ok(SelectOp::Drilldown),
                "TOPK" => Ok(SelectOp::TopK(self.number("k")? as usize)),
                "ABOVE" => Ok(SelectOp::Above(self.number("threshold")?)),
                "HHH" => Ok(SelectOp::Hhh(self.number("threshold")?)),
                other => Err(ParseError::Unexpected {
                    expected: "QUERY, TOPK, ABOVE, HHH or DRILLDOWN".into(),
                    found: Some(Token::Word(other.to_owned())),
                }),
            },
            other => Err(ParseError::Unexpected {
                expected: "an operator".into(),
                found: other,
            }),
        }
    }

    fn time_selection(&mut self) -> Result<TimeSelection, ParseError> {
        if let Some(Token::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case("ALL") {
                self.next();
                return Ok(TimeSelection::All);
            }
        }
        let mut windows = vec![self.time_range()?];
        while self.peek() == Some(&Token::Comma) {
            // A comma here could also start the WHERE clause boundary; the
            // grammar only allows commas between ranges.
            self.next();
            windows.push(self.time_range()?);
        }
        Ok(TimeSelection::Windows(windows))
    }

    fn time_range(&mut self) -> Result<TimeWindow, ParseError> {
        self.expect_token(Token::LBracket, "'['")?;
        let start = self.number("range start, seconds")?;
        self.expect_token(Token::Comma, "','")?;
        let end = self.number("range end, seconds")?;
        self.expect_token(Token::RParen, "')'")?;
        if end <= start {
            return Err(ParseError::EmptyTimeRange);
        }
        // Timestamps are micros in a u64; a seconds literal past this bound
        // would overflow (and panic) in Timestamp::from_secs. Surface it as
        // a parse error instead — this path is reachable from user FlowQL.
        const MAX_SECS: u64 = u64::MAX / 1_000_000;
        for bound in [start, end] {
            if bound > MAX_SECS {
                return Err(ParseError::ValueOutOfRange {
                    feature: "time range bound, seconds".into(),
                    value: bound,
                });
            }
        }
        Ok(TimeWindow::new(
            Timestamp::from_secs(start),
            Timestamp::from_secs(end),
        ))
    }

    fn condition(&mut self) -> Result<Restriction, ParseError> {
        let field = match self.next() {
            Some(Token::Word(w)) => w.to_ascii_lowercase(),
            other => {
                return Err(ParseError::Unexpected {
                    expected: "a feature name or 'location'".into(),
                    found: other,
                })
            }
        };
        self.expect_token(Token::Equals, "'='")?;
        match field.as_str() {
            "location" => match self.next() {
                Some(Token::Str(s)) => Ok(Restriction::Location(s)),
                Some(Token::Word(w)) => Ok(Restriction::Location(w)),
                other => Err(ParseError::Unexpected {
                    expected: "a location name".into(),
                    found: other,
                }),
            },
            "src_ip" | "dst_ip" => {
                let feature = if field == "src_ip" {
                    Feature::SrcIp
                } else {
                    Feature::DstIp
                };
                match self.next() {
                    Some(Token::Address(a)) => {
                        let prefix: Prefix =
                            a.parse().map_err(|_| ParseError::BadPrefix(a.clone()))?;
                        Ok(Restriction::IpFeature { feature, prefix })
                    }
                    other => Err(ParseError::Unexpected {
                        expected: "an IP address or prefix".into(),
                        found: other,
                    }),
                }
            }
            "proto" | "src_port" | "dst_port" => {
                let feature = match field.as_str() {
                    "proto" => Feature::Proto,
                    "src_port" => Feature::SrcPort,
                    _ => Feature::DstPort,
                };
                let value = self.number(&field)?;
                let max = (1u64 << feature.width()) - 1;
                if value > max {
                    return Err(ParseError::ValueOutOfRange {
                        feature: field,
                        value,
                    });
                }
                Ok(Restriction::NumericFeature {
                    feature,
                    value: value as u32,
                })
            }
            other => Err(ParseError::Unexpected {
                expected: "location, src_ip, dst_ip, proto, src_port or dst_port".into(),
                found: Some(Token::Word(other.to_owned())),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let q = parse("SELECT QUERY FROM ALL").unwrap();
        assert_eq!(q.op, SelectOp::Query);
        assert_eq!(q.time, TimeSelection::All);
        assert!(q.restrictions.is_empty());
    }

    #[test]
    fn parses_full_query() {
        let q = parse(
            "SELECT TOPK 5 FROM [0, 60), [120, 180) \
             WHERE src_ip = 10.0.0.0/8 AND dst_port = 53 AND location = \"region-0\"",
        )
        .unwrap();
        assert_eq!(q.op, SelectOp::TopK(5));
        match &q.time {
            TimeSelection::Windows(ws) => {
                assert_eq!(ws.len(), 2);
                assert_eq!(ws[0].start, Timestamp::ZERO);
                assert_eq!(ws[1].end, Timestamp::from_secs(180));
            }
            TimeSelection::All => panic!("expected windows"),
        }
        assert_eq!(q.restrictions.len(), 3);
        assert_eq!(q.locations(), vec!["region-0"]);
        assert_eq!(q.where_key().src_prefix().to_string(), "10.0.0.0/8");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse("select hhh 100 from all where proto = 17").unwrap();
        assert_eq!(q.op, SelectOp::Hhh(100));
        assert_eq!(q.restrictions.len(), 1);
    }

    #[test]
    fn host_address_becomes_slash_32() {
        let q = parse("SELECT QUERY FROM ALL WHERE dst_ip = 1.2.3.4").unwrap();
        match &q.restrictions[0] {
            Restriction::IpFeature { prefix, .. } => assert_eq!(prefix.len(), 32),
            other => panic!("unexpected restriction {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_queries() {
        assert!(parse("").is_err());
        assert!(parse("SELECT NOPE FROM ALL").is_err());
        assert!(parse("SELECT QUERY").is_err());
        assert!(parse("SELECT QUERY FROM [5, 5)").is_err());
        assert!(parse("SELECT QUERY FROM [9, 2)").is_err());
        assert!(parse("SELECT QUERY FROM ALL WHERE proto = 999").is_err());
        assert!(parse("SELECT QUERY FROM ALL WHERE src_ip = 300.0.0.0/8").is_err());
        assert!(parse("SELECT QUERY FROM ALL WHERE nonsense = 1").is_err());
        assert!(parse("SELECT QUERY FROM ALL trailing").is_err());
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = parse("SELECT QUERY FROM").unwrap_err();
        assert!(err.to_string().contains("end of query"), "{err}");
        let err = parse("SELECT TOPK x FROM ALL").unwrap_err();
        assert!(err.to_string().contains("number"), "{err}");
    }

    #[test]
    fn port_bounds() {
        assert!(parse("SELECT QUERY FROM ALL WHERE dst_port = 65535").is_ok());
        assert!(parse("SELECT QUERY FROM ALL WHERE dst_port = 65536").is_err());
        assert!(parse("SELECT QUERY FROM ALL WHERE proto = 255").is_ok());
        assert!(parse("SELECT QUERY FROM ALL WHERE proto = 256").is_err());
    }
}
