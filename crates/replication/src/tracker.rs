//! Per-partition access records (the manager's view, Fig. 6 ①②).

use megastream_flow::time::Timestamp;
use megastream_telemetry::Telemetry;

/// Runtime state of one tracked partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartitionState {
    /// Remote accesses recorded so far.
    pub accesses: u64,
    /// Accumulated shipped result volume, bytes.
    pub shipped_bytes: u64,
    /// Whether the partition has been replicated.
    pub replicated: bool,
    /// Time of the most recent access, if any.
    pub last_access: Option<Timestamp>,
}

/// Records partition accesses and retires partitions into a history of
/// total volumes, which the distribution-aware policy fits its threshold
/// from ("the aggregate result size for older partitions are from a
/// distribution that can be used to predict future access for partitions
/// created at a later date").
#[derive(Debug, Clone, Default)]
pub struct AccessTracker {
    partitions: Vec<PartitionState>,
    /// Total shipped volumes of retired partitions.
    history: Vec<u64>,
    tel: Telemetry,
}

impl PartialEq for AccessTracker {
    fn eq(&self, other: &Self) -> bool {
        self.partitions == other.partitions && self.history == other.history
    }
}

impl AccessTracker {
    /// Creates a tracker for `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        AccessTracker {
            partitions: vec![PartitionState::default(); partitions],
            history: Vec::new(),
            tel: Telemetry::disabled(),
        }
    }

    /// Connects the tracker to a telemetry registry: remote accesses,
    /// replica churn, and retirements are counted under `replication.*`.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
    }

    /// Number of tracked partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether no partitions are tracked.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Records one remote access shipping `bytes`. Returns the updated
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn record_access(&mut self, partition: usize, bytes: u64, at: Timestamp) -> PartitionState {
        let p = &mut self.partitions[partition];
        p.accesses += 1;
        if !p.replicated {
            p.shipped_bytes += bytes;
        }
        p.last_access = Some(at);
        self.tel.counter("replication.accesses_total").inc();
        *p
    }

    /// Marks a partition replicated (subsequent accesses are local).
    pub fn mark_replicated(&mut self, partition: usize) {
        if !self.partitions[partition].replicated {
            self.tel.counter("replication.replicas_created_total").inc();
            self.tel.gauge("replication.replicated_partitions").add(1);
        }
        self.partitions[partition].replicated = true;
    }

    /// Current state of a partition.
    pub fn state(&self, partition: usize) -> PartitionState {
        self.partitions[partition]
    }

    /// Retires a partition: its shipped volume joins the history used for
    /// distribution fitting, and its live state resets.
    pub fn retire(&mut self, partition: usize) {
        let p = &mut self.partitions[partition];
        if p.replicated {
            self.tel.gauge("replication.replicated_partitions").sub(1);
        }
        self.tel
            .counter("replication.partitions_retired_total")
            .inc();
        self.history.push(p.shipped_bytes);
        *p = PartitionState::default();
        self.tel
            .gauge("replication.memory.bytes")
            .set(self.deep_bytes() as i64);
    }

    /// Deterministic logical memory of the tracker, following the
    /// data-plane accounting convention: a pure function of the partition
    /// and history *counts* (never allocator capacities), plus a fixed
    /// per-struct header — so structurally equal trackers always agree.
    /// The only unbounded part is the retirement history.
    pub fn deep_bytes(&self) -> usize {
        self.partitions.len() * std::mem::size_of::<PartitionState>()
            + self.history.len() * std::mem::size_of::<u64>()
            + std::mem::size_of::<Self>()
    }

    /// Total-volume samples of retired partitions.
    pub fn history(&self) -> &[u64] {
        &self.history
    }

    /// Seeds the history directly (e.g. from an offline trace prefix).
    pub fn seed_history(&mut self, volumes: impl IntoIterator<Item = u64>) {
        self.history.extend(volumes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_accumulates() {
        let mut t = AccessTracker::new(2);
        t.record_access(0, 100, Timestamp::from_secs(1));
        let s = t.record_access(0, 50, Timestamp::from_secs(2));
        assert_eq!(s.accesses, 2);
        assert_eq!(s.shipped_bytes, 150);
        assert_eq!(s.last_access, Some(Timestamp::from_secs(2)));
        assert_eq!(t.state(1), PartitionState::default());
    }

    #[test]
    fn replicated_partitions_stop_accumulating() {
        let mut t = AccessTracker::new(1);
        t.record_access(0, 100, Timestamp::ZERO);
        t.mark_replicated(0);
        let s = t.record_access(0, 100, Timestamp::from_secs(1));
        assert_eq!(s.shipped_bytes, 100);
        assert_eq!(s.accesses, 2);
        assert!(s.replicated);
    }

    #[test]
    fn retire_moves_volume_to_history() {
        let mut t = AccessTracker::new(1);
        t.record_access(0, 70, Timestamp::ZERO);
        t.retire(0);
        assert_eq!(t.history(), &[70]);
        assert_eq!(t.state(0), PartitionState::default());
        t.seed_history([10, 20]);
        assert_eq!(t.history().len(), 3);
    }

    #[test]
    fn deep_bytes_is_a_pure_function_of_counts() {
        let mut t = AccessTracker::new(3);
        let base = t.deep_bytes();
        assert_eq!(
            base,
            3 * std::mem::size_of::<PartitionState>() + std::mem::size_of::<AccessTracker>()
        );
        // Accesses do not change the footprint; retirement grows history.
        t.record_access(1, 9, Timestamp::ZERO);
        assert_eq!(t.deep_bytes(), base);
        t.retire(1);
        assert_eq!(t.deep_bytes(), base + std::mem::size_of::<u64>());
        // Structurally equal trackers agree regardless of construction path.
        let mut u = AccessTracker::new(3);
        u.seed_history([9]);
        assert_eq!(u.deep_bytes(), t.deep_bytes());
    }

    #[test]
    fn retire_updates_memory_gauge() {
        let tel = Telemetry::new();
        let mut t = AccessTracker::new(2);
        t.set_telemetry(&tel);
        t.record_access(0, 70, Timestamp::ZERO);
        t.retire(0);
        assert_eq!(
            tel.snapshot().gauge("replication.memory.bytes"),
            Some(t.deep_bytes() as i64)
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_partition_panics() {
        let mut t = AccessTracker::new(1);
        t.record_access(5, 1, Timestamp::ZERO);
    }
}
