//! Ski-rental threshold rules.
//!
//! The decision variable is the *accumulated shipped volume* of a partition
//! (the paper: "we use the aggregated data volume of past query results of
//! one partition to predict its expected number of future accesses"); the
//! one-time cost is the partition's replication volume. A policy replicates
//! the first time the accumulated volume reaches its threshold.

use rand::Rng;

/// The deterministic break-even threshold (Karlin et al., competitive
/// snoopy caching): replicate once shipped volume equals the replication
/// cost. Worst-case cost is at most twice the offline optimum (plus the
/// overshoot of the final discrete query).
pub fn break_even_threshold(replication_cost: u64) -> u64 {
    replication_cost
}

/// A randomized threshold achieving expected competitive ratio e/(e−1) ≈
/// 1.582 against oblivious adversaries: the threshold is `replication_cost`
/// scaled by a random factor `z ∈ [0, 1]` drawn with density
/// `f(z) = e^z / (e − 1)`.
pub fn randomized_threshold<R: Rng + ?Sized>(rng: &mut R, replication_cost: u64) -> u64 {
    // Inverse-CDF sampling: F(z) = (e^z - 1)/(e - 1)  ⇒  z = ln(1 + u(e-1)).
    let u: f64 = rng.gen();
    let z = (1.0 + u * (std::f64::consts::E - 1.0)).ln();
    (replication_cost as f64 * z).round() as u64
}

/// The average-case optimal threshold given an empirical distribution of
/// per-partition *total shipped volume* (from already-retired partitions).
///
/// For threshold `θ`, the expected cost under total volume `V` is
/// `E[min(V, θ)] + R · P(V > θ)`; the optimum is attained at one of the
/// sample values (or 0, or beyond the maximum), so those candidates are
/// evaluated exactly.
///
/// Returns `u64::MAX` ("never replicate") when samples are empty or no
/// finite threshold beats never replicating.
pub fn optimal_threshold(total_volume_samples: &[u64], replication_cost: u64) -> u64 {
    if total_volume_samples.is_empty() {
        return u64::MAX;
    }
    let mut sorted: Vec<u64> = total_volume_samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;

    let expected_cost = |theta: u64| -> f64 {
        let mut cost = 0.0;
        for &v in &sorted {
            if v > theta {
                cost += theta as f64 + replication_cost as f64;
            } else {
                cost += v as f64;
            }
        }
        cost / n
    };

    // Candidates: replicate immediately (0), each observed volume, never.
    let mut best_theta = u64::MAX;
    let mut best_cost = expected_cost(u64::MAX);
    for &candidate in std::iter::once(&0).chain(sorted.iter()) {
        let c = expected_cost(candidate);
        if c < best_cost - 1e-9 {
            best_cost = c;
            best_theta = candidate;
        }
    }
    best_theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn break_even_is_identity() {
        assert_eq!(break_even_threshold(1000), 1000);
    }

    #[test]
    fn randomized_threshold_in_range_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = 1_000_000u64;
        let samples: Vec<u64> = (0..50_000)
            .map(|_| randomized_threshold(&mut rng, r))
            .collect();
        assert!(samples.iter().all(|&t| t <= r));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // E[z] = ∫ z e^z/(e-1) dz over [0,1] = 1/(e-1) ≈ 0.582.
        let expect = r as f64 / (std::f64::consts::E - 1.0);
        assert!((mean - expect).abs() / expect < 0.02, "mean {mean}");
    }

    #[test]
    fn optimal_threshold_replicates_eagerly_for_hot_partitions() {
        // Every partition ships 10× the replication cost → replicate at 0.
        let samples = vec![10_000u64; 50];
        assert_eq!(optimal_threshold(&samples, 1_000), 0);
    }

    #[test]
    fn optimal_threshold_never_replicates_cold_partitions() {
        // Every partition ships far less than the replication cost.
        let samples = vec![10u64; 50];
        assert_eq!(optimal_threshold(&samples, 1_000_000), u64::MAX);
    }

    #[test]
    fn optimal_threshold_handles_mixture() {
        // Half cold (volume 10), half hot (volume 10_000), R = 1_000.
        // Immediate replication: E = (10·0 + 1000·...) evaluate: θ=0 →
        // cost = R + 0 per partition = 1000.
        // θ=10: cold pay 10; hot pay 10+1000 → E = (10 + 1010)/2 = 510.
        // θ=∞: E = (10 + 10_000)/2 = 5005. So θ=10 wins.
        let mut samples = vec![10u64; 50];
        samples.extend(vec![10_000u64; 50]);
        assert_eq!(optimal_threshold(&samples, 1_000), 10);
    }

    #[test]
    fn optimal_threshold_empty_means_never() {
        assert_eq!(optimal_threshold(&[], 100), u64::MAX);
    }

    #[test]
    fn optimal_threshold_beats_break_even_on_average() {
        // Geometric-ish volumes: many small, few large.
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<u64> = (0..2_000)
            .map(|_| {
                let mut v = 0u64;
                while rng.gen::<f64>() < 0.7 {
                    v += 100;
                }
                v
            })
            .collect();
        let r = 500u64;
        let theta_opt = optimal_threshold(&samples, r);
        let avg = |theta: u64| -> f64 {
            samples
                .iter()
                .map(|&v| {
                    if v > theta {
                        (theta + r) as f64
                    } else {
                        v as f64
                    }
                })
                .sum::<f64>()
                / samples.len() as f64
        };
        assert!(
            avg(theta_opt) <= avg(break_even_threshold(r)) + 1e-9,
            "distribution-aware ({}) not better than break-even ({})",
            avg(theta_opt),
            avg(break_even_threshold(r))
        );
    }
}
