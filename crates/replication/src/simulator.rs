//! Offline policy replay and scoring (experiment E8, Fig. 6).

use megastream_flow::time::Timestamp;

use crate::policy::ReplicationPolicy;
use crate::tracker::AccessTracker;

/// One remote access in a replayable trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The accessed partition.
    pub partition: usize,
    /// Access time.
    pub ts: Timestamp,
    /// Result volume shipped if the partition is not replicated locally.
    pub result_bytes: u64,
}

/// Outcome of replaying a trace under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Policy name.
    pub policy: String,
    /// Bytes shipped for remote (non-replicated) accesses.
    pub shipped_bytes: u64,
    /// Bytes spent on replication transfers.
    pub replication_bytes: u64,
    /// Accesses answered remotely.
    pub remote_accesses: u64,
    /// Accesses answered from a local replica.
    pub local_accesses: u64,
    /// Partitions that ended up replicated.
    pub replicated_partitions: u64,
    /// The offline optimum's total transfer volume for the same trace.
    pub offline_optimal_bytes: u64,
}

impl ReplayReport {
    /// Total bytes moved across the network.
    pub fn total_bytes(&self) -> u64 {
        self.shipped_bytes + self.replication_bytes
    }

    /// Ratio of this policy's transfer volume to the offline optimum.
    pub fn competitive_ratio(&self) -> f64 {
        if self.offline_optimal_bytes == 0 {
            if self.total_bytes() == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.total_bytes() as f64 / self.offline_optimal_bytes as f64
        }
    }
}

/// Replays `trace` (sorted by time) under `policy`.
///
/// `replication_cost` gives each partition's replication volume in bytes.
/// After each access the policy is consulted; replication takes effect
/// immediately (subsequent accesses to that partition are local).
///
/// The report includes the offline optimum: for each partition,
/// `min(total shipped volume, replication cost)` — the clairvoyant
/// choice between never replicating and replicating before the first
/// access.
///
/// # Panics
///
/// Panics if the trace references a partition with no entry in
/// `replication_cost`.
pub fn replay(
    trace: &[Access],
    replication_cost: &[u64],
    policy: &ReplicationPolicy,
) -> ReplayReport {
    replay_with_history(trace, replication_cost, policy, &[])
}

/// Like [`replay`], but seeds the tracker's retired-partition volume
/// history first — this is how the distribution-aware policy is evaluated:
/// "the aggregate result size for older partitions are from a distribution
/// that can be used to predict future access for partitions created at a
/// later date" (§VII). Train it by passing the per-partition total volumes
/// of an earlier trace (e.g. via [`training_volumes`]).
pub fn replay_with_history(
    trace: &[Access],
    replication_cost: &[u64],
    policy: &ReplicationPolicy,
    history: &[u64],
) -> ReplayReport {
    let partitions = replication_cost.len();
    let mut tracker = AccessTracker::new(partitions);
    tracker.seed_history(history.iter().copied());
    let mut report = ReplayReport {
        policy: policy.name().to_owned(),
        shipped_bytes: 0,
        replication_bytes: 0,
        remote_accesses: 0,
        local_accesses: 0,
        replicated_partitions: 0,
        offline_optimal_bytes: 0,
    };
    let mut total_volume = vec![0u64; partitions];
    for access in trace {
        assert!(
            access.partition < partitions,
            "trace references partition {} but only {} costs given",
            access.partition,
            partitions
        );
        total_volume[access.partition] += access.result_bytes;
        let state_before = tracker.state(access.partition);
        if state_before.replicated {
            report.local_accesses += 1;
            tracker.record_access(access.partition, access.result_bytes, access.ts);
            continue;
        }
        report.remote_accesses += 1;
        report.shipped_bytes += access.result_bytes;
        let state = tracker.record_access(access.partition, access.result_bytes, access.ts);
        let cost = replication_cost[access.partition];
        if policy.should_replicate(access.partition, state, cost, tracker.history()) {
            tracker.mark_replicated(access.partition);
            report.replication_bytes += cost;
            report.replicated_partitions += 1;
            // Retire the partition's shipped volume into the history so the
            // distribution-aware policy learns online. (Replicated
            // partitions no longer accumulate, so their final shipped
            // volume is known now; unreplicated partitions are retired at
            // the end below, before the report is returned.)
        }
    }
    // Offline optimum.
    report.offline_optimal_bytes = total_volume
        .iter()
        .zip(replication_cost.iter())
        .map(|(&v, &c)| v.min(c))
        .sum();
    report
}

/// Per-partition total shipped volumes of a trace — the history sample a
/// distribution-aware policy trains on (see [`replay_with_history`]).
pub fn training_volumes(trace: &[Access], partitions: usize) -> Vec<u64> {
    let mut volumes = vec![0u64; partitions];
    for access in trace {
        if access.partition < partitions {
            volumes[access.partition] += access.result_bytes;
        }
    }
    volumes
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace_for(partition: usize, volumes: &[u64]) -> Vec<Access> {
        volumes
            .iter()
            .enumerate()
            .map(|(i, &v)| Access {
                partition,
                ts: Timestamp::from_secs(i as u64),
                result_bytes: v,
            })
            .collect()
    }

    #[test]
    fn never_ships_everything() {
        let trace = trace_for(0, &[100, 100, 100]);
        let r = replay(&trace, &[150], &ReplicationPolicy::Never);
        assert_eq!(r.shipped_bytes, 300);
        assert_eq!(r.replication_bytes, 0);
        assert_eq!(r.remote_accesses, 3);
        assert_eq!(r.local_accesses, 0);
        // OPT replicates (cost 150 < 300).
        assert_eq!(r.offline_optimal_bytes, 150);
        assert!((r.competitive_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn always_replicates_on_first_access() {
        let trace = trace_for(0, &[100, 100, 100]);
        let r = replay(&trace, &[150], &ReplicationPolicy::Always);
        // First access ships 100, then replication (150), rest local.
        assert_eq!(r.shipped_bytes, 100);
        assert_eq!(r.replication_bytes, 150);
        assert_eq!(r.local_accesses, 2);
        assert_eq!(r.replicated_partitions, 1);
    }

    #[test]
    fn break_even_on_cold_partition_never_pays_replication() {
        let trace = trace_for(0, &[10, 10]);
        let r = replay(
            &trace,
            &[10_000],
            &ReplicationPolicy::BreakEven { factor: 1.0 },
        );
        assert_eq!(r.replication_bytes, 0);
        assert_eq!(r.total_bytes(), 20);
        assert_eq!(r.offline_optimal_bytes, 20);
        assert!((r.competitive_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn break_even_on_hot_partition_bounded_by_two_opt() {
        let trace = trace_for(0, &(0..100).map(|_| 50u64).collect::<Vec<_>>());
        let cost = 500u64;
        let r = replay(
            &trace,
            &[cost],
            &ReplicationPolicy::BreakEven { factor: 1.0 },
        );
        // Ships until 500 accumulated, replicates, rest local.
        assert_eq!(r.shipped_bytes, 500);
        assert_eq!(r.replication_bytes, 500);
        assert_eq!(r.offline_optimal_bytes, 500);
        assert!(r.competitive_ratio() <= 2.0 + 1e-9);
    }

    #[test]
    fn history_seeded_replay_changes_distribution_aware_behaviour() {
        // Cold history: every earlier partition shipped almost nothing, so
        // the fitted threshold is "never replicate".
        let trace = trace_for(0, &(0..20).map(|_| 100u64).collect::<Vec<_>>());
        let cost = 500u64;
        let policy = ReplicationPolicy::DistributionAware { min_samples: 4 };
        let cold = replay_with_history(&trace, &[cost], &policy, &[10, 10, 10, 10, 10]);
        assert_eq!(cold.replication_bytes, 0);
        // Hot history: replicate immediately.
        let hot = replay_with_history(&trace, &[cost], &policy, &[9_000, 9_000, 9_000, 9_000]);
        assert_eq!(hot.replicated_partitions, 1);
        assert!(hot.total_bytes() < cold.total_bytes());
    }

    #[test]
    fn training_volumes_sums_per_partition() {
        let mut trace = trace_for(0, &[10, 20]);
        trace.extend(trace_for(2, &[5]));
        let vols = training_volumes(&trace, 3);
        assert_eq!(vols, vec![30, 0, 5]);
    }

    #[test]
    fn empty_trace() {
        let r = replay(&[], &[100], &ReplicationPolicy::Always);
        assert_eq!(r.total_bytes(), 0);
        assert_eq!(r.offline_optimal_bytes, 0);
        assert_eq!(r.competitive_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn unknown_partition_panics() {
        let trace = trace_for(3, &[1]);
        let _ = replay(&trace, &[100], &ReplicationPolicy::Never);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The classic guarantee: break-even total cost is at most
        /// 2·OPT plus the overshoot of the final discrete query.
        #[test]
        fn prop_break_even_two_competitive(
            volumes in proptest::collection::vec(1u64..1000, 1..100),
            cost in 1u64..5000,
        ) {
            let trace = trace_for(0, &volumes);
            let r = replay(&trace, &[cost], &ReplicationPolicy::BreakEven { factor: 1.0 });
            let max_single = volumes.iter().max().copied().unwrap_or(0);
            prop_assert!(
                r.total_bytes() <= 2 * r.offline_optimal_bytes + max_single,
                "cost {} opt {} overshoot {}",
                r.total_bytes(), r.offline_optimal_bytes, max_single
            );
        }

        /// Never and Always are both at most... unbounded, but each is
        /// optimal in its favourable regime.
        #[test]
        fn prop_extremes_bracket_optimum(
            volumes in proptest::collection::vec(1u64..1000, 1..50),
            cost in 1u64..5000,
        ) {
            let trace = trace_for(0, &volumes);
            let never = replay(&trace, &[cost], &ReplicationPolicy::Never);
            let total: u64 = volumes.iter().sum();
            prop_assert_eq!(never.total_bytes(), total);
            prop_assert_eq!(never.offline_optimal_bytes, total.min(cost));
            // OPT is never worse than either extreme.
            let always = replay(&trace, &[cost], &ReplicationPolicy::Always);
            prop_assert!(never.offline_optimal_bytes <= always.total_bytes());
            prop_assert!(never.offline_optimal_bytes <= never.total_bytes());
        }
    }
}
