//! Adaptive replication via ski rental (paper §VII, Fig. 6).
//!
//! When a data store repeatedly answers remote queries over a partition it
//! owns, the system faces the classical *ski-rental* dilemma: keep paying
//! the per-query shipping cost ("renting"), or pay the one-time cost of
//! replicating the partition ("buying"). This crate implements:
//!
//! * [`skirental`] — the threshold mathematics: the deterministic
//!   break-even rule (2-competitive, Karlin et al.), the randomized rule
//!   (e/(e−1)-competitive), and the distribution-aware average-case optimal
//!   threshold (Fujiwara & Iwama style) fitted from past partitions,
//! * [`policy`] — the [`ReplicationPolicy`](policy::ReplicationPolicy)
//!   enum the manager installs per data store,
//! * [`tracker`] — per-partition access records ("the accesses of
//!   partitions ① can be recorded by the manager"),
//! * [`simulator`] — an offline replayer that scores a policy against a
//!   query trace and against the offline optimum (experiment E8).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod policy;
pub mod simulator;
pub mod skirental;
pub mod tracker;

pub use policy::ReplicationPolicy;
pub use simulator::{replay, replay_with_history, training_volumes, Access, ReplayReport};
pub use skirental::{break_even_threshold, optimal_threshold, randomized_threshold};
pub use tracker::{AccessTracker, PartitionState};
