//! Replication policies the manager can install.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::skirental::{break_even_threshold, optimal_threshold, randomized_threshold};
use crate::tracker::PartitionState;

/// When to replicate a partition, decided after each recorded access.
///
/// The first three are the baselines of experiment E8; the last two are the
/// ski-rental policies of §VII.
#[derive(Debug, Clone)]
pub enum ReplicationPolicy {
    /// Never replicate: every remote access ships its result.
    Never,
    /// Replicate a partition on its first access.
    Always,
    /// Deterministic ski rental: replicate once the accumulated shipped
    /// volume reaches `factor ×` the replication cost. `factor = 1.0` is
    /// the classic 2-competitive break-even rule.
    BreakEven {
        /// Threshold scale relative to the replication cost.
        factor: f64,
    },
    /// Randomized ski rental (e/(e−1)-competitive in expectation). Each
    /// partition draws its own threshold deterministically from the seed.
    Randomized {
        /// Base RNG seed (mixed with the partition id).
        seed: u64,
    },
    /// Distribution-aware: the threshold minimizing expected cost under the
    /// empirical distribution of retired partitions' total volumes; falls
    /// back to break-even until at least `min_samples` are available.
    DistributionAware {
        /// Minimum history size before trusting the fit.
        min_samples: usize,
    },
}

impl ReplicationPolicy {
    /// Decides whether `partition` should be replicated *now*, given its
    /// state after the latest access.
    ///
    /// `replication_cost` is the byte cost of replicating this partition;
    /// `history` is the retired-partition volume history (used only by
    /// [`ReplicationPolicy::DistributionAware`]).
    pub fn should_replicate(
        &self,
        partition: usize,
        state: PartitionState,
        replication_cost: u64,
        history: &[u64],
    ) -> bool {
        if state.replicated {
            return false;
        }
        match self {
            ReplicationPolicy::Never => false,
            ReplicationPolicy::Always => state.accesses >= 1,
            ReplicationPolicy::BreakEven { factor } => {
                let theta = (break_even_threshold(replication_cost) as f64 * factor).round() as u64;
                state.shipped_bytes >= theta
            }
            ReplicationPolicy::Randomized { seed } => {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (partition as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let theta = randomized_threshold(&mut rng, replication_cost);
                state.shipped_bytes >= theta
            }
            ReplicationPolicy::DistributionAware { min_samples } => {
                let theta = if history.len() >= *min_samples {
                    optimal_threshold(history, replication_cost)
                } else {
                    break_even_threshold(replication_cost)
                };
                state.shipped_bytes >= theta
            }
        }
    }

    /// Short policy name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ReplicationPolicy::Never => "never",
            ReplicationPolicy::Always => "always",
            ReplicationPolicy::BreakEven { .. } => "break-even",
            ReplicationPolicy::Randomized { .. } => "randomized",
            ReplicationPolicy::DistributionAware { .. } => "distribution-aware",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::time::Timestamp;

    fn state(accesses: u64, shipped: u64) -> PartitionState {
        PartitionState {
            accesses,
            shipped_bytes: shipped,
            replicated: false,
            last_access: Some(Timestamp::ZERO),
        }
    }

    #[test]
    fn never_and_always() {
        assert!(!ReplicationPolicy::Never.should_replicate(0, state(100, 1 << 30), 10, &[]));
        assert!(ReplicationPolicy::Always.should_replicate(0, state(1, 1), 1 << 30, &[]));
        assert!(!ReplicationPolicy::Always.should_replicate(0, state(0, 0), 10, &[]));
    }

    #[test]
    fn break_even_at_threshold() {
        let p = ReplicationPolicy::BreakEven { factor: 1.0 };
        assert!(!p.should_replicate(0, state(3, 999), 1000, &[]));
        assert!(p.should_replicate(0, state(4, 1000), 1000, &[]));
        let p2 = ReplicationPolicy::BreakEven { factor: 2.0 };
        assert!(!p2.should_replicate(0, state(4, 1500), 1000, &[]));
        assert!(p2.should_replicate(0, state(5, 2000), 1000, &[]));
    }

    #[test]
    fn replicated_state_never_replicates_again() {
        let mut s = state(10, 1 << 20);
        s.replicated = true;
        assert!(!ReplicationPolicy::Always.should_replicate(0, s, 10, &[]));
    }

    #[test]
    fn randomized_is_deterministic_per_partition() {
        let p = ReplicationPolicy::Randomized { seed: 42 };
        let a = p.should_replicate(3, state(1, 500), 1000, &[]);
        let b = p.should_replicate(3, state(1, 500), 1000, &[]);
        assert_eq!(a, b);
        // Thresholds differ across partitions: with 1000 partitions at
        // shipped = 500 ≈ E[θ]·0.86, both decisions must occur.
        let decisions: Vec<bool> = (0..1000)
            .map(|i| p.should_replicate(i, state(1, 500), 1000, &[]))
            .collect();
        assert!(decisions.iter().any(|&d| d));
        assert!(decisions.iter().any(|&d| !d));
    }

    #[test]
    fn distribution_aware_falls_back_then_fits() {
        let p = ReplicationPolicy::DistributionAware { min_samples: 5 };
        // No history → break-even behaviour.
        assert!(!p.should_replicate(0, state(1, 999), 1000, &[]));
        assert!(p.should_replicate(0, state(1, 1000), 1000, &[]));
        // Hot history → replicate immediately.
        let hot = vec![100_000u64; 10];
        assert!(p.should_replicate(0, state(1, 0), 1000, &hot));
        // Cold history → never replicate even past break-even.
        let cold = vec![1u64; 10];
        assert!(!p.should_replicate(0, state(1, 5_000), 1000, &cold));
    }

    #[test]
    fn names() {
        assert_eq!(ReplicationPolicy::Never.name(), "never");
        assert_eq!(
            ReplicationPolicy::DistributionAware { min_samples: 1 }.name(),
            "distribution-aware"
        );
    }
}
