//! A minimal, faithful Rust lexer.
//!
//! The whole point of `megalint` over the `grep`/`awk` gates it replaces is
//! that findings come from *token* space, not byte space: an `unwrap()` in a
//! doc comment, a `panic!` inside a raw string, or an `unsafe` spelled in a
//! test-fixture string literal must not trip a gate, while the same token in
//! code must. The lexer therefore handles the lexical constructs that defeat
//! regexes:
//!
//! * nested block comments (`/* /* */ */`),
//! * line comments and doc comments (`//`, `///`, `//!`),
//! * string literals with escapes, byte strings, and raw strings with an
//!   arbitrary number of `#` guards (`r#"…"#`, `br##"…"##`),
//! * char literals vs lifetimes (`'a'` is a char, `'a` in `&'a str` is a
//!   lifetime, `'_` is the anonymous lifetime),
//! * raw identifiers (`r#fn`) vs raw strings (`r#"…"`).
//!
//! Output is a flat [`Token`] stream with byte offsets and 1-based
//! line/column positions. Comments and whitespace are skipped; passes only
//! see code. The lexer never fails: unknown bytes become `Punct` tokens so
//! analysis degrades gracefully instead of aborting a whole file.

/// What a token is. Only the distinctions the passes need are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `unsafe`, `HashMap`, `r#fn`).
    Ident,
    /// A lifetime such as `'a` or `'_` (without a trailing quote).
    Lifetime,
    /// A character or byte-character literal (`'x'`, `b'\n'`).
    CharLit,
    /// Any string-like literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`.
    StrLit,
    /// A numeric literal.
    NumLit,
    /// A single punctuation byte (`.`, `(`, `[`, `!`, `#`, …).
    Punct(u8),
}

/// One lexed token with its position in the source file.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// For [`TokenKind::StrLit`] tokens: the literal's *contents* (between
    /// the quotes, escapes left as written). For other kinds, the raw text.
    pub fn str_contents<'a>(&self, src: &'a str) -> &'a str {
        let text = self.text(src);
        let bytes = text.as_bytes();
        let mut start = 0;
        while start < bytes.len() && (bytes[start] == b'b' || bytes[start] == b'r') {
            start += 1;
        }
        let hashes = bytes[start..].iter().take_while(|&&b| b == b'#').count();
        start += hashes;
        if start < bytes.len() && bytes[start] == b'"' {
            let inner_start = start + 1;
            let inner_end = text.len().saturating_sub(1 + hashes);
            if inner_start <= inner_end {
                return &text[inner_start..inner_end];
            }
        }
        text
    }
}

/// Lexes `src` into a token stream, skipping comments and whitespace.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => {
                    self.string_body();
                    self.emit(TokenKind::StrLit, start, line, col);
                }
                b'r' | b'b' if self.is_literal_prefix() => {
                    self.prefixed_literal();
                    // prefixed_literal emits nothing itself; classify here.
                    let kind = if self.src[start..self.pos].contains(&b'"') {
                        TokenKind::StrLit
                    } else if self.src[start..self.pos].contains(&b'\'') {
                        TokenKind::CharLit
                    } else {
                        TokenKind::Ident // raw identifier r#foo
                    };
                    self.emit(kind, start, line, col);
                }
                b'\'' => {
                    let kind = self.quote();
                    self.emit(kind, start, line, col);
                }
                b'0'..=b'9' => {
                    self.number();
                    self.emit(TokenKind::NumLit, start, line, col);
                }
                b if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.ident();
                    self.emit(TokenKind::Ident, start, line, col);
                }
                other => {
                    self.bump();
                    self.emit(TokenKind::Punct(other), start, line, col);
                }
            }
        }
        self.out
    }

    /// Is the `r`/`b` at the cursor the start of a raw string, byte string,
    /// byte char, or raw identifier (as opposed to a plain identifier that
    /// merely begins with `r` or `b`)?
    fn is_literal_prefix(&self) -> bool {
        match self.peek(0) {
            b'r' => matches!(self.peek(1), b'"' | b'#'),
            b'b' => match self.peek(1) {
                b'"' | b'\'' => true,
                b'r' => matches!(self.peek(2), b'"' | b'#'),
                _ => false,
            },
            _ => false,
        }
    }

    /// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'…'`, or `r#ident`.
    fn prefixed_literal(&mut self) {
        if self.peek(0) == b'b' {
            self.bump();
        }
        if self.peek(0) == b'r' {
            self.bump();
            let mut hashes = 0;
            while self.peek(0) == b'#' {
                self.bump();
                hashes += 1;
            }
            if self.peek(0) == b'"' {
                self.raw_string_body(hashes);
            } else {
                // `r#ident` raw identifier (hashes == 1 in valid Rust).
                self.ident();
            }
        } else if self.peek(0) == b'"' {
            self.string_body();
        } else if self.peek(0) == b'\'' {
            self.quote();
        }
    }

    fn line_comment(&mut self) {
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        // Nested: `/* a /* b */ c */` only closes at depth 0.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a `"…"` body starting at the opening quote.
    fn string_body(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes a raw-string body `"…"##` whose opener had `hashes` guards.
    fn raw_string_body(&mut self, hashes: usize) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            if self.bump() == b'"' {
                let mut seen = 0;
                while seen < hashes && self.peek(0) == b'#' {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
        }
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime). Called with
    /// the cursor on the opening `'`.
    fn quote(&mut self) -> TokenKind {
        self.bump(); // '
        match self.peek(0) {
            b'\\' => {
                // Escaped char literal: '\n', '\u{1F600}', '\''. Consume
                // the escaped character first so '\'' closes correctly.
                self.bump();
                if self.pos < self.src.len() {
                    self.bump();
                }
                while self.pos < self.src.len() && self.peek(0) != b'\'' {
                    self.bump();
                }
                if self.pos < self.src.len() {
                    self.bump();
                }
                TokenKind::CharLit
            }
            b if b == b'_' || b.is_ascii_alphabetic() => {
                // Could be 'a' (char) or 'a / 'static (lifetime): scan the
                // identifier; a closing quote right after means char literal.
                self.ident();
                if self.peek(0) == b'\'' {
                    self.bump();
                    TokenKind::CharLit
                } else {
                    TokenKind::Lifetime
                }
            }
            0 => TokenKind::Lifetime, // dangling quote at EOF
            _ => {
                // Non-alphabetic char literal: '+', '3', or multibyte.
                while self.pos < self.src.len() && self.peek(0) != b'\'' {
                    self.bump();
                }
                if self.pos < self.src.len() {
                    self.bump();
                }
                TokenKind::CharLit
            }
        }
    }

    fn ident(&mut self) {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn number(&mut self) {
        // Precision is not needed: consume digits/underscores/hex letters,
        // one fractional part (but never a `..` range), and a type suffix.
        while self.pos < self.src.len() {
            let b = self.peek(0);
            if b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_ascii_digit())
            {
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn comments_are_invisible() {
        assert!(idents("// x.unwrap()\n/* panic!() */ let y = 1;").contains(&"let".to_string()));
        assert!(!idents("// x.unwrap()\n").contains(&"unwrap".to_string()));
        assert!(!idents("/// doc .unwrap()\nfn f() {}").contains(&"unwrap".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "call .unwrap() here";"#;
        assert!(!idents(src).contains(&"unwrap".to_string()));
        let toks = lex(src);
        let lit = toks.iter().find(|t| t.kind == TokenKind::StrLit).unwrap();
        assert_eq!(lit.str_contents(src), "call .unwrap() here");
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r##"let s = r#"panic!("inside") "quoted""#; let x = 1;"##;
        assert!(!idents(src).contains(&"panic".to_string()));
        assert!(idents(src).contains(&"x".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r##"let a = b"unsafe "; let b = br#"unsafe "#; unsafe_code"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"unsafe_code".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 1, "{toks:?}");
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let q = '\''; let n = '\n'; let u = '\u{1F600}';";
        let chars = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#fn = 1;";
        assert!(idents(src).contains(&"r#fn".to_string()));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..10 { a[i]; }";
        let nums: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::NumLit)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }

    #[test]
    fn positions_are_one_based() {
        let src = "fn f() {\n    x.unwrap();\n}";
        let toks = lex(src);
        let unwrap = toks
            .iter()
            .find(|t| t.text(src) == "unwrap")
            .expect("unwrap token");
        assert_eq!(unwrap.line, 2);
        assert_eq!(unwrap.col, 7);
    }

    #[test]
    fn float_literals_and_method_calls() {
        let src = "let x = 1.5e3; let y = 2.max(3); vec.len()";
        let ids = idents(src);
        assert!(ids.contains(&"max".to_string()));
        assert!(ids.contains(&"len".to_string()));
    }
}
