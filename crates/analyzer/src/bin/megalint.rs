//! `megalint` — the workspace static-analysis gate.
//!
//! ```text
//! megalint                     # analyze ., deny mode, human output
//! megalint --json              # machine-readable, stable ordering
//! megalint --explain <pass>    # what a rule checks and why it exists
//! megalint --list-passes       # all passes with one-line summaries
//! megalint --emit-metric-table # the DESIGN.md metric registry table
//! megalint --warn <pass>       # downgrade one pass to advisory
//! ```
//!
//! Exit code 0 when clean (warn findings allowed), 1 on deny findings,
//! stale `lint.allow` entries, or usage/IO errors.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use megastream_analyzer::findings::Level;
use megastream_analyzer::passes::all_passes;
use megastream_analyzer::{run, Config};

struct Args {
    root: PathBuf,
    allow: Option<PathBuf>,
    json: bool,
    verbose: bool,
    emit_metric_table: bool,
    explain: Option<String>,
    list_passes: bool,
    levels: BTreeMap<String, Level>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allow: None,
        json: false,
        verbose: false,
        emit_metric_table: false,
        explain: None,
        list_passes: false,
        levels: BTreeMap::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--allow" => {
                args.allow = Some(PathBuf::from(it.next().ok_or("--allow needs a file")?));
            }
            "--json" => args.json = true,
            "--verbose" | "-v" => args.verbose = true,
            "--emit-metric-table" => args.emit_metric_table = true,
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a pass id")?);
            }
            "--list-passes" => args.list_passes = true,
            "--warn" | "--deny" => {
                let level = if arg == "--warn" {
                    Level::Warn
                } else {
                    Level::Deny
                };
                let pass = it.next().ok_or_else(|| format!("{arg} needs a pass id"))?;
                if !all_passes().iter().any(|p| p.id() == pass) {
                    return Err(format!("unknown pass `{pass}` (see --list-passes)"));
                }
                args.levels.insert(pass, level);
            }
            "--help" | "-h" => {
                emit(HELP);
                emit("\n");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

const HELP: &str = "megalint — megastream workspace static analysis

USAGE: megalint [OPTIONS]

OPTIONS:
    --root <DIR>         workspace root to analyze (default: .)
    --allow <FILE>       allowlist path (default: <root>/lint.allow)
    --json               machine-readable output (sorted, diffable)
    --verbose, -v        also print allowlisted findings
    --explain <PASS>     print what a pass checks and why, then exit
    --list-passes        list all passes, then exit
    --emit-metric-table  print the DESIGN.md metric registry table, then exit
    --warn <PASS>        run PASS at warn level (advisory)
    --deny <PASS>        run PASS at deny level (the default)";

/// Writes to stdout ignoring `EPIPE`, so `megalint | head` exits quietly
/// instead of panicking when the reader closes early.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("megalint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list_passes {
        for pass in all_passes() {
            emit(&format!("{:<16} {}\n", pass.id(), pass.summary()));
        }
        return ExitCode::SUCCESS;
    }
    if let Some(id) = &args.explain {
        for pass in all_passes() {
            if pass.id() == id {
                emit(&format!(
                    "{} — {}\n\n{}\n",
                    pass.id(),
                    pass.summary(),
                    pass.explain()
                ));
                return ExitCode::SUCCESS;
            }
        }
        eprintln!("megalint: unknown pass `{id}` (see --list-passes)");
        return ExitCode::FAILURE;
    }
    let mut config = Config::new(&args.root);
    if let Some(allow) = args.allow {
        config.allow_path = allow;
    }
    config.levels = args.levels;
    let report = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("megalint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.emit_metric_table {
        emit(&report.metric_table.render_markdown());
        return ExitCode::SUCCESS;
    }
    if args.json {
        emit(&report.render_json());
        emit("\n");
    } else {
        emit(&report.render_text(args.verbose));
    }
    if report.is_failure() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
