//! The `lint.allow` suppression file.
//!
//! Every suppression is a *policy decision with a rationale*, checked into
//! the repository next to the code it excuses. The format is line-based:
//!
//! ```text
//! # comment
//! <pass> <path> <key> -- <justification>
//! ```
//!
//! e.g.
//!
//! ```text
//! panic-surface crates/flowtree/src/tree.rs expect -- arena ids are \
//!     internal invariants; a dangling id is a bug, not a recoverable state
//! ```
//!
//! Rules:
//! * the justification is mandatory and non-empty — an excuse without a
//!   reason is rejected at parse time;
//! * an entry matches every finding with the same `(pass, path, key)`
//!   triple (line numbers are deliberately not part of the key: code moves,
//!   policy does not);
//! * an entry that matches **no** finding is itself an error (`stale`), so
//!   the allowlist can only shrink as the code improves — it never
//!   accumulates dead excuses;
//! * `Warn`-level findings are not allowlistable: they never fail the gate,
//!   so excusing them would only hide information.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::findings::{Finding, Level};

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Pass id the entry applies to.
    pub pass: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Finding key it matches (`unwrap`, `HashMap`, a metric name, …).
    pub key: String,
    /// Why the suppression is sound. Mandatory.
    pub justification: String,
    /// 1-based line in `lint.allow` (for error reporting).
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Loads `path`, returning an empty allowlist if the file is absent.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        }
    }

    /// Parses the line-based format. Lines ending in `\` continue onto the
    /// next line, so long justifications can wrap.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        let mut pending = String::new();
        let mut start_line = 0u32;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let joined = if pending.is_empty() {
                start_line = line_no;
                raw.trim().to_string()
            } else {
                format!("{pending} {}", raw.trim())
            };
            if let Some(stripped) = joined.strip_suffix('\\') {
                pending = stripped.trim_end().to_string();
                continue;
            }
            pending = String::new();
            let line = joined.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, justification) = line
                .split_once(" -- ")
                .ok_or_else(|| format!("lint.allow:{start_line}: missing ` -- justification`"))?;
            let justification = justification.trim();
            if justification.is_empty() {
                return Err(format!("lint.allow:{start_line}: empty justification"));
            }
            let fields: Vec<&str> = head.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(format!(
                    "lint.allow:{start_line}: expected `<pass> <path> <key> -- <justification>`, \
                     got {} fields before ` -- `",
                    fields.len()
                ));
            }
            entries.push(AllowEntry {
                pass: fields[0].to_string(),
                path: fields[1].to_string(),
                key: fields[2].to_string(),
                justification: justification.to_string(),
                line: start_line,
            });
        }
        if !pending.is_empty() {
            return Err("lint.allow: dangling line continuation at EOF".to_string());
        }
        Ok(Allowlist { entries })
    }

    /// Splits `findings` into (kept, suppressed) and reports stale entries.
    /// Only `Deny` findings are eligible for suppression.
    pub fn apply(&self, findings: Vec<Finding>) -> AllowOutcome {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            let hit = (f.level == Level::Deny)
                .then(|| {
                    self.entries
                        .iter()
                        .position(|e| e.pass == f.pass && e.path == f.file && e.key == f.key)
                })
                .flatten();
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed.push(f);
                }
                None => kept.push(f),
            }
        }
        let stale: Vec<AllowEntry> = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(e, _)| e.clone())
            .collect();
        AllowOutcome {
            kept,
            suppressed,
            stale,
        }
    }

    /// Renders the allowlist as a JSON array of entries.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pass\":\"{}\",\"path\":\"{}\",\"key\":\"{}\",\"justification\":\"{}\"}}",
                crate::findings::json_escape(&e.pass),
                crate::findings::json_escape(&e.path),
                crate::findings::json_escape(&e.key),
                crate::findings::json_escape(&e.justification)
            );
        }
        out.push(']');
        out
    }
}

/// Result of filtering findings through the allowlist.
pub struct AllowOutcome {
    /// Findings that survive (still fail the gate if `Deny`).
    pub kept: Vec<Finding>,
    /// Findings excused by an entry.
    pub suppressed: Vec<Finding>,
    /// Entries that matched nothing — themselves a gate failure.
    pub stale: Vec<AllowEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: &'static str, file: &str, key: &str) -> Finding {
        Finding {
            pass,
            level: Level::Deny,
            file: file.into(),
            line: 1,
            col: 1,
            key: key.into(),
            message: String::new(),
        }
    }

    #[test]
    fn parse_and_match() {
        let allow = Allowlist::parse(
            "# header comment\n\
             panic-surface crates/flow/src/mask.rs expect -- schema literals are const-valid\n",
        )
        .unwrap();
        assert_eq!(allow.entries.len(), 1);
        let out = allow.apply(vec![
            finding("panic-surface", "crates/flow/src/mask.rs", "expect"),
            finding("panic-surface", "crates/flow/src/mask.rs", "unwrap"),
        ]);
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.kept.len(), 1);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn justification_is_mandatory() {
        assert!(Allowlist::parse("p f k\n").is_err());
        assert!(Allowlist::parse("p f k -- \n").is_err());
        assert!(Allowlist::parse("p f -- why\n").is_err());
    }

    #[test]
    fn stale_entries_are_reported() {
        let allow = Allowlist::parse("determinism crates/x/src/a.rs HashMap -- audited\n").unwrap();
        let out = allow.apply(vec![]);
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].key, "HashMap");
    }

    #[test]
    fn warn_findings_are_not_suppressible() {
        let allow = Allowlist::parse("panic-surface crates/x/src/a.rs index -- audited\n").unwrap();
        let mut f = finding("panic-surface", "crates/x/src/a.rs", "index");
        f.level = Level::Warn;
        let out = allow.apply(vec![f]);
        assert_eq!(out.kept.len(), 1, "warn finding must not be suppressed");
        assert_eq!(out.stale.len(), 1, "entry matching only warns is stale");
    }

    #[test]
    fn line_continuations() {
        let allow = Allowlist::parse(
            "panic-surface crates/a/src/b.rs expect -- a very \\\n    long reason\n",
        )
        .unwrap();
        assert_eq!(allow.entries[0].justification, "a very long reason");
    }
}
