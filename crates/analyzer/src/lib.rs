//! # megastream-analyzer (`megalint`)
//!
//! A zero-dependency static-analysis subsystem for the megastream
//! workspace. The data plane's correctness rests on conventions the
//! compiler cannot see — panic-free merge/rotate paths, deterministic
//! iteration order, a cycle-free lock graph, stable dotted metric names —
//! and until this crate they were enforced by `grep`/`awk` lines in
//! `scripts/check.sh` that matched comments and string literals and
//! truncated files at the first `#[cfg(test)]`. `megalint` re-states those
//! conventions as lexer-accurate passes over the whole workspace:
//!
//! * [`passes::panic_surface`] — no `unwrap`/`expect`/`panic!` in
//!   data-plane non-test code;
//! * [`passes::determinism`] — wall clocks only in `telemetry::clock`, no
//!   `HashMap`/`HashSet` in result-affecting crates;
//! * [`passes::lock_discipline`] — the cross-file lock acquisition graph
//!   is proven acyclic, no sends under a lock;
//! * [`passes::metric_registry`] — dotted metric names, one type per name,
//!   DESIGN.md registry table in sync;
//! * [`passes::gates`] — token-accurate `unsafe` / `#[ignore]` bans.
//!
//! Suppressions live in `lint.allow` at the workspace root; every entry
//! carries a mandatory justification and goes stale (fails the run) the
//! moment the code it excuses is fixed. Findings are sorted so two runs
//! over the same tree are byte-identical — `--json` output is diffable and
//! CI-ready.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod findings;
pub mod lexer;
pub mod passes;
pub mod source;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use allow::{AllowOutcome, Allowlist};
use findings::{Finding, Level};
use passes::lock_discipline::LockGraph;
use passes::metric_registry::MetricTable;
use passes::{all_passes, Ctx};
use source::Workspace;

/// How one run is configured.
pub struct Config {
    /// Workspace root to analyze.
    pub root: PathBuf,
    /// Path to the allowlist (default `<root>/lint.allow`).
    pub allow_path: PathBuf,
    /// Per-pass level overrides (`--warn <pass>` / `--deny <pass>`).
    pub levels: BTreeMap<String, Level>,
}

impl Config {
    /// Default configuration rooted at `root`: every pass at deny level,
    /// allowlist at `<root>/lint.allow`.
    pub fn new(root: &Path) -> Config {
        Config {
            root: root.to_path_buf(),
            allow_path: root.join("lint.allow"),
            levels: BTreeMap::new(),
        }
    }
}

/// Everything one analysis run produced.
pub struct Report {
    /// Findings that survived the allowlist, sorted.
    pub findings: Vec<Finding>,
    /// Findings excused by `lint.allow`, sorted (shown with `--verbose`,
    /// counted in the summary).
    pub suppressed: Vec<Finding>,
    /// Stale allowlist entries (fatal).
    pub stale_allows: Vec<allow::AllowEntry>,
    /// The lock acquisition graph, for the acyclicity proof in the output.
    pub lock_graph: LockGraph,
    /// The collected metric table (drives `--emit-metric-table`).
    pub metric_table: MetricTable,
    /// Number of files analyzed.
    pub files: usize,
}

impl Report {
    /// Does the run fail the gate?
    pub fn is_failure(&self) -> bool {
        self.findings.iter().any(|f| f.level == Level::Deny) || !self.stale_allows.is_empty()
    }

    /// Human-readable report.
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render_text());
            out.push('\n');
        }
        if verbose {
            for f in &self.suppressed {
                let _ = writeln!(out, "allowed: {}", f.render_text());
            }
        }
        for e in &self.stale_allows {
            let _ = writeln!(
                out,
                "lint.allow:{}: [deny] allowlist/stale: entry `{} {} {}` matches no finding — \
                 remove it",
                e.line, e.pass, e.path, e.key
            );
        }
        let cycle = self.lock_graph.find_cycle();
        let _ = writeln!(
            out,
            "lock graph: {} locks, {} edges — {}",
            self.lock_graph.locks.len(),
            self.lock_graph.edges.len(),
            match &cycle {
                None => "acyclic".to_string(),
                Some(c) => format!("CYCLE through {}", c.join(", ")),
            }
        );
        let denies = self
            .findings
            .iter()
            .filter(|f| f.level == Level::Deny)
            .count();
        let warns = self.findings.len() - denies;
        let _ = writeln!(
            out,
            "megalint: {} files, {} metrics; {} deny, {} warn, {} allowed, {} stale allow{}",
            self.files,
            self.metric_table.metrics.len(),
            denies,
            warns,
            self.suppressed.len(),
            self.stale_allows.len(),
            if self.is_failure() {
                " — FAIL"
            } else {
                " — ok"
            }
        );
        out
    }

    /// Machine-readable report (stable field order, findings sorted).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"findings\":{},\"suppressed\":{},",
            findings::render_json_array(&self.findings),
            findings::render_json_array(&self.suppressed)
        );
        let _ = write!(out, "\"stale_allows\":[");
        for (i, e) in self.stale_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pass\":\"{}\",\"path\":\"{}\",\"key\":\"{}\",\"line\":{}}}",
                findings::json_escape(&e.pass),
                findings::json_escape(&e.path),
                findings::json_escape(&e.key),
                e.line
            );
        }
        out.push_str("],");
        let cycle = self.lock_graph.find_cycle();
        let _ = write!(
            out,
            "\"lock_graph\":{{\"locks\":[{}],\"edges\":[{}],\"acyclic\":{}}},",
            self.lock_graph
                .locks
                .iter()
                .map(|l| format!("\"{}\"", findings::json_escape(l)))
                .collect::<Vec<_>>()
                .join(","),
            self.lock_graph
                .edges
                .iter()
                .map(|((a, b), (file, line))| format!(
                    "{{\"held\":\"{}\",\"acquired\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                    findings::json_escape(a),
                    findings::json_escape(b),
                    findings::json_escape(file),
                    line
                ))
                .collect::<Vec<_>>()
                .join(","),
            cycle.is_none()
        );
        let _ = write!(
            out,
            "\"metrics\":[{}],",
            self.metric_table
                .metrics
                .iter()
                .flat_map(
                    |(name, types)| types.iter().map(move |(ty, (file, line))| format!(
                        "{{\"name\":\"{}\",\"type\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                        findings::json_escape(name),
                        ty,
                        findings::json_escape(file),
                        line
                    ))
                )
                .collect::<Vec<_>>()
                .join(",")
        );
        let _ = write!(
            out,
            "\"summary\":{{\"files\":{},\"deny\":{},\"warn\":{},\"allowed\":{},\"stale\":{},\
             \"ok\":{}}}",
            self.files,
            self.findings
                .iter()
                .filter(|f| f.level == Level::Deny)
                .count(),
            self.findings
                .iter()
                .filter(|f| f.level == Level::Warn)
                .count(),
            self.suppressed.len(),
            self.stale_allows.len(),
            !self.is_failure()
        );
        out.push('}');
        out
    }
}

/// Runs every pass over the workspace at `config.root`.
pub fn run(config: &Config) -> Result<Report, String> {
    let ws = Workspace::load(&config.root)?;
    let design_md = std::fs::read_to_string(config.root.join("DESIGN.md")).ok();
    let ctx = Ctx { ws: &ws, design_md };
    let allowlist = Allowlist::load(&config.allow_path)?;
    run_with(&ctx, &allowlist, &config.levels)
}

/// Runs every pass over an already-lexed context (used by fixture tests).
pub fn run_with(
    ctx: &Ctx<'_>,
    allowlist: &Allowlist,
    levels: &BTreeMap<String, Level>,
) -> Result<Report, String> {
    let mut raw = Vec::new();
    for pass in all_passes() {
        let level = levels.get(pass.id()).copied().unwrap_or(Level::Deny);
        pass.run(ctx, level, &mut raw);
    }
    raw.sort_by_key(|f| f.sort_key());
    let AllowOutcome {
        kept,
        suppressed,
        stale,
    } = allowlist.apply(raw);
    let (lock_graph, _) = passes::lock_discipline::build_graph(ctx);
    let metric_table = passes::metric_registry::collect(ctx, Level::Deny, &mut Vec::new());
    Ok(Report {
        findings: kept,
        suppressed,
        stale_allows: stale,
        lock_graph,
        metric_table,
        files: ctx.ws.files.len(),
    })
}
