//! Workspace discovery and per-file token context.
//!
//! [`Workspace::load`] walks the repository for `.rs` files (skipping
//! `target/`, VCS metadata, and analyzer test fixtures), lexes each one, and
//! precomputes the two classifications every pass needs:
//!
//! * a [`FileClass`] derived from the path (data-plane crate source,
//!   vendored shim, test/bench/example code, …), and
//! * the set of tokens inside `#[cfg(test)]` items, found by walking the
//!   token stream and brace-matching the attributed item — the lexer-aware
//!   replacement for the old `awk '/#\[cfg\(test\)\]/{exit}'` truncation,
//!   which silently assumed test modules were always last in the file.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Token, TokenKind};

/// The crates whose non-test code forms the data plane: a panic in any of
/// them can take down ingest, merge, rotate, or query paths. `telemetry` is
/// included because the observability layer must never panic the pipeline
/// it observes.
pub const DATA_PLANE_CRATES: &[&str] = &[
    "flow",
    "flowtree",
    "flowdb",
    "datastore",
    "primitives",
    "replication",
    "storage",
    "telemetry",
];

/// Crates whose query results must be bit-identical across runs and thread
/// counts (the PR 4 equivalence proof): unordered-map iteration here is a
/// determinism hazard.
pub const RESULT_AFFECTING_CRATES: &[&str] = &[
    "flow",
    "flowtree",
    "flowdb",
    "datastore",
    "primitives",
    "replication",
    "storage",
];

/// Vendored stand-ins for crates.io packages (offline build): analyzed only
/// by the workspace-wide gates, not by data-plane policy passes.
pub const VENDORED_SHIMS: &[&str] = &["rand", "proptest", "criterion"];

/// Where a file sits in the workspace, which decides which passes apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/<name>/src/**` for a data-plane crate.
    DataPlaneSrc,
    /// `crates/<name>/src/**` for any other first-party crate.
    CrateSrc,
    /// Vendored shim source (`crates/rand`, `crates/proptest`, `crates/criterion`).
    ShimSrc,
    /// Test, bench, or example code (`tests/`, `benches/`, `examples/`).
    TestOrBench,
    /// The workspace umbrella `src/lib.rs`.
    RootSrc,
}

/// One lexed source file.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// The crate the file belongs to (`flow`, `telemetry`, …), if under
    /// `crates/`.
    pub crate_name: Option<String>,
    /// Path-derived classification.
    pub class: FileClass,
    /// The file's text.
    pub text: String,
    /// The lexed token stream.
    pub tokens: Vec<Token>,
    /// `in_test[i]` — is token `i` inside a `#[cfg(test)]` item?
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Builds a source file from in-memory text (used by fixture tests).
    pub fn from_text(rel_path: &str, text: String) -> SourceFile {
        let tokens = lexer::lex(&text);
        let in_test = mark_test_regions(&text, &tokens);
        let (crate_name, class) = classify(rel_path);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            class,
            text,
            tokens,
            in_test,
        }
    }

    /// Is the file part of the data plane's non-test surface?
    pub fn is_data_plane(&self) -> bool {
        self.class == FileClass::DataPlaneSrc
    }

    /// Is the crate one whose results must be deterministic?
    pub fn is_result_affecting(&self) -> bool {
        matches!(self.class, FileClass::DataPlaneSrc | FileClass::CrateSrc)
            && self
                .crate_name
                .as_deref()
                .is_some_and(|c| RESULT_AFFECTING_CRATES.contains(&c))
    }
}

fn classify(rel_path: &str) -> (Option<String>, FileClass) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() >= 3 {
        let krate = parts[1].to_string();
        let class = if parts[2] == "src" {
            if VENDORED_SHIMS.contains(&parts[1]) {
                FileClass::ShimSrc
            } else if DATA_PLANE_CRATES.contains(&parts[1]) {
                FileClass::DataPlaneSrc
            } else {
                FileClass::CrateSrc
            }
        } else {
            // crates/<name>/{tests,benches,examples}/…
            FileClass::TestOrBench
        };
        return (Some(krate), class);
    }
    if parts.first() == Some(&"src") {
        return (None, FileClass::RootSrc);
    }
    (None, FileClass::TestOrBench)
}

/// Marks every token inside an item carrying `#[cfg(test)]` (and, for
/// belt-and-braces, items under `#[test]`). The attributed item extends to
/// the end of its brace-balanced block, or to the first `;` at attribute
/// depth for block-less items.
fn mark_test_regions(src: &str, tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = match_test_attr(src, tokens, i) {
            // Everything from the attribute through the end of the item is
            // test code.
            let item_end = end_of_item(tokens, after_attr);
            for flag in in_test.iter_mut().take(item_end).skip(i) {
                *flag = true;
            }
            i = item_end;
        } else {
            i += 1;
        }
    }
    in_test
}

/// If tokens at `i` begin `#[cfg(test)]` / `#[cfg(all(test, …))]` /
/// `#[test]` / `#[cfg(any(test, …))]`, returns the index one past the
/// closing `]` of the attribute.
fn match_test_attr(src: &str, tokens: &[Token], i: usize) -> Option<usize> {
    if tokens[i].kind != TokenKind::Punct(b'#') {
        return None;
    }
    if tokens.get(i + 1)?.kind != TokenKind::Punct(b'[') {
        return None;
    }
    // Scan to the matching `]`, remembering the idents seen inside.
    let mut depth = 1usize;
    let mut j = i + 2;
    let mut head: Option<&str> = None;
    let mut mentions_test = false;
    while j < tokens.len() && depth > 0 {
        match tokens[j].kind {
            TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b']') => depth -= 1,
            TokenKind::Ident => {
                let text = tokens[j].text(src);
                if head.is_none() {
                    head = Some(text);
                }
                if text == "test" {
                    mentions_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    match head {
        Some("test") => Some(j),
        Some("cfg") if mentions_test => Some(j),
        _ => None,
    }
}

/// Returns the index one past the attributed item starting at `start`
/// (skipping further attributes), by brace-matching its first `{…}` block
/// or stopping at a top-level `;`.
fn end_of_item(tokens: &[Token], mut start: usize) -> usize {
    // Skip any further attributes (`#[…]`) stacked on the item.
    while start + 1 < tokens.len()
        && tokens[start].kind == TokenKind::Punct(b'#')
        && tokens[start + 1].kind == TokenKind::Punct(b'[')
    {
        let mut depth = 0usize;
        let mut j = start + 1;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct(b'[') => depth += 1,
                TokenKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        start = j + 1;
    }
    let mut depth = 0usize;
    let mut j = start;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct(b'{') => depth += 1,
            TokenKind::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            TokenKind::Punct(b';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// The lexed workspace: every first-party `.rs` file, sorted by path so all
/// downstream output is deterministic.
pub struct Workspace {
    /// All files, ordered by `rel_path`.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `root` and lexes every `.rs` file. Directories named `target`,
    /// `.git`, or `fixtures` are skipped (the last so megalint's own
    /// known-bad corpus never trips the real gates).
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut paths: Vec<PathBuf> = Vec::new();
        walk(root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            files.push(SourceFile::from_text(&rel, text));
        }
        Ok(Workspace { files })
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn also_live() {}\n";
        let f = SourceFile::from_text("crates/flow/src/a.rs", src.to_string());
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.text(&f.text) == "unwrap")
            .map(|(_, &in_test)| in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // Code *after* the test module is live again — the old awk gate got
        // this wrong by truncating at the first marker.
        let also_live = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .find(|(t, _)| t.text(&f.text) == "also_live")
            .map(|(_, &in_test)| in_test);
        assert_eq!(also_live, Some(false));
    }

    #[test]
    fn test_attr_fn_is_marked() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn live() {}\n";
        let f = SourceFile::from_text("crates/flow/src/a.rs", src.to_string());
        let unwrap_in_test = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .find(|(t, _)| t.text(&f.text) == "unwrap")
            .map(|(_, &b)| b);
        assert_eq!(unwrap_in_test, Some(true));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(feature = \"x\")]\nfn live() { y.unwrap(); }\n";
        let f = SourceFile::from_text("crates/flow/src/a.rs", src.to_string());
        let unwrap_in_test = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .find(|(t, _)| t.text(&f.text) == "unwrap")
            .map(|(_, &b)| b);
        assert_eq!(unwrap_in_test, Some(false));
    }

    #[test]
    fn classification() {
        let dp = SourceFile::from_text("crates/flow/src/lib.rs", String::new());
        assert_eq!(dp.class, FileClass::DataPlaneSrc);
        let shim = SourceFile::from_text("crates/rand/src/lib.rs", String::new());
        assert_eq!(shim.class, FileClass::ShimSrc);
        let core = SourceFile::from_text("crates/core/src/ops.rs", String::new());
        assert_eq!(core.class, FileClass::CrateSrc);
        assert!(!core.is_result_affecting());
        let test = SourceFile::from_text("tests/chaos_e2e.rs", String::new());
        assert_eq!(test.class, FileClass::TestOrBench);
        let bench = SourceFile::from_text("crates/bench/benches/e3.rs", String::new());
        assert_eq!(bench.class, FileClass::TestOrBench);
    }
}
