//! The pass framework: a pass walks the lexed workspace and reports
//! [`Finding`]s. Passes are deliberately independent — each one reads the
//! token streams directly and owns its own scoping rules, so disabling or
//! re-leveling one never changes another's output.

use crate::findings::{Finding, Level};
use crate::source::{SourceFile, Workspace};

pub mod arena_ids;
pub mod determinism;
pub mod gates;
pub mod lock_discipline;
pub mod metric_registry;
pub mod panic_surface;

/// Context shared by all passes in one run.
pub struct Ctx<'a> {
    /// The lexed workspace.
    pub ws: &'a Workspace,
    /// Contents of `DESIGN.md` at the workspace root, if present (the
    /// metric-registry pass cross-checks its generated table).
    pub design_md: Option<String>,
}

/// One analysis pass.
pub trait Pass {
    /// Stable id used on the CLI, in findings, and in `lint.allow`.
    fn id(&self) -> &'static str;
    /// One-line summary shown by `--list-passes`.
    fn summary(&self) -> &'static str;
    /// The full rule description shown by `--explain <pass>`: what is
    /// flagged, where, and *why the rule exists* in this codebase.
    fn explain(&self) -> &'static str;
    /// Runs the pass. `level` is the severity to attach to gate findings
    /// (passes may still emit intrinsically-advisory findings as
    /// [`Level::Warn`], e.g. slice-indexing).
    fn run(&self, ctx: &Ctx<'_>, level: Level, out: &mut Vec<Finding>);
}

/// All passes, in canonical order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(panic_surface::PanicSurface),
        Box::new(determinism::Determinism),
        Box::new(arena_ids::ArenaIds),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(metric_registry::MetricRegistry),
        Box::new(gates::Gates),
    ]
}

/// Is token `i` the identifier `name` (outside test code)?
pub(crate) fn live_ident(file: &SourceFile, i: usize, name: &str) -> bool {
    !file.in_test[i]
        && file.tokens[i].kind == crate::lexer::TokenKind::Ident
        && file.tokens[i].text(&file.text) == name
}

/// Pushes a finding anchored at token `i` of `file`.
pub(crate) fn report(
    out: &mut Vec<Finding>,
    file: &SourceFile,
    i: usize,
    pass: &'static str,
    level: Level,
    key: &str,
    message: String,
) {
    let t = &file.tokens[i];
    out.push(Finding {
        pass,
        level,
        file: file.rel_path.clone(),
        line: t.line,
        col: t.col,
        key: key.to_string(),
        message,
    });
}
