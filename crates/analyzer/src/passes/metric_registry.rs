//! Pass `metric-registry`: metric names are a stable, typed, documented
//! interface.
//!
//! The ops plane (PR 6) binds health rules, windowed quantiles, and
//! dashboards to dotted metric names (`hierarchy.pump.workers`), so a
//! renamed counter or a name reused at a different type silently breaks
//! alerting. This pass collects every static registration/lookup site,
//! enforces the naming convention, denies cross-type reuse, and
//! cross-checks the generated registry table in `DESIGN.md` so the
//! documentation provably matches the code.

use std::collections::BTreeMap;

use crate::findings::{Finding, Level};
use crate::lexer::TokenKind;
use crate::passes::{live_ident, report, Ctx, Pass};
use crate::source::FileClass;

/// See module docs.
pub struct MetricRegistry;

/// Markers delimiting the generated table in `DESIGN.md`.
pub const TABLE_BEGIN: &str = "<!-- megalint:metric-registry:begin -->";
/// Closing marker.
pub const TABLE_END: &str = "<!-- megalint:metric-registry:end -->";

/// One collected metric: name → (type, first site, all types seen).
#[derive(Debug, Default)]
pub struct MetricTable {
    /// name → per-type first site `(file, line)`.
    pub metrics: BTreeMap<String, BTreeMap<&'static str, (String, u32)>>,
}

impl MetricTable {
    /// Renders the canonical markdown table (sorted by name) that belongs
    /// between the DESIGN.md markers. `megalint --emit-metric-table` prints
    /// exactly this.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| metric | type | first registered at |\n");
        out.push_str("|---|---|---|\n");
        for (name, types) in &self.metrics {
            for (ty, (file, line)) in types {
                out.push_str(&format!("| `{name}` | {ty} | `{file}:{line}` |\n"));
            }
        }
        out
    }
}

const METHODS: &[&str] = &["counter", "gauge", "histogram"];

impl Pass for MetricRegistry {
    fn id(&self) -> &'static str {
        "metric-registry"
    }

    fn summary(&self) -> &'static str {
        "dotted metric-name convention, cross-type reuse, DESIGN.md registry table sync"
    }

    fn explain(&self) -> &'static str {
        "WHAT: collects every static `counter(\"…\")` / `gauge(\"…\")` / `histogram(\"…\")` \
call with a literal first argument in non-test crate sources (the telemetry crate itself \
is excluded — its toy names are API examples), then enforces: (a) names follow the \
`component.sub.name` convention — at least two lowercase dot-separated segments of \
`[a-z][a-z0-9_]*`; (b) a name is never used at two different metric types (a counter in \
one file, a gauge in another — reads through `Snapshot` count too); (c) the generated \
registry table between the `megalint:metric-registry` markers in DESIGN.md exactly \
matches the collected set (regenerate with `megalint --emit-metric-table`).\n\
WHY: the time-series sampler, health rules, and dashboards (PR 6) address metrics by \
name string; the compiler sees none of it. A drifted name or type is a silent \
observability outage — exactly the class of interface the paper's P1–P4 stack assumes \
is stable. Dynamic names (`format!`-built, per-region labels) are out of lexical reach \
and are governed by the runtime type check in the registry instead.\n\
ALLOWLIST: convention violations may be excused for externally-mandated names; type \
conflicts and a stale DESIGN.md table should be fixed, not excused."
    }

    fn run(&self, ctx: &Ctx<'_>, level: Level, out: &mut Vec<Finding>) {
        let table = collect(ctx, level, out);
        // Cross-type reuse.
        for (name, types) in &table.metrics {
            if types.len() > 1 {
                let kinds: Vec<&str> = types.keys().copied().collect();
                for (ty, (file, line)) in types {
                    out.push(Finding {
                        pass: self.id(),
                        level,
                        file: file.clone(),
                        line: *line,
                        col: 1,
                        key: name.clone(),
                        message: format!(
                            "metric `{name}` used as {} here but also as {}: one name, one type",
                            ty,
                            kinds
                                .iter()
                                .filter(|k| *k != ty)
                                .copied()
                                .collect::<Vec<_>>()
                                .join("/")
                        ),
                    });
                }
            }
        }
        // DESIGN.md cross-check.
        check_design_table(ctx, &table, level, out);
    }
}

/// Collects the metric table, reporting convention violations as findings.
pub fn collect(ctx: &Ctx<'_>, level: Level, out: &mut Vec<Finding>) -> MetricTable {
    let mut table = MetricTable::default();
    for file in &ctx.ws.files {
        let in_scope = matches!(
            file.class,
            FileClass::DataPlaneSrc | FileClass::CrateSrc | FileClass::RootSrc
        ) && file.crate_name.as_deref() != Some("telemetry");
        if !in_scope {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            for &method in METHODS {
                if live_ident(file, i, method)
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(b'('))
                    && toks.get(i + 2).map(|t| t.kind) == Some(TokenKind::StrLit)
                {
                    let name = toks[i + 2].str_contents(&file.text).to_string();
                    if !well_formed(&name) {
                        report(
                            out,
                            file,
                            i + 2,
                            "metric-registry",
                            level,
                            &name,
                            format!(
                                "metric name `{name}` violates the `component.sub.name` \
                                 convention (≥2 lowercase dot-separated segments)"
                            ),
                        );
                    }
                    table
                        .metrics
                        .entry(name)
                        .or_default()
                        .entry(method)
                        .or_insert((file.rel_path.clone(), toks[i + 2].line));
                }
            }
        }
    }
    table
}

fn well_formed(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            let mut chars = s.chars();
            chars.next().is_some_and(|c| c.is_ascii_lowercase())
                && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

fn check_design_table(ctx: &Ctx<'_>, table: &MetricTable, level: Level, out: &mut Vec<Finding>) {
    let Some(design) = &ctx.design_md else {
        return; // fixture runs have no DESIGN.md; the self-run does.
    };
    let expected = table.render_markdown();
    let actual = design
        .split_once(TABLE_BEGIN)
        .and_then(|(_, rest)| rest.split_once(TABLE_END))
        .map(|(body, _)| body.trim());
    match actual {
        None => out.push(Finding {
            pass: "metric-registry",
            level,
            file: "DESIGN.md".to_string(),
            line: 1,
            col: 1,
            key: "table-missing".to_string(),
            message: format!(
                "DESIGN.md has no `{TABLE_BEGIN} … {TABLE_END}` block; add one and paste the \
                 output of `megalint --emit-metric-table`"
            ),
        }),
        Some(body) if body != expected.trim() => out.push(Finding {
            pass: "metric-registry",
            level,
            file: "DESIGN.md".to_string(),
            line: 1,
            col: 1,
            key: "table-stale".to_string(),
            message: "DESIGN.md metric registry table does not match the code; regenerate \
                      with `megalint --emit-metric-table`"
                .to_string(),
        }),
        Some(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceFile, Workspace};

    fn run_on(files: Vec<(&str, &str)>, design: Option<&str>) -> (Vec<Finding>, MetricTable) {
        let ws = Workspace {
            files: files
                .into_iter()
                .map(|(p, s)| SourceFile::from_text(p, s.to_string()))
                .collect(),
        };
        let ctx = Ctx {
            ws: &ws,
            design_md: design.map(str::to_string),
        };
        let mut out = Vec::new();
        MetricRegistry.run(&ctx, Level::Deny, &mut out);
        let table = collect(&ctx, Level::Deny, &mut Vec::new());
        (out, table)
    }

    #[test]
    fn collects_and_checks_convention() {
        let (findings, table) = run_on(
            vec![(
                "crates/flowdb/src/db.rs",
                "fn f(t: &Telemetry) { t.counter(\"flowdb.rows_total\").add(1); \
                 t.gauge(\"BadName\").set(1); }",
            )],
            None,
        );
        assert!(table.metrics.contains_key("flowdb.rows_total"));
        let bad: Vec<_> = findings.iter().filter(|f| f.key == "BadName").collect();
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn single_segment_names_violate_convention() {
        let (findings, _) = run_on(
            vec![(
                "crates/flowdb/src/db.rs",
                "fn f(t: &Telemetry) { t.counter(\"rows\").add(1); }",
            )],
            None,
        );
        assert_eq!(findings.iter().filter(|f| f.key == "rows").count(), 1);
    }

    #[test]
    fn cross_type_reuse_is_denied() {
        let (findings, _) = run_on(
            vec![
                (
                    "crates/flowdb/src/a.rs",
                    "fn f(t: &T) { t.counter(\"x.shared\").add(1); }",
                ),
                (
                    "crates/manager/src/b.rs",
                    "fn g(t: &T) { t.gauge(\"x.shared\").set(1); }",
                ),
            ],
            None,
        );
        assert_eq!(findings.iter().filter(|f| f.key == "x.shared").count(), 2);
    }

    #[test]
    fn telemetry_crate_and_tests_are_excluded() {
        let (findings, table) = run_on(
            vec![
                (
                    "crates/telemetry/src/lib.rs",
                    "fn f(t: &T) { t.counter(\"x\").add(1); }",
                ),
                (
                    "crates/flowdb/src/a.rs",
                    "#[cfg(test)]\nmod tests { fn t(tel: &T) { tel.counter(\"y\").add(1); } }",
                ),
            ],
            None,
        );
        assert!(findings.is_empty());
        assert!(table.metrics.is_empty());
    }

    #[test]
    fn design_table_must_match() {
        let src = "fn f(t: &T) { t.counter(\"a.b\").add(1); }";
        let files = vec![("crates/flowdb/src/a.rs", src)];
        let (findings, table) = run_on(files.clone(), Some("# doc\nno markers here\n"));
        assert!(findings.iter().any(|f| f.key == "table-missing"));
        let good = format!(
            "# doc\n{}\n{}\n{}\n",
            TABLE_BEGIN,
            table.render_markdown().trim(),
            TABLE_END
        );
        let (findings, _) = run_on(files.clone(), Some(&good));
        assert!(findings.is_empty(), "{findings:?}");
        let stale = format!("# doc\n{TABLE_BEGIN}\n| wrong |\n{TABLE_END}\n");
        let (findings, _) = run_on(files, Some(&stale));
        assert!(findings.iter().any(|f| f.key == "table-stale"));
    }
}
