//! Pass `gates`: lexer-aware replacements for the `scripts/check.sh` grep
//! gates.
//!
//! The three historical gates were byte-pattern greps: `unsafe ` (which a
//! string literal or comment could false-positive, and `unsafe{` could
//! false-negative), `#\[ignore` (same), and an awk scan for
//! `.unwrap()`/`.expect(` in telemetry that truncated each file at the
//! *first* `#[cfg(test)]` marker — so any code after a test module was
//! simply never checked. This pass re-states the first two in token space;
//! the telemetry-unwrap gate is subsumed by `panic-surface`, which covers
//! telemetry as a data-plane crate without the truncation bug.

use crate::findings::{Finding, Level};
use crate::lexer::TokenKind;
use crate::passes::{report, Ctx, Pass};

/// See module docs.
pub struct Gates;

impl Pass for Gates {
    fn id(&self) -> &'static str {
        "gates"
    }

    fn summary(&self) -> &'static str {
        "workspace-wide `unsafe` and `#[ignore]` bans (token-accurate check.sh gates)"
    }

    fn explain(&self) -> &'static str {
        "WHAT: flags (a) the `unsafe` keyword anywhere in the workspace — first-party \
crates, vendored shims, tests, benches, and examples alike (`forbid(unsafe_code)` \
attributes don't trip it: `unsafe_code` is a different token); (b) the `#[ignore]` \
attribute (including `#[ignore = \"reason\"]`) anywhere.\n\
WHY: every crate declares `#![forbid(unsafe_code)]` — the gate catches the attribute \
being *removed* along with unsafe being added, which the compiler alone would accept. \
`#[ignore]` is banned because an ignored test is a silently-shrinking test suite: the \
chaos/parallel equivalence suites are the correctness proof, and PR 2 made their \
non-ignoring a checked invariant. Both were previously greps that matched inside \
comments and string literals; this pass only sees code tokens, so writing the word \
`unsafe` in a doc comment (or in this very explain string) is fine.\n\
ALLOWLIST: not expected to be used; any entry needs a justification strong enough to \
survive review of why the workspace-wide ban should bend."
    }

    fn run(&self, ctx: &Ctx<'_>, level: Level, out: &mut Vec<Finding>) {
        for file in &ctx.ws.files {
            let toks = &file.tokens;
            for i in 0..toks.len() {
                if toks[i].kind == TokenKind::Ident && toks[i].text(&file.text) == "unsafe" {
                    report(
                        out,
                        file,
                        i,
                        self.id(),
                        level,
                        "unsafe",
                        "`unsafe` is banned workspace-wide (every crate forbids unsafe_code)"
                            .to_string(),
                    );
                }
                if toks[i].kind == TokenKind::Punct(b'#')
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(b'['))
                    && toks.get(i + 2).is_some_and(|t| {
                        t.kind == TokenKind::Ident && t.text(&file.text) == "ignore"
                    })
                {
                    report(
                        out,
                        file,
                        i,
                        self.id(),
                        level,
                        "ignore",
                        "`#[ignore]`d tests are not allowed: an ignored test is a silently \
                         shrinking suite"
                            .to_string(),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceFile, Workspace};

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![SourceFile::from_text(path, src.to_string())],
        };
        let ctx = Ctx {
            ws: &ws,
            design_md: None,
        };
        let mut out = Vec::new();
        Gates.run(&ctx, Level::Deny, &mut out);
        out
    }

    #[test]
    fn flags_unsafe_code_tokens_only() {
        let src = "// unsafe in a comment\nlet s = \"unsafe \";\n\
                   #![forbid(unsafe_code)]\nunsafe fn f() {}";
        let found = run_on("crates/flow/src/a.rs", src);
        let unsafe_hits: Vec<_> = found.iter().filter(|f| f.key == "unsafe").collect();
        assert_eq!(unsafe_hits.len(), 1);
        assert_eq!(unsafe_hits[0].line, 4);
    }

    #[test]
    fn unsafe_block_without_space_is_caught() {
        // The old `grep 'unsafe '` missed this spelling entirely.
        let found = run_on("tests/x.rs", "fn f() { unsafe{ } }");
        assert_eq!(found.iter().filter(|f| f.key == "unsafe").count(), 1);
    }

    #[test]
    fn flags_ignore_attribute_even_in_tests() {
        let src = "#[test]\n#[ignore = \"slow\"]\nfn t() {}";
        let found = run_on("tests/x.rs", src);
        assert_eq!(found.iter().filter(|f| f.key == "ignore").count(), 1);
    }

    #[test]
    fn ignore_in_string_is_fine() {
        let found = run_on("tests/x.rs", "let s = \"#[ignore]\";");
        assert!(found.is_empty());
    }
}
