//! Pass `arena-ids`: flowtree node ids never become raw indices outside
//! the arena module.
//!
//! PR 10 rebuilt `Flowtree` on an index-based arena whose `NodeId(u32)`
//! handles are only meaningful against one arena's slot vector. The single
//! sanctioned id → index conversion is `Arena::idx()` in
//! `crates/flowtree/src/arena.rs`; every other `<id> as usize` is a slot
//! index escaping its arena — the exact bug class (stale ids surviving a
//! free-list recycle, ids applied to the wrong snapshot) the arena's
//! private constructor exists to prevent.

use crate::findings::{Finding, Level};
use crate::lexer::TokenKind;
use crate::passes::{report, Ctx, Pass};

/// See module docs.
pub struct ArenaIds;

/// The one file allowed to turn node ids into slot indices.
pub const ARENA_MODULE: &str = "crates/flowtree/src/arena.rs";

/// Does `name` look like a node-id binding (`id`, `idx`, `ids`, or a
/// snake_case identifier with one of those as its final segment)?
fn id_like(name: &str) -> bool {
    matches!(name, "id" | "idx" | "ids")
        || name.ends_with("_id")
        || name.ends_with("_idx")
        || name.ends_with("_ids")
}

impl Pass for ArenaIds {
    fn id(&self) -> &'static str {
        "arena-ids"
    }

    fn summary(&self) -> &'static str {
        "`<node id> as usize` in flowtree outside the arena module"
    }

    fn explain(&self) -> &'static str {
        "WHAT: flags `<ident> as usize` casts in `crates/flowtree/**` (outside \
crates/flowtree/src/arena.rs) where the cast identifier is `id`/`idx`/`ids` or ends in \
`_id`/`_idx`/`_ids` — including the tuple-field form `id.0 as usize`. Test code is \
covered too: a test that indexes a slot vector by a raw id is rehearsing the same bug.\n\
WHY: `NodeId(u32)` handles are only meaningful against one arena's slot vector, and the \
arena recycles freed slots through a free list — a raw index survives a free/realloc and \
silently reads the *new* occupant of the slot. `Arena::idx()` is the single sanctioned \
conversion (it is private to the arena module for exactly this reason); everything \
outside resolves ids through the arena's accessors, which keep the conversion adjacent \
to the bounds and liveness invariants. This pass makes the `pub(crate)` boundary a \
checked property instead of a convention.\n\
ALLOWLIST: entries should be rare and must explain why the cast cannot outlive or \
outrange its arena; prefer adding an accessor to the arena module instead."
    }

    fn run(&self, ctx: &Ctx<'_>, level: Level, out: &mut Vec<Finding>) {
        for file in &ctx.ws.files {
            if !file.rel_path.starts_with("crates/flowtree/") || file.rel_path == ARENA_MODULE {
                continue;
            }
            let toks = &file.tokens;
            for i in 1..toks.len() {
                // `as usize` — `as` lexes as an Ident like every keyword.
                let is_cast = toks[i].kind == TokenKind::Ident
                    && toks[i].text(&file.text) == "as"
                    && toks.get(i + 1).is_some_and(|t| {
                        t.kind == TokenKind::Ident && t.text(&file.text) == "usize"
                    });
                if !is_cast {
                    continue;
                }
                // Walk back to the base identifier: either `<id> as usize`
                // or the newtype-field form `<id>.0 as usize`.
                let mut j = i - 1;
                if toks[j].kind == TokenKind::NumLit
                    && j >= 2
                    && toks[j - 1].kind == TokenKind::Punct(b'.')
                {
                    j -= 2;
                }
                if toks[j].kind != TokenKind::Ident {
                    continue;
                }
                let name = toks[j].text(&file.text);
                if id_like(name) {
                    report(
                        out,
                        file,
                        j,
                        self.id(),
                        level,
                        name,
                        format!(
                            "`{name} as usize` outside the arena module: node ids are only \
                             meaningful against one arena's slots — resolve through the \
                             arena's accessors (`Arena::idx()` is the sole sanctioned \
                             conversion)"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceFile, Workspace};

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![SourceFile::from_text(path, src.to_string())],
        };
        let ctx = Ctx {
            ws: &ws,
            design_md: None,
        };
        let mut out = Vec::new();
        ArenaIds.run(&ctx, Level::Deny, &mut out);
        out
    }

    #[test]
    fn flags_id_cast_in_flowtree() {
        let src = "fn f(node_id: u32) { let _ = node_id as usize; }";
        let found = run_on("crates/flowtree/src/tree.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "node_id");
    }

    #[test]
    fn flags_newtype_field_form() {
        let src = "fn f(id: NodeId) { let _ = id.0 as usize; }";
        let found = run_on("crates/flowtree/src/ops.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "id");
    }

    #[test]
    fn arena_module_and_other_crates_are_exempt() {
        let src = "fn f(id: u32) { let _ = id as usize; }";
        assert!(run_on("crates/flowtree/src/arena.rs", src).is_empty());
        assert!(run_on("crates/datastore/src/store.rs", src).is_empty());
    }

    #[test]
    fn non_id_casts_are_ignored() {
        let src = "fn f(count: u32, valid: u32) { let _ = count as usize + valid as usize; }";
        assert!(run_on("crates/flowtree/src/tree.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_covered() {
        let src = "#[cfg(test)]\nmod tests { fn t(idx: u32) { let _ = idx as usize; } }";
        assert_eq!(run_on("crates/flowtree/src/query.rs", src).len(), 1);
    }
}
