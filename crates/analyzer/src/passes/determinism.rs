//! Pass `determinism`: results must not depend on wall clocks or hash
//! iteration order.
//!
//! PR 4's headline claim — `Threads(8)` produces **bit-identical** results
//! to the `Sequential` oracle — rests on two conventions: result-affecting
//! state iterates in a fixed order (BTreeMap, fixed fan-out merge order),
//! and nothing on a result path reads a wall clock. This pass machine-checks
//! both.

use crate::findings::{Finding, Level};
use crate::lexer::TokenKind;
use crate::passes::{live_ident, report, Ctx, Pass};
use crate::source::FileClass;

/// See module docs.
pub struct Determinism;

/// The single sanctioned wall-clock site: everything that needs monotonic
/// time goes through `megastream_telemetry::clock`.
pub const CLOCK_MODULE: &str = "crates/telemetry/src/clock.rs";

impl Pass for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn summary(&self) -> &'static str {
        "wall-clock reads outside telemetry::clock; HashMap/HashSet in result-affecting crates"
    }

    fn explain(&self) -> &'static str {
        "WHAT: flags (a) `Instant::now` / `SystemTime::now` in any first-party crate source \
outside the one sanctioned site, `crates/telemetry/src/clock.rs` (bench harnesses, the \
vendored criterion shim, tests, and examples are exempt); (b) the identifiers `HashMap` / \
`HashSet` in non-test code of the result-affecting crates (flow, flowtree, flowdb, \
datastore, primitives, replication, storage).\n\
WHY: the PR 4 equivalence proof (tests/parallel_e2e.rs, tests/merge_laws.rs) shows \
Sequential and Threads(n) runs are bit-identical — which is only true because partials \
merge in fixed BTreeMap location order and no result path consults a clock. A stray \
`Instant::now` on a result path (e.g. a time-based tie-break) or an iterated std HashMap \
(whose RandomState ordering differs per instance) silently voids the proof: the \
space-saving sketch's min-eviction tie-break was exactly such a bug. Routing clock reads \
through telemetry::clock also keeps them behind the enabled-check, preserving the \
telemetry-off zero-cost contract.\n\
ALLOWLIST: HashMap uses that are pure point-lookups (never iterated, order never \
observable) may be excused with a justification saying so; wall-clock reads outside the \
clock module should be fixed, not excused."
    }

    fn run(&self, ctx: &Ctx<'_>, level: Level, out: &mut Vec<Finding>) {
        for file in &ctx.ws.files {
            let toks = &file.tokens;
            // (a) wall-clock reads: all first-party crate sources except the
            // clock module itself. Shims (criterion drives benches), tests,
            // benches, and examples time things legitimately.
            let clock_scope = matches!(
                file.class,
                FileClass::DataPlaneSrc | FileClass::CrateSrc | FileClass::RootSrc
            ) && file.rel_path != CLOCK_MODULE;
            if clock_scope {
                for i in 0..toks.len() {
                    for ty in ["Instant", "SystemTime"] {
                        if live_ident(file, i, ty)
                            && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(b':'))
                            && toks.get(i + 2).map(|t| t.kind) == Some(TokenKind::Punct(b':'))
                            && toks.get(i + 3).is_some_and(|t| t.text(&file.text) == "now")
                        {
                            report(
                                out,
                                file,
                                i,
                                self.id(),
                                level,
                                &format!("{ty}::now"),
                                format!(
                                    "`{ty}::now()` outside telemetry::clock — route monotonic \
                                     time through the sanctioned clock module"
                                ),
                            );
                        }
                    }
                }
            }
            // (b) unordered maps in result-affecting crates.
            if file.is_result_affecting() {
                for i in 0..toks.len() {
                    for ty in ["HashMap", "HashSet"] {
                        if live_ident(file, i, ty) {
                            report(
                                out,
                                file,
                                i,
                                self.id(),
                                level,
                                ty,
                                format!(
                                    "`{ty}` in a result-affecting crate: iteration order is \
                                     randomized per instance; use BTreeMap/BTreeSet or \
                                     justify that order never escapes"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceFile, Workspace};

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![SourceFile::from_text(path, src.to_string())],
        };
        let ctx = Ctx {
            ws: &ws,
            design_md: None,
        };
        let mut out = Vec::new();
        Determinism.run(&ctx, Level::Deny, &mut out);
        out
    }

    #[test]
    fn flags_instant_now_outside_clock() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let found = run_on("crates/flowdb/src/par.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "Instant::now");
    }

    #[test]
    fn clock_module_and_bench_are_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(run_on("crates/telemetry/src/clock.rs", src).is_empty());
        assert!(run_on("crates/bench/benches/e1.rs", src).is_empty());
        assert!(run_on("crates/criterion/src/lib.rs", src).is_empty());
        assert!(run_on("tests/x.rs", src).is_empty());
    }

    #[test]
    fn flags_hashmap_only_in_result_affecting_crates() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u8, u8> }";
        assert_eq!(run_on("crates/primitives/src/a.rs", src).len(), 2);
        // telemetry is data-plane for panics but not result-affecting.
        assert!(run_on("crates/telemetry/src/registry.rs", src).is_empty());
        assert!(run_on("crates/manager/src/a.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashMap; \
                   fn t() { let _ = std::time::Instant::now(); } }";
        assert!(run_on("crates/flow/src/a.rs", src).is_empty());
    }

    #[test]
    fn instant_in_string_or_comment_is_ignored() {
        let src = "// Instant::now() here\nfn f() { let s = \"Instant::now\"; }";
        assert!(run_on("crates/flow/src/a.rs", src).is_empty());
    }
}
