//! Pass `lock-discipline`: the cross-file lock acquisition-order graph must
//! be acyclic, and no lock may be held across a channel send.
//!
//! The analysis is lexical but state-aware: within each function it tracks
//! which lock guards are live (a `let`-bound guard lives to the end of its
//! enclosing block or an explicit `drop(guard)`; an unbound temporary lives
//! to the end of its statement). Acquiring lock B while guard A is live
//! records the ordered edge `A -> B`; the union of edges across the whole
//! workspace forms the acquisition-order graph, and a cycle in that graph
//! is a potential deadlock (two threads taking the cycle from different
//! entry points). Lock identity is the receiver name (`self.shards[i]
//! .lock()` → `shards`), which deliberately over-approximates: distinct
//! locks that share a field name collapse into one node, which can create
//! false cycles but never miss a real one within the naming convention.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::{Finding, Level};
use crate::lexer::TokenKind;
use crate::passes::{Ctx, Pass};
use crate::source::{FileClass, SourceFile};

/// See module docs.
pub struct LockDiscipline;

/// The workspace's acquisition-order graph, exposed so the run report can
/// *prove* acyclicity rather than just not finding cycles.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Every lock name that is ever acquired.
    pub locks: BTreeSet<String>,
    /// `(held, acquired)` → first site that creates the edge.
    pub edges: BTreeMap<(String, String), (String, u32)>,
}

impl LockGraph {
    /// Kahn's algorithm: returns `None` if acyclic, else one cycle's nodes.
    pub fn find_cycle(&self) -> Option<Vec<String>> {
        let mut out_edges: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut in_deg: BTreeMap<&str, usize> = BTreeMap::new();
        for name in &self.locks {
            in_deg.entry(name).or_insert(0);
        }
        for (held, acquired) in self.edges.keys() {
            out_edges.entry(held).or_default().push(acquired);
            *in_deg.entry(acquired).or_insert(0) += 1;
            in_deg.entry(held).or_insert(0);
        }
        let mut queue: Vec<&str> = in_deg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut removed = 0usize;
        while let Some(n) = queue.pop() {
            removed += 1;
            for &m in out_edges.get(n).into_iter().flatten() {
                let d = in_deg.get_mut(m).expect("edge target has a degree");
                *d -= 1;
                if *d == 0 {
                    queue.push(m);
                }
            }
        }
        if removed == in_deg.len() {
            return None;
        }
        // Leftover nodes all sit on or downstream of a cycle; report them
        // sorted for determinism.
        Some(
            in_deg
                .iter()
                .filter(|(_, &d)| d > 0)
                .map(|(&n, _)| n.to_string())
                .collect(),
        )
    }
}

/// A live guard inside the per-function scan.
struct Guard {
    lock: String,
    /// Variable it is bound to, if `let`-bound (killable by `drop(var)`).
    var: Option<String>,
    /// Brace depth at the binding; the guard dies when depth drops below.
    depth: usize,
    /// Unbound temporary: dies at the next `;`.
    temporary: bool,
}

impl Pass for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn summary(&self) -> &'static str {
        "acquisition-order cycles (deadlock risk) and locks held across channel sends"
    }

    fn explain(&self) -> &'static str {
        "WHAT: tracks `.lock()` / `.read()` / `.write()` (zero-argument, so io::Read/Write \
calls don't count) acquisitions per function in all first-party crate sources, models \
guard lifetimes (let-bound → end of block or drop(); temporary → end of statement), and \
builds the workspace-wide acquisition-order graph. Deny findings: (a) a cycle in the \
graph — potential deadlock; (b) nested acquisition of the same lock name — guaranteed \
self-deadlock for a Mutex; (c) a channel `.send(…)`/`.try_send(…)` while any guard is \
live — a blocking send under a lock couples the lock to channel backpressure.\n\
WHY: the data plane is parallel (PR 4) and the telemetry registry and trace store are \
lock-sharded by design (16 name-hashed shards, PR 1/2). Today every function takes one \
shard at a time; the moment someone adds a second nested shard lookup or logs under a \
guard, the ordering discipline exists only in review comments. The graph makes it a \
machine-checked invariant, and `megalint` prints it (`locks/edges/acyclic`) so the proof \
is visible, not just the absence of an error.\n\
ALLOWLIST: a cycle edge may be excused only with a justification naming the external \
ordering guarantee (e.g. one arm is init-only before threads exist)."
    }

    fn run(&self, ctx: &Ctx<'_>, level: Level, out: &mut Vec<Finding>) {
        let (graph, mut local_findings) = build_graph(ctx);
        for f in &mut local_findings {
            f.level = level;
        }
        out.append(&mut local_findings);
        if let Some(cycle) = graph.find_cycle() {
            let members: BTreeSet<&str> = cycle.iter().map(String::as_str).collect();
            for ((held, acquired), (file, line)) in &graph.edges {
                if members.contains(held.as_str()) && members.contains(acquired.as_str()) {
                    out.push(Finding {
                        pass: self.id(),
                        level,
                        file: file.clone(),
                        line: *line,
                        col: 1,
                        key: format!("{held}->{acquired}"),
                        message: format!(
                            "lock acquisition edge `{held}` -> `{acquired}` participates in a \
                             cycle ({}): potential deadlock",
                            cycle.join(", ")
                        ),
                    });
                }
            }
        }
    }
}

/// Scans the workspace and returns the acquisition graph plus the nested
/// same-lock / send-under-lock findings discovered along the way.
pub fn build_graph(ctx: &Ctx<'_>) -> (LockGraph, Vec<Finding>) {
    let mut graph = LockGraph::default();
    let mut findings = Vec::new();
    for file in &ctx.ws.files {
        if !matches!(
            file.class,
            FileClass::DataPlaneSrc | FileClass::CrateSrc | FileClass::RootSrc
        ) {
            continue;
        }
        scan_file(file, &mut graph, &mut findings);
    }
    (graph, findings)
}

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
const SEND_METHODS: &[&str] = &["send", "try_send"];
/// Receivers that are locks in name only (stdio handles are per-thread and
/// never part of the data plane's ordering discipline).
const IGNORED_RECEIVERS: &[&str] = &["stdout", "stderr", "stdin"];

fn scan_file(file: &SourceFile, graph: &mut LockGraph, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        match toks[i].kind {
            TokenKind::Punct(b'{') => depth += 1,
            TokenKind::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokenKind::Punct(b';') => {
                guards.retain(|g| !g.temporary);
            }
            TokenKind::Ident => {
                let text = toks[i].text(&file.text);
                // drop(var) kills the named guard.
                if text == "drop" && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(b'('))
                {
                    if let Some(var) = toks.get(i + 2).map(|t| t.text(&file.text)) {
                        guards.retain(|g| g.var.as_deref() != Some(var));
                    }
                }
                let is_dot_call = i > 0
                    && toks[i - 1].kind == TokenKind::Punct(b'.')
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(b'('));
                if is_dot_call && SEND_METHODS.contains(&text) {
                    for g in &guards {
                        findings.push(Finding {
                            pass: "lock-discipline",
                            level: Level::Deny,
                            file: file.rel_path.clone(),
                            line: toks[i].line,
                            col: toks[i].col,
                            key: format!("{}->send", g.lock),
                            message: format!(
                                "channel `.{text}(…)` while holding lock `{}`: a blocking \
                                 send under a lock couples lock hold time to channel \
                                 backpressure",
                                g.lock
                            ),
                        });
                    }
                }
                let zero_arg = toks.get(i + 2).map(|t| t.kind) == Some(TokenKind::Punct(b')'));
                if is_dot_call && zero_arg && LOCK_METHODS.contains(&text) {
                    if let Some(lock) = receiver_name(file, i - 1) {
                        if IGNORED_RECEIVERS.contains(&lock.as_str()) {
                            continue;
                        }
                        graph.locks.insert(lock.clone());
                        for g in &guards {
                            if g.lock == lock {
                                findings.push(Finding {
                                    pass: "lock-discipline",
                                    level: Level::Deny,
                                    file: file.rel_path.clone(),
                                    line: toks[i].line,
                                    col: toks[i].col,
                                    key: format!("{lock}->{lock}"),
                                    message: format!(
                                        "nested acquisition of lock `{lock}` while already \
                                         held: self-deadlock for a Mutex"
                                    ),
                                });
                            } else {
                                graph
                                    .edges
                                    .entry((g.lock.clone(), lock.clone()))
                                    .or_insert((file.rel_path.clone(), toks[i].line));
                            }
                        }
                        let (var, temporary) = binding_of(file, i);
                        guards.push(Guard {
                            lock,
                            var,
                            depth,
                            temporary,
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// The receiver name of a method call whose `.` is at token `dot`:
/// the nearest identifier scanning left, skipping one balanced `(…)` or
/// `[…]` group (so `self.shards[i].lock()` and `self.shard(name).lock()`
/// both yield `shards`/`shard`).
fn receiver_name(file: &SourceFile, dot: usize) -> Option<String> {
    let toks = &file.tokens;
    let mut j = dot.checked_sub(1)?;
    for _ in 0..2 {
        match toks[j].kind {
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => {
                let open = match toks[j].kind {
                    TokenKind::Punct(b')') => b'(',
                    _ => b'[',
                };
                let close = match toks[j].kind {
                    TokenKind::Punct(b')') => b')',
                    _ => b']',
                };
                let mut bal = 1usize;
                while bal > 0 {
                    j = j.checked_sub(1)?;
                    match toks[j].kind {
                        TokenKind::Punct(c) if c == close => bal += 1,
                        TokenKind::Punct(c) if c == open => bal -= 1,
                        _ => {}
                    }
                }
                j = j.checked_sub(1)?;
            }
            TokenKind::Ident => return Some(toks[j].text(&file.text).to_string()),
            TokenKind::Punct(b'.') => j = j.checked_sub(1)?,
            _ => return None,
        }
    }
    (toks[j].kind == TokenKind::Ident).then(|| toks[j].text(&file.text).to_string())
}

/// Whether the acquisition at token `i` is `let`-bound within its statement
/// and to which variable. Scans back to the start of the statement.
fn binding_of(file: &SourceFile, i: usize) -> (Option<String>, bool) {
    let toks = &file.tokens;
    let mut j = i;
    let mut eq_pos: Option<usize> = None;
    while j > 0 {
        j -= 1;
        match toks[j].kind {
            TokenKind::Punct(b';') | TokenKind::Punct(b'{') | TokenKind::Punct(b'}') => break,
            TokenKind::Punct(b'=')
                if toks.get(j + 1).map(|t| t.kind) != Some(TokenKind::Punct(b'='))
                    && toks.get(j.wrapping_sub(1)).map(|t| t.kind)
                        != Some(TokenKind::Punct(b'=')) =>
            {
                eq_pos = Some(j);
            }
            TokenKind::Ident if toks[j].text(&file.text) == "let" => {
                // Variable = last ident before the `=` (handles `let mut g`,
                // `if let Ok(g) =`, `while let Some(g) =`).
                let Some(eq) = eq_pos else {
                    return (None, true);
                };
                let mut k = eq;
                while k > j {
                    k -= 1;
                    if toks[k].kind == TokenKind::Ident {
                        let name = toks[k].text(&file.text);
                        if name != "mut" {
                            return (Some(name.to_string()), false);
                        }
                    }
                }
                return (None, false);
            }
            _ => {}
        }
    }
    (None, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    fn analyze(src: &str) -> (LockGraph, Vec<Finding>) {
        let ws = Workspace {
            files: vec![SourceFile::from_text(
                "crates/telemetry/src/x.rs",
                src.to_string(),
            )],
        };
        let ctx = Ctx {
            ws: &ws,
            design_md: None,
        };
        build_graph(&ctx)
    }

    #[test]
    fn single_locks_make_no_edges() {
        let src = "fn f(&self) { let g = self.reg.lock(); g.insert(1); }\n\
                   fn h(&self) { let g = self.store.lock(); }";
        let (graph, findings) = analyze(src);
        assert_eq!(graph.locks.len(), 2);
        assert!(graph.edges.is_empty());
        assert!(findings.is_empty());
        assert!(graph.find_cycle().is_none());
    }

    #[test]
    fn nested_locks_make_an_edge() {
        let src = "fn f(&self) { let a = self.reg.lock(); let b = self.store.lock(); }";
        let (graph, _) = analyze(src);
        assert!(graph
            .edges
            .contains_key(&("reg".to_string(), "store".to_string())));
        assert!(graph.find_cycle().is_none());
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let src = "fn f(&self) { let a = self.reg.lock(); let b = self.store.lock(); }\n\
                   fn g(&self) { let b = self.store.lock(); let a = self.reg.lock(); }";
        let (graph, _) = analyze(src);
        let cycle = graph.find_cycle().expect("cycle");
        assert!(cycle.contains(&"reg".to_string()));
        assert!(cycle.contains(&"store".to_string()));
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "fn f(&self) { let a = self.reg.lock(); drop(a); \
                   let b = self.store.lock(); }";
        let (graph, _) = analyze(src);
        assert!(graph.edges.is_empty());
    }

    #[test]
    fn block_end_releases_the_guard() {
        let src = "fn f(&self) { { let a = self.reg.lock(); } let b = self.store.lock(); }";
        let (graph, _) = analyze(src);
        assert!(graph.edges.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn f(&self) { self.reg.lock().insert(1); let b = self.store.lock(); }";
        let (graph, _) = analyze(src);
        assert!(graph.edges.is_empty());
    }

    #[test]
    fn same_lock_nested_is_flagged() {
        let src = "fn f(&self) { let a = self.reg.lock(); let b = self.reg.lock(); }";
        let (_, findings) = analyze(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].key, "reg->reg");
    }

    #[test]
    fn send_under_lock_is_flagged() {
        let src = "fn f(&self) { let a = self.reg.lock(); self.tx.send(1); }";
        let (_, findings) = analyze(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].key, "reg->send");
    }

    #[test]
    fn send_after_drop_is_fine() {
        let src = "fn f(&self) { let a = self.reg.lock(); drop(a); self.tx.send(1); }";
        let (_, findings) = analyze(src);
        assert!(findings.is_empty());
    }

    #[test]
    fn indexed_and_called_receivers_resolve() {
        let src = "fn f(&self) { let a = self.shards[i].lock(); \
                   let b = self.shard(name).lock(); }";
        let (graph, _) = analyze(src);
        assert!(graph.locks.contains("shards"));
        assert!(graph.locks.contains("shard"));
    }

    #[test]
    fn io_write_with_args_is_not_a_lock() {
        let src = "fn f(&self) { out.write(buf); file.read(buf); }";
        let (graph, _) = analyze(src);
        assert!(graph.locks.is_empty());
    }

    #[test]
    fn if_let_bound_guard_is_tracked() {
        let src = "fn f(&self) { if let Ok(g) = self.reg.lock() { \
                   let b = self.store.lock(); } }";
        let (graph, _) = analyze(src);
        assert!(graph
            .edges
            .contains_key(&("reg".to_string(), "store".to_string())));
    }
}
