//! Pass `panic-surface`: the data plane must not be able to panic.
//!
//! PR 3 made degradation graceful (`DegradationPolicy::Partial`,
//! `AccessError`, spill buffers) and PR 6 put the observability layer on
//! the invariant that *telemetry must never panic the pipeline it
//! observes*. Both only hold if the panicking accessors stay out of
//! non-test data-plane code. This pass finds them lexically — which, unlike
//! the `grep` gate it replaces, ignores doc comments, string literals, and
//! `#[cfg(test)]` modules, and keeps scanning *after* a test module instead
//! of truncating at the first marker.

use crate::findings::{Finding, Level};
use crate::lexer::TokenKind;
use crate::passes::{live_ident, report, Ctx, Pass};
use crate::source::SourceFile;

/// See module docs.
pub struct PanicSurface;

const MACROS: &[(&str, &str)] = &[
    ("panic", "panic"),
    ("unreachable", "unreachable"),
    ("todo", "todo"),
    ("unimplemented", "unimplemented"),
];

impl Pass for PanicSurface {
    fn id(&self) -> &'static str {
        "panic-surface"
    }

    fn summary(&self) -> &'static str {
        "unwrap/expect/panic!/unreachable! and slice-indexing in data-plane non-test code"
    }

    fn explain(&self) -> &'static str {
        "WHAT: flags `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`, and \
`unimplemented!` in the non-test code of the data-plane crates (flow, flowtree, flowdb, \
datastore, primitives, replication, storage, telemetry), at deny level. Direct slice/array indexing \
`x[i]` is reported at warn level: the Flowtree node arena indexes by id as a designed \
invariant, so indexing is advisory information, not a gate.\n\
WHY: PR 3's graceful-degradation contract routes every fault through Result/AccessError \
paths (Partial results, spill buffers, failover) — one reachable panic in merge, rotate, \
or query turns a survivable fault into an outage. The telemetry crate is held to the same \
bar because the observability layer must never take down the data plane it watches \
(previously enforced by an awk/grep gate that could not see comments or strings).\n\
ALLOWLIST: a deny finding may be excused in lint.allow only with a justification, e.g. a \
documented `# Panics` API contract or an internal invariant whose violation is a bug by \
definition."
    }

    fn run(&self, ctx: &Ctx<'_>, level: Level, out: &mut Vec<Finding>) {
        for file in &ctx.ws.files {
            if !file.is_data_plane() {
                continue;
            }
            scan_file(self.id(), file, level, out);
        }
    }
}

fn scan_file(pass: &'static str, file: &SourceFile, level: Level, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        // `.unwrap()` / `.expect(` — require the preceding dot so local
        // functions merely named `unwrap` don't count, and the following
        // `(` so field accesses don't.
        for name in ["unwrap", "expect"] {
            if live_ident(file, i, name)
                && i > 0
                && toks[i - 1].kind == TokenKind::Punct(b'.')
                && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(b'('))
            {
                report(
                    out,
                    file,
                    i,
                    pass,
                    level,
                    name,
                    format!("`.{name}(…)` in data-plane non-test code can panic the pipeline"),
                );
            }
        }
        // Panicking macros: `panic!(…)` etc.
        for (name, key) in MACROS {
            if live_ident(file, i, name)
                && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(b'!'))
            {
                report(
                    out,
                    file,
                    i,
                    pass,
                    level,
                    key,
                    format!("`{name}!` in data-plane non-test code"),
                );
            }
        }
        // Slice indexing `expr[i]` (warn): `[` directly after an ident,
        // `)`, or `]`. Attributes (`#[…]`), array types (`[u8; 4]`), and
        // macro brackets (`vec![…]`) are excluded by that adjacency rule.
        if toks[i].kind == TokenKind::Punct(b'[') && i > 0 {
            let prev = &toks[i - 1];
            // A keyword before `[` means a slice pattern or item position
            // (`let [a, b] = …`), not an index expression.
            const KEYWORDS: &[&str] = &[
                "let", "in", "mut", "ref", "return", "match", "if", "while", "else", "move", "as",
                "box", "dyn", "impl", "for", "where", "use", "pub", "const", "static", "type",
                "fn", "break", "continue", "loop", "await", "yield",
            ];
            let is_index_receiver = match prev.kind {
                TokenKind::Ident => !KEYWORDS.contains(&prev.text(&file.text)),
                TokenKind::Punct(b')') | TokenKind::Punct(b']') => true,
                _ => false,
            };
            if is_index_receiver && prev.kind == TokenKind::Ident {
                // `ident [` could still be macro input or array type after
                // `ident!` was already excluded by adjacency; `if x [` is
                // not valid Rust, so ident-adjacent `[` is indexing.
                report(
                    out,
                    file,
                    i,
                    pass,
                    Level::Warn,
                    "index",
                    format!(
                        "direct indexing `{}[…]` panics when out of bounds; advisory",
                        prev.text(&file.text)
                    ),
                );
            } else if is_index_receiver {
                report(
                    out,
                    file,
                    i,
                    pass,
                    Level::Warn,
                    "index",
                    "direct indexing of call/index result panics when out of bounds; advisory"
                        .to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![SourceFile::from_text(path, src.to_string())],
        };
        let ctx = Ctx {
            ws: &ws,
            design_md: None,
        };
        let mut out = Vec::new();
        PanicSurface.run(&ctx, Level::Deny, &mut out);
        out
    }

    #[test]
    fn flags_live_unwrap_not_comment_or_string() {
        let src = "// a.unwrap() in a comment\n\
                   fn f(x: Option<u8>) -> u8 { let s = \".unwrap()\"; x.unwrap() }\n";
        let found = run_on("crates/flow/src/a.rs", src);
        let unwraps: Vec<_> = found.iter().filter(|f| f.key == "unwrap").collect();
        assert_eq!(unwraps.len(), 1);
        assert_eq!(unwraps[0].line, 2);
    }

    #[test]
    fn ignores_test_module_and_non_data_plane() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }\n";
        assert!(run_on("crates/flow/src/a.rs", src).is_empty());
        let live = "fn f() { x.unwrap(); }";
        assert!(run_on("crates/manager/src/a.rs", live).is_empty());
    }

    #[test]
    fn flags_macros() {
        let src = "fn f() { unreachable!(\"no\"); }";
        let found = run_on("crates/primitives/src/a.rs", src);
        assert_eq!(found.iter().filter(|f| f.key == "unreachable").count(), 1);
    }

    #[test]
    fn indexing_is_warn_level() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        let found = run_on("crates/flowtree/src/a.rs", src);
        let idx: Vec<_> = found.iter().filter(|f| f.key == "index").collect();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx[0].level, Level::Warn);
    }

    #[test]
    fn attributes_and_array_types_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f() -> Vec<u8> { vec![1] }";
        let found = run_on("crates/flow/src/a.rs", src);
        assert!(found.iter().all(|f| f.key != "index"), "{found:?}");
    }
}
