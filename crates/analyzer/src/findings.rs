//! Findings: what a pass reports, how it is leveled, sorted, and rendered.

use std::fmt::Write as _;

/// Severity of a finding. `Deny` findings fail the run (exit 1) unless
/// matched by a `lint.allow` entry; `Warn` findings are printed but never
/// fail the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Advisory: printed, never fatal, never allowlistable.
    Warn,
    /// Gate: fatal unless allowlisted with a justification.
    Deny,
}

impl Level {
    /// Lowercase name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The pass that produced it (`panic-surface`, `determinism`, …).
    pub pass: &'static str,
    /// Severity after any CLI level overrides.
    pub level: Level,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Short stable key used for allowlist matching (`unwrap`, `HashMap`,
    /// `Instant::now`, a metric name, a lock edge `a->b`, …).
    pub key: String,
    /// Human-oriented explanation of this specific site.
    pub message: String,
}

impl Finding {
    /// Deterministic ordering: by file, then position, then pass and key —
    /// two runs over the same tree always diff clean.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str, String) {
        (
            self.file.clone(),
            self.line,
            self.col,
            self.pass,
            self.key.clone(),
        )
    }

    /// `path:line:col: [level] pass/key: message`
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}/{}: {}",
            self.file,
            self.line,
            self.col,
            self.level.name(),
            self.pass,
            self.key,
            self.message
        )
    }
}

/// Escapes `s` as a JSON string body (without surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (used by `megalint --json`).
pub fn render_json_array(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"pass\":\"{}\",\"level\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"key\":\"{}\",\"message\":\"{}\"}}",
            json_escape(f.pass),
            f.level.name(),
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.key),
            json_escape(&f.message)
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering() {
        let f = Finding {
            pass: "panic-surface",
            level: Level::Deny,
            file: "crates/flow/src/x.rs".into(),
            line: 3,
            col: 9,
            key: "unwrap".into(),
            message: "non-test unwrap()".into(),
        };
        assert_eq!(
            f.render_text(),
            "crates/flow/src/x.rs:3:9: [deny] panic-surface/unwrap: non-test unwrap()"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let f = Finding {
            pass: "gates",
            level: Level::Warn,
            file: "a.rs".into(),
            line: 1,
            col: 1,
            key: "k".into(),
            message: "say \"hi\"".into(),
        };
        let json = render_json_array(&[f]);
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
