//! Fixture-corpus integration tests.
//!
//! Each pass must fire on its known-bad fixture — so these tests fail if a
//! pass is disabled, its scope shrinks, or its detection regresses — and
//! the whole analyzer must stay silent on the known-clean fixture, which
//! is saturated with decoys (banned constructs inside comments, plain and
//! raw strings, and test modules). The fixture `.rs` files live under
//! `tests/fixtures/`, which cargo never compiles and the workspace walker
//! skips, so they are only ever seen through `SourceFile::from_text`.

use std::collections::BTreeMap;

use megastream_analyzer::allow::Allowlist;
use megastream_analyzer::findings::{Finding, Level};
use megastream_analyzer::passes::Ctx;
use megastream_analyzer::source::{SourceFile, Workspace};
use megastream_analyzer::{run_with, Report};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lints fixture contents mounted at data-plane paths, no allowlist.
fn analyze(files: &[(&str, &str)]) -> Report {
    let ws = Workspace {
        files: files
            .iter()
            .map(|(path, name)| SourceFile::from_text(path, fixture(name)))
            .collect(),
    };
    let ctx = Ctx {
        ws: &ws,
        design_md: None,
    };
    run_with(&ctx, &Allowlist::default(), &BTreeMap::new()).expect("analyzer run")
}

fn denies<'r>(report: &'r Report, pass: &str) -> Vec<&'r Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.pass == pass && f.level == Level::Deny)
        .collect()
}

fn count_key(findings: &[&Finding], key: &str) -> usize {
    findings.iter().filter(|f| f.key == key).count()
}

#[test]
fn panic_surface_fires_on_bad_fixture() {
    let report = analyze(&[("crates/flowdb/src/fixture.rs", "panic_surface_bad.rs")]);
    let found = denies(&report, "panic-surface");
    assert_eq!(count_key(&found, "unwrap"), 2, "{found:#?}");
    assert_eq!(count_key(&found, "expect"), 1, "{found:#?}");
    assert_eq!(count_key(&found, "panic"), 1, "{found:#?}");
    assert_eq!(count_key(&found, "unreachable"), 1, "{found:#?}");
    // The second unwrap sits AFTER the #[cfg(test)] module — the region the
    // old awk gate truncated away. Prove it is seen.
    let test_mod_line = fixture("panic_surface_bad.rs")
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .expect("fixture has a test module") as u32
        + 1;
    assert!(
        found
            .iter()
            .any(|f| f.key == "unwrap" && f.line > test_mod_line),
        "no finding after the test module: {found:#?}"
    );
    // Indexing is advisory.
    assert!(report
        .findings
        .iter()
        .any(|f| f.key == "index" && f.level == Level::Warn));
}

#[test]
fn determinism_fires_on_bad_fixture() {
    let report = analyze(&[("crates/primitives/src/fixture.rs", "determinism_bad.rs")]);
    let found = denies(&report, "determinism");
    assert_eq!(count_key(&found, "Instant::now"), 1, "{found:#?}");
    assert_eq!(count_key(&found, "SystemTime::now"), 1, "{found:#?}");
    assert!(count_key(&found, "HashMap") >= 2, "{found:#?}");
    assert!(count_key(&found, "HashSet") >= 2, "{found:#?}");
}

#[test]
fn lock_discipline_fires_on_cross_file_cycle() {
    let report = analyze(&[
        ("crates/datastore/src/fix_a.rs", "lock_cycle_a.rs"),
        ("crates/datastore/src/fix_b.rs", "lock_cycle_b.rs"),
    ]);
    let found = denies(&report, "lock-discipline");
    // Both edges of the table/index cycle are reported, plus the send
    // under a live guard.
    assert!(count_key(&found, "table->index") >= 1, "{found:#?}");
    assert!(count_key(&found, "index->table") >= 1, "{found:#?}");
    assert_eq!(count_key(&found, "table->send"), 1, "{found:#?}");
    let cycle = report.lock_graph.find_cycle().expect("cycle detected");
    assert!(cycle.contains(&"table".to_string()));
    assert!(cycle.contains(&"index".to_string()));
}

#[test]
fn lock_discipline_half_a_alone_is_acyclic() {
    // Each half on its own is fine: the cycle only exists across files,
    // which is exactly what per-file review misses.
    let report = analyze(&[("crates/datastore/src/fix_a.rs", "lock_cycle_a.rs")]);
    assert!(denies(&report, "lock-discipline").is_empty());
    assert!(report.lock_graph.find_cycle().is_none());
    assert_eq!(report.lock_graph.edges.len(), 1);
}

#[test]
fn metric_registry_fires_on_bad_fixture() {
    let report = analyze(&[("crates/flowdb/src/fixture.rs", "metric_bad.rs")]);
    let found = denies(&report, "metric-registry");
    assert_eq!(count_key(&found, "BadName"), 1, "{found:#?}");
    // Cross-type reuse is reported at both sites.
    assert_eq!(count_key(&found, "shared.metric"), 2, "{found:#?}");
    // The clean histogram is collected but not flagged.
    assert!(report
        .metric_table
        .metrics
        .contains_key("fixture.latency.micros"));
}

#[test]
fn gates_fire_on_bad_fixture() {
    let report = analyze(&[("crates/flow/src/fixture.rs", "gates_bad.rs")]);
    let found = denies(&report, "gates");
    assert_eq!(count_key(&found, "unsafe"), 2, "{found:#?}");
    assert_eq!(count_key(&found, "ignore"), 1, "{found:#?}");
}

#[test]
fn clean_fixture_is_silent() {
    let report = analyze(&[("crates/flowdb/src/fixture.rs", "clean.rs")]);
    assert!(
        report.findings.is_empty(),
        "decoys leaked through: {:#?}",
        report.findings
    );
    assert!(!report.is_failure());
}

#[test]
fn every_pass_fired_somewhere() {
    // Meta-check: the corpus exercises all five passes, so disabling any
    // one of them flips at least one assertion above. Run the whole corpus
    // together and require one deny per pass id.
    let report = analyze(&[
        ("crates/flowdb/src/f1.rs", "panic_surface_bad.rs"),
        ("crates/primitives/src/f2.rs", "determinism_bad.rs"),
        ("crates/datastore/src/f3.rs", "lock_cycle_a.rs"),
        ("crates/datastore/src/f4.rs", "lock_cycle_b.rs"),
        ("crates/flowdb/src/f5.rs", "metric_bad.rs"),
        ("crates/flow/src/f6.rs", "gates_bad.rs"),
    ]);
    for pass in [
        "panic-surface",
        "determinism",
        "lock-discipline",
        "metric-registry",
        "gates",
    ] {
        assert!(
            !denies(&report, pass).is_empty(),
            "pass {pass} produced no deny findings on the corpus"
        );
    }
}

#[test]
fn allowlist_suppresses_and_goes_stale() {
    let ws = Workspace {
        files: vec![SourceFile::from_text(
            "crates/flowdb/src/fixture.rs",
            fixture("panic_surface_bad.rs"),
        )],
    };
    let ctx = Ctx {
        ws: &ws,
        design_md: None,
    };
    let allow = Allowlist::parse(
        "panic-surface crates/flowdb/src/fixture.rs unwrap -- fixture exercise\n\
         panic-surface crates/other/src/gone.rs unwrap -- matches nothing\n",
    )
    .expect("parse");
    let report = run_with(&ctx, &allow, &BTreeMap::new()).expect("run");
    assert_eq!(
        report
            .suppressed
            .iter()
            .filter(|f| f.key == "unwrap")
            .count(),
        2
    );
    assert!(report.findings.iter().all(|f| f.key != "unwrap"));
    assert_eq!(report.stale_allows.len(), 1, "unmatched entry is stale");
    assert!(report.is_failure(), "stale entries fail the gate");
}

#[test]
fn warn_override_downgrades_a_pass() {
    let ws = Workspace {
        files: vec![SourceFile::from_text(
            "crates/flowdb/src/fixture.rs",
            fixture("panic_surface_bad.rs"),
        )],
    };
    let ctx = Ctx {
        ws: &ws,
        design_md: None,
    };
    let mut levels = BTreeMap::new();
    levels.insert("panic-surface".to_string(), Level::Warn);
    let report = run_with(&ctx, &Allowlist::default(), &levels).expect("run");
    assert!(report
        .findings
        .iter()
        .filter(|f| f.pass == "panic-surface")
        .all(|f| f.level == Level::Warn));
    assert!(!report.is_failure());
}
