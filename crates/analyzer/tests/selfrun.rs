//! Workspace self-run: the analyzer's own acceptance test.
//!
//! Runs every pass over the real repository (two directories up from this
//! crate) with the checked-in `lint.allow` and requires the gate to pass:
//! zero unexcused deny findings, zero stale allowlist entries, and an
//! acyclic lock graph. This is the test that breaks when someone adds an
//! `unwrap()` to the data plane without a justification.

use std::path::Path;

use megastream_analyzer::findings::Level;
use megastream_analyzer::{run, Config};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_clean_modulo_allowlist() {
    let report = run(&Config::new(workspace_root())).expect("analyzer run");
    let denies: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.level == Level::Deny)
        .collect();
    assert!(
        denies.is_empty(),
        "unexcused deny findings — fix them or add a justified lint.allow \
         entry:\n{denies:#?}"
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale lint.allow entries — the code they excused is fixed, remove \
         them:\n{:#?}",
        report.stale_allows
    );
    assert!(!report.is_failure());
    // Sanity: this really scanned the workspace, not an empty directory.
    assert!(report.files > 50, "only {} files scanned", report.files);
}

#[test]
fn lock_graph_is_acyclic_and_nonempty() {
    let report = run(&Config::new(workspace_root())).expect("analyzer run");
    assert!(
        !report.lock_graph.locks.is_empty(),
        "the telemetry registry and trace store are lock-sharded; finding \
         no locks at all means the scanner broke"
    );
    assert_eq!(
        report.lock_graph.find_cycle(),
        None,
        "lock acquisition-order graph has a cycle"
    );
}

#[test]
fn findings_are_deterministically_sorted() {
    let a = run(&Config::new(workspace_root())).expect("run a");
    let b = run(&Config::new(workspace_root())).expect("run b");
    let render = |r: &megastream_analyzer::Report| r.render_json();
    assert_eq!(render(&a), render(&b), "two runs must be byte-identical");
    let keys: Vec<_> = a
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.col, f.pass, f.key.clone()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "findings not in (file, line, col, pass, key) order"
    );
}

#[test]
fn every_allow_entry_is_used_and_justified() {
    let report = run(&Config::new(workspace_root())).expect("analyzer run");
    // Parsing already rejects empty justifications; staleness already
    // rejects unused entries. Cross-check both through the report: every
    // suppressed finding maps to an entry, and nothing is stale.
    assert!(report.stale_allows.is_empty());
    assert!(
        !report.suppressed.is_empty(),
        "lint.allow is non-empty, so some findings must be suppressed"
    );
}
