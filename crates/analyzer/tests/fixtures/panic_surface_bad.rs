//! Known-bad fixture for the `panic-surface` pass. Every decoy below must
//! stay silent; every live site must be reported. Loaded by
//! `tests/fixtures.rs` under a data-plane path — the workspace walker
//! skips `fixtures/` directories, so this file is never linted in place
//! (and never compiled: cargo only builds top-level files in `tests/`).

// Decoy: a comment mentioning .unwrap() and panic!("boom").
/* Decoy: nested /* block comment */ containing .expect("x") and arr[0]. */

fn decoys() -> (&'static str, &'static str) {
    let plain = "calling .unwrap() or .expect(\"x\") in a string is fine";
    let raw = r#"raw string with panic!("boom"), unreachable!() and v[i]"#;
    (plain, raw)
}

fn live(map: &std::collections::BTreeMap<u32, u32>, arr: &[u32]) -> u32 {
    let a = map.get(&1).unwrap(); // deny: unwrap
    let b = map.get(&2).expect("present"); // deny: expect
    if *a > 3 {
        panic!("boom"); // deny: panic
    }
    if *b > 4 {
        unreachable!(); // deny: unreachable
    }
    arr[0] // warn: index
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_anything_goes() {
        let x: Option<u32> = None;
        x.unwrap();
        panic!("fine here");
    }
}

// Code AFTER the test module — the old awk gate truncated at the first
// `#[cfg(test)]` and never saw this function.
fn after_tests(v: &[u32]) -> u32 {
    v.first().copied().unwrap() // deny: unwrap (post-test-module)
}
