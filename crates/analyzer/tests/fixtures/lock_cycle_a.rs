//! Known-bad fixture (half A) for the `lock-discipline` pass: acquires
//! `table` then `index`; half B acquires them in the opposite order, so
//! the workspace-wide acquisition graph has a cycle.

fn forward(&self) {
    let a = self.table.lock();
    let b = self.index.lock();
    drop(b);
    drop(a);
}
