//! Known-bad fixture for the `gates` pass: real `unsafe` and `#[ignore]`
//! tokens, surrounded by decoys the old grep gates would have tripped on
//! (or, for `forbid(unsafe_code)`, needed a special exemption for).

#![forbid(unsafe_code)] // decoy: `unsafe_code` is a different token

// Decoy: the word unsafe and #[ignore] in a comment.

fn decoy() -> &'static str {
    "unsafe { } and #[ignore] in a string are fine"
}

unsafe fn live() {} // deny: unsafe

fn live2() {
    unsafe { core::hint::unreachable_unchecked() } // deny: unsafe
}

#[ignore] // deny: ignore — even outside #[cfg(test)]
fn skipped_test() {}
