//! Known-clean fixture: saturated with decoys — every banned construct
//! appears in comments, strings, raw strings, or test modules, and the
//! analyzer must report nothing at all on it.

// .unwrap() .expect("x") panic!("boom") unreachable!() todo!()
// Instant::now() SystemTime::now() HashMap HashSet unsafe #[ignore]
/* nested /* block */ with counter("decoy.name") and self.a.lock() */

fn strings() -> (&'static str, &'static str, &'static [u8]) {
    let s = "x.unwrap(); panic!(); let m: HashMap<u8,u8>; unsafe {}";
    let r = r##"r#"nested raw"# with .expect("y") and #[ignore]"##;
    let b = br#"bytes with SystemTime::now() and v[i]"#;
    (s, r, b)
}

fn lifetimes_are_not_chars<'a>(x: &'a str) -> &'a str {
    let c = '\''; // escaped char literal, not a lifetime
    let d = 'z';
    if c == d {
        x
    } else {
        x
    }
}

fn honest_code(v: &[u32]) -> Option<u32> {
    let first = v.first().copied()?;
    let mut m = std::collections::BTreeMap::new();
    m.insert(first, ());
    m.keys().next().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let mut m = std::collections::HashMap::new();
        m.insert(1u8, 2u8);
        let _t = std::time::Instant::now();
    }
}

fn after_tests_still_clean(v: &[u32]) -> Option<&u32> {
    v.first()
}
