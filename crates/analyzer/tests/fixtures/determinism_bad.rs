//! Known-bad fixture for the `determinism` pass.

// Decoy: Instant::now() in a comment.
/* Decoy: SystemTime::now() in a block comment. */

use std::collections::{HashMap, HashSet}; // deny: HashMap + HashSet idents

fn decoys() -> &'static str {
    "HashMap and Instant::now() in a string are fine"
}

fn live() -> u128 {
    let t = std::time::Instant::now(); // deny: Instant::now
    let w = std::time::SystemTime::now(); // deny: SystemTime::now
    let m: HashMap<u32, u32> = HashMap::new(); // deny: HashMap (x2)
    let s: HashSet<u32> = HashSet::new(); // deny: HashSet (x2)
    drop((w, m, s));
    t.elapsed().as_micros()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_use_hash_maps() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
