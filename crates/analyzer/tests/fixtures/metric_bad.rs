//! Known-bad fixture for the `metric-registry` pass: a name violating the
//! dotted convention and one name registered at two different types.

// Decoy: counter("comment.decoy") in a comment is not a registration.

fn live(t: &Telemetry) {
    t.counter("BadName").add(1); // deny: convention
    t.counter("shared.metric").add(1); // deny: cross-type (with gauge below)
}

fn live2(t: &Telemetry) {
    t.gauge("shared.metric").set(7); // deny: cross-type (with counter above)
    t.histogram("fixture.latency.micros").observe(1); // clean
}
