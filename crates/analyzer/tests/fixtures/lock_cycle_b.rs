//! Known-bad fixture (half B) for the `lock-discipline` pass: opposite
//! acquisition order from half A, plus a channel send under a live guard.

fn backward(&self) {
    let b = self.index.lock();
    let a = self.table.lock();
    drop(a);
    drop(b);
}

fn send_under_lock(&self) {
    let g = self.table.lock();
    self.tx.send(1); // deny: send while `table` is held
    drop(g);
}
