//! # megastream-telemetry
//!
//! A zero-dependency metrics and span-tracing layer for the megastream
//! pipeline, reproducing the observability surface the paper's Manager
//! relies on ("the manager *monitors* system health and each site's
//! resource footprint", Fig. 3b) without pulling any external crate into
//! the fully offline build.
//!
//! ## Model
//!
//! * A [`Registry`] holds named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s behind 16 name-hashed shards; handles record through
//!   lock-free atomics.
//! * [`Telemetry`] is the handle threaded through the pipeline: a cheap
//!   `Option<Arc<Registry>>` clone. [`Telemetry::disabled`] yields no-op
//!   handles whose recording methods are a single branch — the instrumented
//!   code pays nothing when observability is off.
//! * [`Span`] and [`ScopedTimer`] time labeled stages into latency
//!   histograms; disabled handles never read the clock.
//! * [`Snapshot::render_text`] and [`Snapshot::render_json`] export the
//!   registry; the in-repo [`json`] module parses the JSON back for tests
//!   and tooling.
//! * The [`trace`] module adds *causal* tracing on top of the aggregate
//!   metrics: a [`Tracer`] hands out parent-linked [`TraceSpan`]s with
//!   head-based sampling and a lock-sharded ring-buffer store, exportable
//!   as a text span tree or Chrome `trace_event` JSON. Like [`Telemetry`],
//!   the default handle is disabled and costs one branch per span site.
//! * The [`profile`] module adds scoped-activity profiling: a [`Profiler`]
//!   (default-disabled, one branch per site) maintains an explicit
//!   per-thread activity stack via RAII [`ActivityGuard`]s and aggregates
//!   inclusive/exclusive time per call path, exportable as a
//!   `flamegraph.pl`-compatible collapsed-stack file or a top-N table.
//! * The [`timeseries`] module samples a registry on a cadence into
//!   fixed-capacity ring buffers and derives windowed rates and
//!   histogram-delta percentiles; the [`health`] module folds those
//!   windows through declarative rules with hysteresis into per-component
//!   `Healthy`/`Degraded`/`Critical` states plus an alert log.
//! * [`Snapshot::render_prometheus`] exposes the registry in the
//!   Prometheus text format (sanitized names, escaped label values,
//!   cumulative buckets).
//!
//! ```
//! use megastream_telemetry::{Telemetry, LATENCY_MICROS_BOUNDS};
//!
//! let tel = Telemetry::new();
//! tel.counter("ingest.records_total").add(128);
//! tel.gauge("store.footprint_bytes").set(4096);
//! let hist = tel.histogram("query.micros", LATENCY_MICROS_BOUNDS);
//! hist.record(250);
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("ingest.records_total"), Some(128));
//! assert!(snap.render_json().contains("\"query.micros\""));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod health;
pub mod json;
mod metrics;
pub mod profile;
mod prom;
mod registry;
mod span;
pub mod timeseries;
pub mod trace;

use std::sync::Arc;

pub use health::{Alert, BurnSource, Direction, HealthMonitor, HealthRule, HealthStatus, Signal};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, LATENCY_MICROS_BOUNDS, SIZE_BYTES_BOUNDS,
};
pub use profile::{ActivityGuard, ActivityStat, ProfileSnapshot, Profiler};
pub use registry::{MetricHandle, Registry, Snapshot};
pub use span::{ScopedTimer, Span};
pub use timeseries::{monotonic_increase, MetricSampler, SamplerConfig, WindowedHistogram};
pub use trace::{
    SamplePolicy, SpanContext, SpanId, SpanRecord, TraceId, TraceSnapshot, TraceSpan, TraceStore,
    Tracer,
};

/// The pipeline-facing telemetry handle: either a live shared [`Registry`]
/// or a null handle whose every operation is a no-op.
///
/// Cloning is cheap (an `Option<Arc>` clone); components store their own
/// copy. `Default` is the *disabled* handle so that instrumented structs
/// stay zero-cost unless explicitly given a live registry.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<Registry>>);

impl Telemetry {
    /// Creates an enabled handle backed by a fresh registry.
    pub fn new() -> Self {
        Telemetry(Some(Arc::new(Registry::new())))
    }

    /// The null handle: all metric handles it yields are no-ops.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// Creates a handle sharing an existing registry.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Telemetry(Some(registry))
    }

    /// Whether this handle records into a live registry.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The underlying registry, if enabled.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.0.as_ref()
    }

    /// Counter handle for `name` (no-op when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.0 {
            Some(reg) => reg.counter(name),
            None => Counter::noop(),
        }
    }

    /// Gauge handle for `name` (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.0 {
            Some(reg) => reg.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// Histogram handle for `name` with inclusive upper `bounds` (no-op when
    /// disabled; bounds are fixed by the first registration).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        match &self.0 {
            Some(reg) => reg.histogram(name, bounds),
            None => Histogram::noop(),
        }
    }

    /// Starts a [`Span`] labeled `name`, recording into `<name>.micros`.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self, name)
    }

    /// Starts a [`ScopedTimer`] recording into the latency histogram `name`.
    pub fn timer(&self, name: &str) -> ScopedTimer {
        ScopedTimer::start(&self.histogram(name, LATENCY_MICROS_BOUNDS))
    }

    /// Point-in-time copy of all metrics (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        match &self.0 {
            Some(reg) => reg.snapshot(),
            None => Snapshot::default(),
        }
    }

    /// Convenience: [`Snapshot::render_text`] of the current state.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    /// Convenience: [`Snapshot::render_json`] of the current state.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// Formats a labeled metric name, e.g. `labeled("flowdb.exec", "op", "topk")`
/// → `flowdb.exec{op=topk}`.
pub fn labeled(base: &str, key: &str, value: &str) -> String {
    format!("{base}{{{key}={value}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let c = tel.counter("x");
        let g = tel.gauge("y");
        let h = tel.histogram("z", LATENCY_MICROS_BOUNDS);
        c.inc();
        g.set(5);
        h.record(10);
        assert!(!c.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        let snap = tel.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
        assert_eq!(tel.render_text(), "");
    }

    #[test]
    fn spans_record_micros_histograms() {
        let tel = Telemetry::new();
        {
            let span = tel.span("stage");
            let child = span.child("inner");
            drop(child);
            let micros = span.finish();
            let _ = micros;
        }
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("stage.micros").unwrap().count, 1);
        assert_eq!(snap.histogram("stage.inner.micros").unwrap().count, 1);
    }

    #[test]
    fn disabled_span_never_registers() {
        let tel = Telemetry::disabled();
        let span = tel.span("stage");
        assert_eq!(span.name(), "");
        let child = span.child("inner");
        drop(child);
        assert_eq!(span.finish(), 0);
    }

    #[test]
    fn labeled_formats_prometheus_style() {
        assert_eq!(labeled("a.b", "op", "topk"), "a.b{op=topk}");
    }

    #[test]
    fn shared_registry_is_shared() {
        let tel = Telemetry::new();
        let tel2 = Telemetry::with_registry(Arc::clone(tel.registry().unwrap()));
        tel.counter("shared").inc();
        tel2.counter("shared").add(2);
        assert_eq!(tel.snapshot().counter("shared"), Some(3));
    }
}
