//! Metric handle types: [`Counter`], [`Gauge`], and [`Histogram`].
//!
//! Handles are cheap clones of `Option<Arc<...>>`. A handle obtained from a
//! disabled [`crate::Telemetry`] carries `None` and every recording method is
//! a no-op that compiles down to a single branch — no atomics are touched,
//! no clock is read, nothing allocates.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
///
/// ```
/// use megastream_telemetry::Telemetry;
/// let tel = Telemetry::new();
/// let c = tel.counter("ingest.records_total");
/// c.inc();
/// c.add(9);
/// assert_eq!(c.get(), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter; recording into it does nothing.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Whether this handle records into a live registry.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge tracking an instantaneous signed quantity (footprints, queue
/// depths, replica counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// A detached no-op gauge; recording into it does nothing.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Whether this handle records into a live registry.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Subtracts `delta`.
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Shared histogram state: fixed upper bounds plus one overflow bucket.
#[derive(Debug)]
pub(crate) struct HistCore {
    /// Inclusive upper bounds, strictly increasing. `buckets.len()` is
    /// `bounds.len() + 1`; the final bucket counts samples above the last
    /// bound.
    pub(crate) bounds: Vec<u64>,
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        HistCore {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram of `u64` samples (typically microseconds or
/// bytes). Samples land in the first bucket whose inclusive upper bound is
/// `>=` the sample; larger samples land in a final overflow bucket.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistCore>>);

impl Histogram {
    /// A detached no-op histogram; recording into it does nothing.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Whether this handle records into a live registry.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    /// Number of recorded samples (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded samples (0 for a no-op handle).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Point-in-time copy of this histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::default(),
            Some(core) => HistogramSnapshot::from_core(core),
        }
    }
}

/// An owned, point-in-time copy of one histogram's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; one longer than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample seen (0 if empty).
    pub min: u64,
    /// Largest sample seen (0 if empty).
    pub max: u64,
}

impl HistogramSnapshot {
    pub(crate) fn from_core(core: &HistCore) -> Self {
        let counts = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = core.count.load(Ordering::Relaxed);
        let raw_min = core.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: core.bounds.clone(),
            counts,
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if raw_min == u64::MAX { 0 } else { raw_min },
            max: core.max.load(Ordering::Relaxed),
        }
    }

    /// Mean sample value, or 0.0 if no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`0.0..=1.0`) from bucket upper bounds. Returns
    /// the inclusive upper bound of the bucket containing the q-th sample
    /// (`max` for the overflow bucket), or 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// Default latency bucket bounds in microseconds: a 1-2-5 ladder from 1 µs
/// to 10 s.
pub const LATENCY_MICROS_BOUNDS: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// Default size bucket bounds in bytes: powers of four from 64 B to 1 GiB.
pub const SIZE_BYTES_BOUNDS: &[u64] = &[
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
];
