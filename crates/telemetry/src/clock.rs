//! The single sanctioned monotonic-clock site in the workspace.
//!
//! `megalint`'s determinism pass denies `Instant::now()` everywhere else in
//! first-party crate code: the PR 4 equivalence proof (bit-identical
//! results across `Sequential` and `Threads(n)`) only holds while no
//! result path consults a clock, and concentrating every read here makes
//! "who can observe time?" a one-file audit instead of a grep. Telemetry
//! spans, scoped timers, the trace store's epoch, and the data plane's
//! worker-busy accounting all measure durations through [`Stopwatch`];
//! none of them can leak an absolute time into a result.
//!
//! Benches and the vendored criterion shim read `Instant` directly — they
//! *are* measurement harnesses — and tests/examples are out of the pass's
//! scope.

use std::time::Instant;

/// An opaque monotonic start point. The only operations are relative
/// (`elapsed_micros`, `micros_since`), so holders can measure durations
/// but never observe an absolute timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stopwatch(Instant);

/// Starts a stopwatch at the current monotonic instant.
pub fn start() -> Stopwatch {
    Stopwatch(Instant::now())
}

impl Stopwatch {
    /// Microseconds elapsed since this stopwatch started, saturating at
    /// `u64::MAX`.
    pub fn elapsed_micros(&self) -> u64 {
        self.0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Microseconds from `earlier` to this stopwatch's start point
    /// (saturating at zero if `earlier` is actually later, and at
    /// `u64::MAX` above).
    pub fn micros_since(&self, earlier: &Stopwatch) -> u64 {
        self.0
            .saturating_duration_since(earlier.0)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = start();
        let a = sw.elapsed_micros();
        let b = sw.elapsed_micros();
        assert!(b >= a);
    }

    #[test]
    fn micros_since_orders_start_points() {
        let earlier = start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let later = start();
        assert!(later.micros_since(&earlier) >= 1000);
        assert_eq!(earlier.micros_since(&later), 0, "saturates at zero");
    }
}
